"""The algorithm layer: the paper's ``iAlgorithm`` base class.

The interface between iOverlay and algorithms (Section 2.3) is designed
so that:

- the algorithm only ever calls **one** engine function, ``send``;
- the algorithm is completely **message driven** — it passively
  processes messages as they arrive or are produced by the engine;
- the algorithm runs in a **single logical thread**, so it never needs
  thread-safe data structures;
- unhandled message types fall through to default handlers supplied by
  the base class; the only type an algorithm *must* handle is ``DATA``.

An algorithm may also return :data:`Disposition.HOLD` from ``process``
for a data message, telling the engine the message is buffered inside
the algorithm awaiting companions from other incoming connections (the
n-to-m merging/coding mechanism of Section 2.2).
"""

from __future__ import annotations

import random
from enum import Enum
from typing import Callable, Iterable, Protocol, runtime_checkable

from repro.core.ids import AppId, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.core.stats import LinkStatsSnapshot


class Disposition(Enum):
    """What the algorithm did with a message handed to ``process``."""

    DONE = "done"  # consumed or forwarded; the engine owes nothing further
    HOLD = "hold"  # buffered inside the algorithm, awaiting companions


@runtime_checkable
class EngineServices(Protocol):
    """The narrow engine surface visible to an algorithm.

    Engines (simulated or asyncio) implement this protocol; algorithms
    depend only on it, which is what makes them portable between the two
    substrates.
    """

    @property
    def node_id(self) -> NodeId:
        """Identity of the node hosting this algorithm."""

    def now(self) -> float:
        """Current time in seconds (virtual or wall-clock)."""

    def send(self, msg: Message, dest: NodeId) -> None:
        """Queue ``msg`` for delivery to ``dest``.

        The paper's single engine entry point.  Returns nothing; all
        abnormal outcomes (dead destination, torn-down link) surface
        later as engine-produced messages, never as exceptions here.
        """

    def send_to_observer(self, msg: Message) -> None:
        """Queue ``msg`` for the observer (status, traces, bootstrap)."""

    def upstreams(self) -> list[NodeId]:
        """Nodes with an incoming connection to this node."""

    def downstreams(self) -> list[NodeId]:
        """Nodes this node has an outgoing connection to."""

    def link_stats(self, peer: NodeId) -> LinkStatsSnapshot | None:
        """Most recent QoS measurements for the link to/from ``peer``."""

    def start_source(self, app: AppId, payload_size: int) -> None:
        """Deploy an application data source on this node."""

    def stop_source(self, app: AppId) -> None:
        """Terminate a previously deployed application source."""

    def set_timer(self, delay: float, token: int = 0) -> None:
        """Arm a one-shot timer: a ``TIMER`` message carrying ``token``
        is delivered to the algorithm after ``delay`` seconds."""

    def measure(self, peer: NodeId) -> None:
        """Probe round-trip latency (and report the current link rate) to
        ``peer``; the result arrives as a ``MEASURE_REPLY`` message."""

    def queue_snapshot(self) -> dict:
        """O(1)-per-port queue depths/bytes (``recv``/``send``/totals).

        The switch maintains these gauges incrementally, so stateful
        routing algorithms may poll every tick; the same snapshot rides
        the periodic STATUS report as the ``queues`` field."""


Handler = Callable[[Message], "Disposition | None"]


class KnownHosts:
    """The set of overlay nodes this node has learned about.

    Populated from the observer's bootstrap reply and from algorithm
    traffic; consulted by gossip-style dissemination.
    """

    def __init__(self) -> None:
        self._hosts: dict[NodeId, None] = {}  # insertion-ordered set

    def add(self, node: NodeId) -> None:
        self._hosts.setdefault(node, None)

    def discard(self, node: NodeId) -> None:
        self._hosts.pop(node, None)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._hosts

    def __len__(self) -> int:
        return len(self._hosts)

    def __iter__(self):
        return iter(self._hosts)

    def as_list(self) -> list[NodeId]:
        return list(self._hosts)

    def sample(self, k: int, rng: random.Random) -> list[NodeId]:
        """Up to ``k`` distinct known hosts, chosen uniformly."""
        hosts = self.as_list()
        if len(hosts) <= k:
            return hosts
        return rng.sample(hosts, k)


class Algorithm:
    """Base class for application-specific algorithms (``iAlgorithm``).

    Subclasses override the ``on_*`` hooks they care about, or register
    handlers for their own message types with :meth:`register`.  The
    dispatch is the pythonic equivalent of the paper's ``switch``
    statement skeleton (Table 2).
    """

    def __init__(self, seed: int | None = None) -> None:
        self.known_hosts = KnownHosts()
        self.rng = random.Random(seed)
        self._zero_payload: bytes | None = None
        self._services: EngineServices | None = None
        self._handlers: dict[int, Handler] = {
            MsgType.BOOT_REPLY: self._on_boot_reply,
            MsgType.DATA: self.on_data,
            MsgType.S_DEPLOY: self.on_deploy,
            MsgType.S_TERMINATE: self.on_terminate_source,
            MsgType.BROKEN_SOURCE: self.on_broken_source,
            MsgType.BROKEN_LINK: self.on_broken_link,
            MsgType.NEW_UPSTREAM: self.on_new_upstream,
            MsgType.UP_THROUGHPUT: self.on_up_throughput,
            MsgType.DOWN_THROUGHPUT: self.on_down_throughput,
            MsgType.REQUEST: self.on_status_request,
            MsgType.CONTROL: self.on_control,
            MsgType.TIMER: self._dispatch_timer,
            MsgType.MEASURE_REPLY: self._dispatch_measure_reply,
        }

    # --- lifecycle -----------------------------------------------------------------

    def bind(self, services: EngineServices) -> None:
        """Attach the hosting engine.  Called once before any message."""
        self._services = services

    @property
    def engine(self) -> EngineServices:
        """The hosting engine's services (valid after :meth:`bind`)."""
        if self._services is None:
            raise RuntimeError("algorithm is not bound to an engine yet")
        return self._services

    @property
    def node_id(self) -> NodeId:
        return self.engine.node_id

    def on_start(self) -> None:
        """Hook invoked once the engine is running (timers, announcements)."""

    def on_stop(self) -> None:
        """Hook invoked when the node terminates gracefully."""

    # --- dispatch -------------------------------------------------------------------

    def register(self, type_: int, handler: Handler) -> None:
        """Install ``handler`` for messages of ``type_`` (overrides defaults)."""
        self._handlers[type_] = handler

    def process(self, msg: Message) -> Disposition | None:
        """Entry point called by the engine for every non-engine message."""
        handler = self._handlers.get(msg.type, self.on_unhandled)
        return handler(msg)

    # --- the one engine call + conveniences --------------------------------------------

    def send(self, msg: Message, dest: NodeId) -> None:
        """Forward/send a message to a downstream or peer node."""
        self.engine.send(msg, dest)

    def send_many(self, msg: Message, dests: Iterable[NodeId]) -> None:
        """Send (by reference) to every destination in ``dests``."""
        for dest in dests:
            self.engine.send(msg, dest)

    def disseminate(self, msg: Message, nodes: Iterable[NodeId], p: float = 1.0) -> int:
        """Send ``msg`` to each node with probability ``p`` (gossip).

        Returns the number of nodes the message was actually sent to.
        This is the ``disseminate`` utility the paper provides in
        ``iAlgorithm``.
        """
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        sent = 0
        for node in nodes:
            if node == self.node_id:
                continue
            if p >= 1.0 or self.rng.random() < p:
                self.engine.send(msg, node)
                sent += 1
        return sent

    def trace(self, text: str, app: AppId = 0, about: Message | None = None) -> None:
        """Log a trace record centrally at the observer.

        With ``about`` the record is stamped with that message's
        deterministic trace id (``sender/app#seq``) — derived from the
        immutable wire header, so traces about the same logical message
        carry the identical id on every backend and on every worker it
        crossed, and the observer can stitch them into one causal view.
        """
        if about is None:
            msg = Message(MsgType.TRACE, self.node_id, app, text.encode())
        else:
            from repro.telemetry.tracing import trace_id

            msg = Message.with_fields(
                MsgType.TRACE, self.node_id, app, text=text, trace_id=trace_id(about)
            )
        self.engine.send_to_observer(msg)

    # --- default handlers (overridable) ----------------------------------------------

    def on_data(self, msg: Message) -> Disposition | None:
        """Handle an application data message.  Default: consume silently."""
        return Disposition.DONE

    def on_deploy(self, msg: Message) -> Disposition | None:
        """Observer asked this node to become an application source."""
        fields = msg.fields()
        self.engine.start_source(int(fields["app"]), int(fields.get("payload_size", 5120)))
        return Disposition.DONE

    def on_terminate_source(self, msg: Message) -> Disposition | None:
        fields = msg.fields()
        self.engine.stop_source(int(fields["app"]))
        return Disposition.DONE

    def on_broken_source(self, msg: Message) -> Disposition | None:
        """An upstream application source failed; clear related state."""
        return Disposition.DONE

    def on_broken_link(self, msg: Message) -> Disposition | None:
        """An adjacent link was torn down; default drops the peer from KnownHosts."""
        fields = msg.fields()
        self.known_hosts.discard(NodeId.parse(fields["peer"]))
        return Disposition.DONE

    def on_new_upstream(self, msg: Message) -> Disposition | None:
        return Disposition.DONE

    def on_up_throughput(self, msg: Message) -> Disposition | None:
        """Periodic throughput measurement from an upstream link."""
        return Disposition.DONE

    def on_down_throughput(self, msg: Message) -> Disposition | None:
        """Periodic throughput measurement to a downstream link."""
        return Disposition.DONE

    def on_status_request(self, msg: Message) -> Disposition | None:
        """Observer asked for algorithm-specific status.  Default: nothing.

        The engine answers with its own status report regardless; this
        hook lets algorithms append their own fields via traces.
        """
        return Disposition.DONE

    def on_control(self, msg: Message) -> Disposition | None:
        """Generic observer command with two optional integer parameters."""
        return Disposition.DONE

    def on_unhandled(self, msg: Message) -> Disposition | None:
        """Fallback for types with no registered handler: consume."""
        return Disposition.DONE

    def _dispatch_timer(self, msg: Message) -> Disposition | None:
        return self.on_timer(int(msg.fields().get("token", 0)))

    def on_timer(self, token: int) -> Disposition | None:
        """A timer armed with ``engine.set_timer`` fired."""
        return Disposition.DONE

    def _dispatch_measure_reply(self, msg: Message) -> Disposition | None:
        fields = msg.fields()
        return self.on_measure_reply(
            NodeId.parse(fields["peer"]), float(fields["rtt"]), float(fields["send_rate"])
        )

    def on_measure_reply(
        self, peer: NodeId, rtt: float, send_rate: float
    ) -> Disposition | None:
        """An on-demand measurement requested via ``engine.measure`` returned."""
        return Disposition.DONE

    # --- internal defaults ---------------------------------------------------------------

    def _on_boot_reply(self, msg: Message) -> Disposition | None:
        """Record the observer-supplied set of initial nodes (``KnownHosts``)."""
        for text in msg.fields().get("hosts", []):
            self.known_hosts.add(NodeId.parse(text))
        self.on_bootstrapped()
        return Disposition.DONE

    def on_bootstrapped(self) -> None:
        """Hook invoked after the bootstrap reply has been recorded."""

    # --- the application layer (the paper's third tier) -------------------------

    def produce_payload(self, app: AppId, seq: int, size: int) -> bytes:
        """Produce the data portion of source message ``seq``.

        The paper separates the *application* — "which produces and
        interprets the data portion of application-layer messages" —
        from the algorithm.  Engines call this hook for every message a
        local source emits; applications (e.g. the streaming layer in
        :mod:`repro.apps.streaming`) override it to generate real
        content.  The default is a cached zero block, so plain
        throughput workloads stay allocation-free.
        """
        cached = self._zero_payload
        if cached is None or len(cached) != size:
            cached = bytes(size)
            self._zero_payload = cached
        return cached
