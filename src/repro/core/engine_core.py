"""The shared switching engine core, independent of any transport.

The paper describes **one** engine design — control messages drained
from the publicized port, data switched from receiver buffers to sender
buffers in weighted round-robin order, bounded buffers producing back
pressure, sources paced by flow control — and realizes it over
different transports.  This module is that single design:
:class:`EngineCore` owns every piece of switching semantics, and a
concrete engine (:class:`repro.sim.engine.SimEngine` over the
discrete-event kernel, :class:`repro.net.engine.AsyncioEngine` over
asyncio TCP) only supplies the *ports* the core is parameterized by:

- the **Clock port** — :meth:`EngineCore.now`;
- the **ObserverSink port** — :meth:`EngineCore.send_to_observer`;
- the **Transport port** — outbound routing/queues, connection
  management, task spawning and sleeping (everything prefixed with an
  underscore in the abstract list below).

Backends must *not* reimplement anything the core owns — the method
list is frozen by ``tests/test_engine_parity_surface.py``, which walks
both backends' ASTs and fails if a core-owned method reappears there.
That guard is what keeps the two engines from drifting apart again.

Synchronization primitives are duck-typed rather than imported: the
core works against any bounded FIFO with the :class:`MessageQueue`
surface and any level-triggered flag with the :class:`WakeEvent`
surface (``SimQueue``/``SimEvent`` in the simulator,
``AsyncBoundedQueue``/``asyncio.Event`` live).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Coroutine, Iterable, Protocol

from repro.core.algorithm import Algorithm, Disposition
from repro.core.bandwidth import NodeThrottle
from repro.core.ids import CONTROL_APP, AppId, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType, is_engine_type
from repro.core.stats import LinkStats, LinkStatsSnapshot
from repro.core.switch import PendingForward, ReceiverPort, SwitchScheduler
from repro.telemetry.tracing import EventType


class MessageQueue(Protocol):
    """The bounded-FIFO surface the core requires of every buffer."""

    @property
    def is_empty(self) -> bool: ...
    @property
    def closed(self) -> bool: ...
    def __len__(self) -> int: ...
    def put_nowait(self, item: Message) -> bool: ...
    def put_force(self, item: Message) -> None: ...
    def get_nowait(self) -> Message: ...


class WakeEvent(Protocol):
    """The level-triggered flag surface (``SimEvent`` / ``asyncio.Event``)."""

    def set(self) -> None: ...
    def clear(self) -> None: ...
    async def wait(self) -> Any: ...


class EngineCore(ABC):
    """One overlay node's switching semantics, shared by every transport.

    A backend constructs the core with its own control queue and wake
    events (whose blocking flavour matches the backend's scheduler) and
    implements the abstract Transport/Clock/ObserverSink methods.  The
    core then runs the engine loop, the weighted-round-robin switch,
    pending-forward retries, engine-owned control handling, status
    reporting, source pacing and all telemetry emission.
    """

    def __init__(
        self,
        node_id: NodeId,
        algorithm: Algorithm,
        config: Any,
        control: MessageQueue,
        wake: WakeEvent,
        send_space: WakeEvent,
    ) -> None:
        self._node_id = node_id
        self.algorithm = algorithm
        self.config = config
        self.throttle = NodeThrottle(config.bandwidth)
        self._scheduler = SwitchScheduler()
        self._control = control
        self._wake = wake
        self._send_space = send_space
        self._running = False
        self._sources: dict[AppId, Any] = {}
        self._local_apps: set[AppId] = set()
        self._app_upstreams: dict[AppId, set[NodeId]] = {}
        self._app_downstreams: dict[AppId, set[NodeId]] = {}
        # switching context: which receiver port (or source) produced the
        # message the algorithm is currently processing
        self._current_port: ReceiverPort | None = None
        self._source_pending: list[PendingForward] | None = None
        self._lost_messages = 0
        self._lost_bytes = 0
        # opt-in telemetry; when off, every hot-path hook is one `is None`.
        # Backends whose identity is only final later (port-0 binding)
        # call _bind_instruments once the node id is settled.
        self._ins = None
        self._peer_strs: dict[NodeId, str] = {}
        #: data-message send() calls observed while the algorithm runs,
        #: used to recognize local delivery (processed without re-sending)
        self._data_sends = 0

    def _bind_instruments(self) -> None:
        tel = self.config.telemetry
        if tel is not None:
            self._ins = tel.instruments_for(self._node_id)

    # ------------------------------------------------------------------ Clock port

    @abstractmethod
    def now(self) -> float:
        """Current time on this backend's clock (virtual or monotonic)."""

    # ----------------------------------------------------------- ObserverSink port

    @abstractmethod
    def send_to_observer(self, msg: Message) -> None:
        """Deliver a message to the observer over this backend's channel."""

    # -------------------------------------------------------------- Transport port

    @abstractmethod
    def _dispatch(self, msg: Message, dest: NodeId) -> None:
        """Route one message toward a non-local destination."""

    @abstractmethod
    def _outbound_queue(self, dest: NodeId) -> MessageQueue | None:
        """The established outbound buffer toward ``dest``, if any.

        A pure lookup — must not create connections as a side effect.
        """

    @abstractmethod
    def downstreams(self) -> list[NodeId]:
        """Peers this node holds an outgoing connection to."""

    @abstractmethod
    def disconnect(self, dest: NodeId) -> None:
        """Gracefully tear down the connection to ``dest`` (if any)."""

    @abstractmethod
    def _request_connect(self, dest: NodeId) -> None:
        """Begin establishing a persistent connection to ``dest``."""

    @abstractmethod
    def _request_shutdown(self) -> None:
        """Begin this node's graceful termination."""

    @abstractmethod
    def _spawn(self, coro: Coroutine, name: str) -> Any:
        """Schedule a coroutine as a cancellable task on the backend."""

    @abstractmethod
    async def _sleep(self, delay: float) -> None:
        """Suspend the calling task for ``delay`` seconds."""

    @abstractmethod
    def _call_later(self, delay: float, callback: Any, *args: Any) -> None:
        """Invoke ``callback(*args)`` after ``delay`` seconds."""

    async def _yield_control(self) -> None:
        """Give IO tasks a chance to run between busy engine rounds.

        The default keeps control (a no-op await): the cooperative sim
        kernel needs no breathing room.  Preemptible backends override
        this with a true reschedule.
        """

    def _on_engine_start(self) -> None:
        """Backend hook run when the engine loop begins (boot handshakes)."""

    def _flush_round(self) -> None:
        """Backend hook run once after every switch round that made progress.

        The batching contract is *one flush per destination per round*,
        not one per message.  The default is a no-op because both
        shipped backends already satisfy the contract without work here:
        the sim kernel has no flush concept, and the asyncio backend's
        per-peer sender tasks wake at ``_yield_control`` and drain the
        whole send queue into a single ``writer.drain()``.  A backend
        whose transport needs an explicit end-of-round flush (e.g. one
        buffering frames in the engine task itself) overrides this.
        """

    def _source_pacing(self) -> float:
        """Delay between source emissions once flow control is satisfied."""
        return 0.0

    def _credit_scale(self) -> int:
        """Multiplier applied to port weights at each credit epoch.

        Fairness between upstreams is a ratio of weights, so scaling
        every allowance equally leaves it intact; what changes is the
        granularity — one epoch moves ``weight * scale`` messages per
        port.  The asyncio backend scales epochs up to batch size; the
        simulator keeps per-message granularity (default 1) because its
        figures observe the fine-grained interleaving.
        """
        return 1

    def _rounds_per_wakeup(self) -> int:
        """How many switch rounds one engine wakeup may run (default 1).

        A credit epoch moves only ``weight`` messages per port, so with
        one round per wakeup a relay forwards a single message per
        scheduler pass no matter how many are buffered.  The asyncio
        backend raises this so one wakeup sweeps the whole backlog into
        the send queues and the per-peer sender flushes it as one
        batch.  The simulator keeps the default: its figures depend on
        the one-round-per-step interleaving, and virtual-clock wakeups
        cost nothing anyway.  Weighted fairness is unaffected — rounds
        replenish credits by weight, so the *ratio* between competing
        upstreams holds regardless of how many rounds run back to back.
        """
        return 1

    def _source_burst(self) -> int:
        """How many messages the source emits per wakeup (default 1).

        A backend whose scheduler round-robins many tasks (asyncio) can
        raise this so each source wakeup emits a *wave*: downstream
        sweeps, sender drains, and ring batches then carry the whole
        wave per cycle, amortizing the fixed per-wakeup costs that
        otherwise dominate when exactly one message trickles through the
        pipeline per event-loop pass.  The simulator keeps the default —
        its virtual clock makes wakeups free, and figure determinism
        depends on the one-emission-per-step cadence.
        """
        return 1

    @abstractmethod
    def _send_buffer_levels(self) -> dict[str, int]:
        """Occupancy of every outbound buffer, keyed by ``str(dest)``."""

    @abstractmethod
    def _recv_rates(self, now: float) -> dict[str, float]:
        """Measured inbound B/s per upstream, keyed by ``str(peer)``."""

    @abstractmethod
    def _send_rates(self, now: float) -> dict[str, float]:
        """Measured outbound B/s per downstream, keyed by ``str(dest)``."""

    @abstractmethod
    def _up_rate_reports(self, now: float) -> Iterable[tuple[str, float]]:
        """(peer, rate) pairs for periodic UP_THROUGHPUT notifications."""

    @abstractmethod
    def _down_rate_reports(self, now: float) -> Iterable[tuple[str, float]]:
        """(peer, rate) pairs for periodic DOWN_THROUGHPUT notifications."""

    @abstractmethod
    def _stats_in(self, peer: NodeId) -> LinkStats | None:
        """Inbound link statistics for ``peer``, if tracked."""

    @abstractmethod
    def _stats_out(self, peer: NodeId) -> LinkStats | None:
        """Outbound link statistics for ``peer``, if tracked."""

    # ------------------------------------------------------------- EngineServices

    @property
    def node_id(self) -> NodeId:
        """This node's publicized identity."""
        return self._node_id

    @property
    def running(self) -> bool:
        """True between start and termination."""
        return self._running

    def send(self, msg: Message, dest: NodeId) -> None:
        """The single engine entry point available to algorithms.

        ``send`` never raises and never reports failure synchronously:
        abnormal outcomes surface later as engine-produced messages
        (Section 2.3).  Data messages respect sender-buffer bounds and
        participate in back pressure; other (small protocol) messages
        are never blocked, so control traffic cannot deadlock behind
        data.
        """
        if not self._running:
            return
        if dest == self._node_id:
            self._control.put_force(msg)
            self._wake.set()
            return
        self._dispatch(msg, dest)

    def _stage(self, msg: Message, dest: NodeId, queue: MessageQueue) -> None:
        """Enqueue one outbound message on an established connection.

        Data respects the queue bound (deferring on overflow so the
        switch retries next round); control traffic is forced past it.
        """
        if msg.type == MsgType.DATA:
            self._track_downstream(msg.app, dest)
            if not queue.put_nowait(msg):
                self._defer_data(msg, dest)
        else:
            queue.put_force(msg)

    def upstreams(self) -> list[NodeId]:
        """Peers with a receiver port on this node."""
        return [port.peer for port in self._scheduler.ports]

    def link_stats(self, peer: NodeId) -> LinkStatsSnapshot | None:
        """QoS snapshot for the link to/from ``peer`` (outgoing preferred)."""
        stats = self._stats_out(peer)
        if stats is None:
            stats = self._stats_in(peer)
        return None if stats is None else stats.snapshot(self.now())

    def start_source(self, app: AppId, payload_size: int) -> None:
        """Deploy a back-to-back application data source here."""
        if app in self._sources or not self._running:
            return
        self._local_apps.add(app)
        self._sources[app] = self._spawn(
            self._source_loop(app, payload_size), name=f"{self._node_id}/source-{app}"
        )

    def stop_source(self, app: AppId) -> None:
        """Terminate a deployed source and tell downstreams it is gone."""
        task = self._sources.pop(app, None)
        self._local_apps.discard(app)
        if task is not None:
            task.cancel()
        self._broadcast_broken_source(app)

    def set_timer(self, delay: float, token: int = 0) -> None:
        """Deliver a ``TIMER`` message to the algorithm after ``delay``."""
        msg = Message.with_fields(MsgType.TIMER, self._node_id, CONTROL_APP, token=token)
        self._call_later(delay, self._enqueue_notification, msg)

    def set_port_weight(self, peer: NodeId, weight: int) -> None:
        """Dynamically retune a receiver port's round-robin weight."""
        self._scheduler.set_weight(peer, weight)
        self._wake.set()

    def measure(self, peer: NodeId) -> None:
        """Probe RTT to ``peer``; the algorithm receives MEASURE_REPLY.

        The probe is a tiny HEARTBEAT request/echo over the persistent
        connection — used only on demand, never as a periodic heartbeat.
        """
        probe = Message.with_fields(
            MsgType.HEARTBEAT, self._node_id, CONTROL_APP,
            probe="req", t0=self.now(), origin=str(self._node_id),
        )
        self.send(probe, peer)

    def recv_rate(self, peer: NodeId) -> float:
        """Current incoming throughput from ``peer`` in bytes/second."""
        stats = self._stats_in(peer)
        return 0.0 if stats is None else stats.throughput.rate(self.now())

    def send_rate(self, peer: NodeId) -> float:
        """Current outgoing throughput to ``peer`` in bytes/second."""
        stats = self._stats_out(peer)
        return 0.0 if stats is None else stats.throughput.rate(self.now())

    def buffer_levels(self) -> dict[str, int]:
        """Receiver/sender buffer occupancy (for the observer's display)."""
        levels = {f"recv:{port.peer}": len(port.buffer) for port in self._scheduler.ports}
        for dest, depth in self._send_buffer_levels().items():
            levels[f"send:{dest}"] = depth
        return levels

    def queue_snapshot(self) -> dict[str, dict]:
        """O(1)-per-port queue depths and buffered bytes.

        ``recv`` maps each upstream label to ``[depth, bytes]`` (the
        switch's incrementally maintained gauges — no buffer is
        scanned); ``send`` maps each downstream label to its outbound
        buffer depth.  Routing algorithms poll this every tick to feed
        tunnel-occupancy penalties, and both backends embed it in the
        periodic STATUS report as the ``queues`` field.
        """
        recv = {
            label: [depth, nbytes]
            for label, (depth, nbytes) in self._scheduler.queue_snapshot().items()
        }
        return {
            "recv": recv,
            "send": self._send_buffer_levels(),
            "total_messages": self._scheduler.total_buffered(),
            "total_bytes": self._scheduler.total_buffered_bytes(),
        }

    # --------------------------------------------------------------------- engine

    async def _engine_loop(self) -> None:
        self._on_engine_start()
        self.algorithm.on_start()
        while self._running:
            progressed = self._drain_control()
            if self._switch_round():
                progressed = True
            if progressed:
                # Backend policy: keep switching while buffered work
                # remains before flushing and yielding.  Bounded even
                # with a large budget — the inner rounds consume the
                # (bounded) receive buffers and cannot refill them,
                # since IO tasks only run after the yield below.
                extra = self._rounds_per_wakeup() - 1
                while extra > 0:
                    more = self._drain_control()
                    if self._switch_round():
                        more = True
                    if not more:
                        break
                    extra -= 1
                self._flush_round()
                await self._yield_control()
            else:
                # No await happened since the last state change we saw, so
                # clear-then-wait cannot lose a wake-up (cooperative tasks).
                self._wake.clear()
                await self._wake.wait()

    def _drain_control(self) -> bool:
        progressed = False
        while self._running and not self._control.is_empty:
            msg = self._control.get_nowait()
            progressed = True
            if is_engine_type(msg.type):
                self._engine_process(msg)
            else:
                self.algorithm.process(msg)
        return progressed

    def _engine_process(self, msg: Message) -> None:
        """Handle engine-owned control types (``Engine::process`` in Table 1)."""
        if msg.type == MsgType.TERMINATE:
            self._request_shutdown()
        elif msg.type == MsgType.SET_BANDWIDTH:
            self._apply_bandwidth(msg)
        elif msg.type == MsgType.CONNECT:
            self._request_connect(NodeId.parse(msg.fields()["dest"]))
        elif msg.type == MsgType.DISCONNECT:
            self.disconnect(NodeId.parse(msg.fields()["dest"]))
        elif msg.type == MsgType.REQUEST:
            self.send_to_observer(self._status_report())
            self.algorithm.process(msg)  # let the algorithm add its own report
        elif msg.type == MsgType.HEARTBEAT:
            self._handle_probe(msg)

    def _handle_probe(self, msg: Message) -> None:
        fields = msg.fields()
        origin = NodeId.parse(fields["origin"])
        if fields.get("probe") == "req":
            extra = {}
            if "liveness" in fields:
                extra["liveness"] = fields["liveness"]
            echo = Message.with_fields(
                MsgType.HEARTBEAT, self._node_id, CONTROL_APP,
                probe="resp", t0=fields["t0"], origin=fields["origin"], **extra,
            )
            self.send(echo, origin)
        elif fields.get("probe") == "resp":
            if fields.get("liveness"):
                # Watchdog traffic: receiving the frame already reset the
                # peer's inactivity clock; the algorithm never sees it.
                return
            peer = msg.sender
            rtt = self.now() - float(fields["t0"])
            self._enqueue_notification(Message.with_fields(
                MsgType.MEASURE_REPLY, self._node_id, CONTROL_APP,
                peer=str(peer), rtt=rtt, send_rate=self.send_rate(peer),
            ))

    def _apply_bandwidth(self, msg: Message) -> None:
        fields = msg.fields()
        category, rate = fields["category"], fields["rate"]
        if category == "total":
            self.throttle.set_total(rate)
        elif category == "up":
            self.throttle.set_up(rate)
        elif category == "down":
            self.throttle.set_down(rate)
        elif category == "link":
            self.throttle.set_link(NodeId.parse(fields["peer"]), rate)
        else:
            raise ValueError(f"unknown bandwidth category: {category!r}")

    def _status_report(self) -> Message:
        now = self.now()
        fields = dict(
            node=str(self._node_id),
            upstreams=[str(p) for p in self.upstreams()],
            downstreams=[str(d) for d in self.downstreams()],
            recv_buffers=self._recv_buffer_levels(),
            send_buffers=self._send_buffer_levels(),
            recv_rates=self._recv_rates(now),
            send_rates=self._send_rates(now),
            lost_messages=self._lost_messages,
            lost_bytes=self._lost_bytes,
            apps=sorted(self._local_apps | set(self._app_upstreams)),
            queues=self.queue_snapshot(),
        )
        if self.config.telemetry is not None:
            self._refresh_buffer_gauges()
            fields["metrics"] = self.config.telemetry.snapshot(node=str(self._node_id))
        return Message.with_fields(MsgType.STATUS, self._node_id, CONTROL_APP, **fields)

    def _recv_buffer_levels(self) -> dict[str, int]:
        return {p.label: len(p.buffer) for p in self._scheduler.ports_view()}

    def _refresh_buffer_gauges(self) -> None:
        if self._ins is None:
            return
        self._ins.set_buffer_gauges(self._recv_buffer_levels(), self._send_buffer_levels())

    # --------------------------------------------------------------------- switch

    def _switch_round(self) -> bool:
        """One weighted (deficit) round-robin pass over all receiver ports.

        Credits are consumed as messages depart a port, so under output
        congestion — where every message traverses the pending path —
        competing upstreams still share the output in weight proportion.
        When every port with work has exhausted its credit, a new credit
        epoch starts and the pass reruns.
        """
        progressed = False
        ins = self._ins
        moved = 0
        for port in self._scheduler.rotation():
            if not port.has_work():
                continue
            if port.credit <= 0:
                if ins is not None:
                    ins.credit_stalls[port.label] += 1
                    epoch = self._scheduler.epochs
                    if ins.tracer.enabled and port.stall_epoch != epoch:
                        port.stall_epoch = epoch
                        ins.trace_port(self.now(), EventType.CREDIT_EXHAUSTED, port.label)
                continue
            if port.pending:
                before = len(port.pending)
                self._retry_pending(port)
                completed = before - len(port.pending)
                if completed:
                    port.credit -= completed
                    progressed = True
                if port.blocked or port.credit <= 0:
                    continue
            while port.credit > 0 and not port.blocked and not port.buffer.is_empty:
                msg = port.buffer.get_nowait()  # type: ignore[attr-defined]
                port.note_bytes(-msg.size)
                port.switched += 1
                moved += 1
                if ins is not None:
                    self._record_pick(port, msg)
                self._track_upstream(msg.app, port.peer)
                self._current_port = port
                sends_before = self._data_sends
                try:
                    disposition = self.algorithm.process(msg)
                finally:
                    self._current_port = None
                if disposition is Disposition.HOLD:
                    port.held += 1
                elif ins is not None and self._data_sends == sends_before:
                    ins.n_delivers += 1
                    if ins.tracer.enabled:
                        ins.trace_msg(self.now(), EventType.DELIVER, msg)
                progressed = True
                if not port.blocked:
                    port.credit -= 1
        if ins is not None:
            ins.n_switch_rounds += 1
            if moved:
                ins.observe_batch(float(moved))
        # Epoch boundary: once every port that still has work has spent its
        # credit, start a new epoch.  (Ports with credit left keep their
        # claim on upcoming sender-buffer slots, which is exactly what makes
        # the weight ratio hold under output congestion.)  The backlog must
        # be explicitly non-empty: the scheduler's O(1) has_work() can read
        # momentarily-stale counters, and a vacuous all() over zero backlog
        # ports would fire a spurious epoch with progressed=True.
        scheduler = self._scheduler
        has_backlog = False
        if scheduler.has_work():  # O(1) pre-filter; may be stale-positive
            all_spent = True
            for port in scheduler.ports_view():
                if port.has_work():
                    has_backlog = True
                    if port.credit > 0:
                        all_spent = False
                        break
            has_backlog = has_backlog and all_spent
        if has_backlog:
            scheduler.replenish_credits(self._credit_scale())
            if ins is not None:
                ins.n_credit_epochs += 1
            progressed = True  # rerun the switch with fresh credits
        return progressed

    def _peer_str(self, node: NodeId) -> str:
        """Cached ``str(node)`` for telemetry labels (NodeId.__str__ formats)."""
        label = self._peer_strs.get(node)
        if label is None:
            label = self._peer_strs[node] = str(node)
        return label

    def _record_pick(self, port: ReceiverPort, msg: Message) -> None:
        """Telemetry for one switched message (queue wait + pick event)."""
        ins = self._ins
        now = self.now()
        ins.switched[port.label] += 1
        times = port.wait_times
        if times:
            ins.observe_wait(now - times.popleft())
        if ins.tracer.enabled:
            ins.trace_msg(now, EventType.SWITCH_PICK, msg, port.label)

    def _retry_pending(self, port: ReceiverPort) -> bool:
        progressed = False
        ins = self._ins
        for forward in port.pending:
            progressed = self._try_forward(forward) or progressed
            if ins is not None:
                ins.n_retries += 1
                if forward.done:
                    ins.n_retry_completions += 1
                if ins.tracer.enabled:
                    ins.trace_retry(self.now(), forward.msg, forward.done)
        port.prune_pending()
        return progressed

    def _try_forward(self, forward: PendingForward) -> bool:
        placed_any = False
        still_remaining: list[NodeId] = []
        for dest in forward.remaining:
            queue = self._outbound_queue(dest)
            if queue is None or queue.closed:
                placed_any = True  # destination vanished; drop the obligation
                continue
            if queue.put_nowait(forward.msg):
                placed_any = True
            else:
                still_remaining.append(dest)
        forward.remaining = still_remaining
        return placed_any

    def _defer_data(self, msg: Message, dest: NodeId) -> None:
        """A data send hit a full sender buffer: remember the remaining sender."""
        ins = self._ins
        if ins is not None:
            label = self._peer_str(dest)
            ins.defers[label] += 1
            if ins.tracer.enabled:
                ins.trace_msg(self.now(), EventType.DEFER, msg, label)
        if self._current_port is not None:
            self._current_port.deferred += 1
            pending = self._current_port.pending
            if pending and pending[-1].msg is msg:
                pending[-1].remaining.append(dest)
            else:
                self._current_port.add_pending(PendingForward(msg, [dest]))
        elif self._source_pending is not None:
            if self._source_pending and self._source_pending[-1].msg is msg:
                self._source_pending[-1].remaining.append(dest)
            else:
                self._source_pending.append(PendingForward(msg, [dest]))
        else:
            # No switching context (e.g. algorithm reacting to a control
            # message): queue unconditionally rather than drop.
            queue = self._outbound_queue(dest)
            if queue is not None and not queue.closed:
                queue.put_force(msg)

    # --------------------------------------------------------------------- source

    async def _source_loop(self, app: AppId, payload_size: int) -> None:
        """Produce back-to-back data messages, flow-controlled by send buffers."""
        seq = 0
        while self._running and app in self._local_apps:
            # Emit a burst per wakeup (backend policy, default 1); flow
            # control still applies per message, so a full send buffer
            # parks the whole wave until space frees up.
            for _ in range(self._source_burst()):
                if not (self._running and app in self._local_apps):
                    break
                payload = self.algorithm.produce_payload(app, seq, payload_size)
                msg = Message(MsgType.DATA, self._node_id, app, payload, seq=seq)
                seq += 1
                if self._ins is not None:
                    self._ins.n_source += 1
                    msg._hop_t0 = self.now()  # first hop starts at the source
                    if self._ins.tracer.enabled:
                        self._ins.trace_msg(self.now(), EventType.SOURCE_EMIT, msg)
                self._source_pending = []
                try:
                    self.algorithm.process(msg)
                    while any(f.remaining for f in self._source_pending) and self._running:
                        self._send_space.clear()
                        await self._send_space.wait()
                        for forward in self._source_pending:
                            self._try_forward(forward)
                        self._source_pending = [f for f in self._source_pending if f.remaining]
                finally:
                    self._source_pending = None
            # Pace the producer: bounds event volume when sends are never
            # flow-controlled (see the backend's pacing policy).
            await self._sleep(self._source_pacing())

    def _broadcast_broken_source(self, app: AppId) -> None:
        downstreams = self._app_downstreams.pop(app, set())
        if self._ins is not None and downstreams:
            self._ins.n_domino += 1
        notice = Message.with_fields(
            MsgType.BROKEN_SOURCE, self._node_id, app, app=app, origin=str(self._node_id)
        )
        for dest in downstreams:
            queue = self._outbound_queue(dest)
            if queue is not None and not queue.closed:
                queue.put_force(notice.clone())

    def _propagate_broken_source(self, msg: Message, peer: NodeId) -> None:
        """Domino effect: the path through ``peer`` lost its source.

        Only when the *last* upstream feeding the application is gone
        (and we are not the source ourselves) does the failure cascade
        to our downstreams — multi-path topologies keep flowing.
        """
        app = AppId(msg.fields().get("app", msg.app))
        upstreams = self._app_upstreams.get(app)
        if upstreams is not None:
            upstreams.discard(peer)
            if upstreams:
                return
            del self._app_upstreams[app]
        if app not in self._local_apps:
            self._broadcast_broken_source(app)

    def _domino_upstream_lost(self, peer: NodeId) -> None:
        """Cascade for every application fed exclusively by a dead upstream."""
        for app, ups in list(self._app_upstreams.items()):
            ups.discard(peer)
            if not ups and app not in self._local_apps:
                del self._app_upstreams[app]
                self._broadcast_broken_source(app)

    # -------------------------------------------------------------------- reports

    async def _report_loop(self) -> None:
        """Periodically report per-link throughput to the algorithm."""
        while self._running:
            await self._sleep(self.config.report_interval)
            if not self._running:
                return
            self._refresh_buffer_gauges()
            now = self.now()
            for peer, rate in self._up_rate_reports(now):
                self._enqueue_notification(Message.with_fields(
                    MsgType.UP_THROUGHPUT, self._node_id, CONTROL_APP,
                    peer=peer, rate=rate,
                ))
            for peer, rate in self._down_rate_reports(now):
                self._enqueue_notification(Message.with_fields(
                    MsgType.DOWN_THROUGHPUT, self._node_id, CONTROL_APP,
                    peer=peer, rate=rate,
                ))

    def _send_boot(self) -> None:
        self.send_to_observer(Message.with_fields(
            MsgType.BOOT, self._node_id, CONTROL_APP, node=str(self._node_id)
        ))

    # --------------------------------------------------------------------- helpers

    def _enqueue_notification(self, msg: Message) -> None:
        if not self._running:
            return
        self._control.put_force(msg)
        self._wake.set()

    def _notify_broken_link(self, peer: NodeId, direction: str) -> None:
        if self._ins is not None:
            self._ins.on_broken_link(direction)
        self._enqueue_notification(Message.with_fields(
            MsgType.BROKEN_LINK, self._node_id, CONTROL_APP,
            peer=str(peer), direction=direction,
        ))

    def _record_loss(self, msg: Message) -> None:
        """Cumulative node-level loss accounting (survives link teardown)."""
        self._lost_messages += 1
        self._lost_bytes += msg.size
        if self._ins is not None:
            self._ins.n_drops += 1
            self._ins.n_dropped_bytes += msg.size
            if self._ins.tracer.enabled:
                self._ins.trace_msg(self.now(), EventType.DROP, msg)

    def _track_downstream(self, app: AppId, dest: NodeId) -> None:
        # get-then-add: setdefault would allocate a throwaway set per call
        peers = self._app_downstreams.get(app)
        if peers is None:
            peers = self._app_downstreams[app] = set()
        peers.add(dest)

    def _track_upstream(self, app: AppId, peer: NodeId) -> None:
        peers = self._app_upstreams.get(app)
        if peers is None:
            peers = self._app_upstreams[app] = set()
        peers.add(peer)
