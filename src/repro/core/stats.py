"""QoS measurement: throughput, latency and loss meters.

The paper measures, at the socket level, per-connection TCP throughput,
round-trip latency and bytes/messages lost to failures, and reports the
results periodically to the algorithm and the observer (Section 2.2).
The experiments read link throughputs off these meters (e.g. the edge
labels in Figs. 6–9), so the meters must converge quickly yet smooth
out burstiness — we use a sliding window of fixed-duration buckets.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


class ThroughputMeter:
    """Sliding-window byte-rate meter.

    Bytes are accumulated into ``bucket_span``-second buckets; the rate
    is total bytes over the covered window.  The window slides in whole
    buckets, so the meter is cheap (O(1) amortized per record) and
    deterministic under virtual time.
    """

    __slots__ = ("_bucket_span", "_window", "_buckets", "_current_start", "_current_bytes", "_total_bytes", "_total_msgs", "_last_record")

    def __init__(self, window: float = 4.0, bucket_span: float = 0.5) -> None:
        if window <= 0 or bucket_span <= 0 or bucket_span > window:
            raise ValueError("need 0 < bucket_span <= window")
        self._bucket_span = bucket_span
        self._window = window
        self._buckets: deque[tuple[float, int]] = deque()  # (bucket start, bytes)
        self._current_start: float | None = None
        self._current_bytes = 0
        self._total_bytes = 0
        self._total_msgs = 0
        self._last_record: float | None = None

    def record(self, nbytes: int, now: float) -> None:
        """Account ``nbytes`` transferred at time ``now``."""
        self.record_bulk(nbytes, 1, now)

    def record_bulk(self, nbytes: int, nmsgs: int, now: float) -> None:
        """Account ``nmsgs`` messages totalling ``nbytes``, all at ``now``.

        Batched IO loops flush many frames per wakeup; accounting the
        whole flush with one call keeps the meter off the per-message
        path.  Attributing the batch to a single instant is exact for
        cumulative totals and indistinguishable for the sliding rate —
        the batch left in one flush, so it genuinely shares a bucket.
        """
        self._total_bytes += nbytes
        self._total_msgs += nmsgs
        self._last_record = now
        if self._current_start is None:
            self._current_start = now
        while now >= self._current_start + self._bucket_span:
            self._buckets.append((self._current_start, self._current_bytes))
            self._current_start += self._bucket_span
            self._current_bytes = 0
        self._current_bytes += nbytes
        self._expire(now)

    def rate(self, now: float) -> float:
        """Bytes per second over the sliding window ending at ``now``."""
        self._expire(now)
        window_bytes = self._current_bytes + sum(b for _, b in self._buckets)
        if self._current_start is None:
            return 0.0
        oldest = self._buckets[0][0] if self._buckets else self._current_start
        covered = max(now - oldest, self._bucket_span)
        return window_bytes / covered

    def _expire(self, now: float) -> None:
        cutoff = now - self._window
        while self._buckets and self._buckets[0][0] + self._bucket_span < cutoff:
            self._buckets.popleft()

    @property
    def total_bytes(self) -> int:
        """Cumulative bytes since creation (never expires)."""
        return self._total_bytes

    @property
    def total_messages(self) -> int:
        """Cumulative messages since creation."""
        return self._total_msgs

    def last_activity(self) -> float | None:
        """Time of the most recent record, or ``None`` if never used.

        Failure detection uses this to spot long consecutive periods of
        traffic inactivity (Section 2.2) without active probes.  This is
        the exact record time, not the current bucket's start — the
        bucket start lags the true time by up to one bucket span, which
        would inflate inactivity windows.
        """
        return self._last_record


class LatencyMeter:
    """Exponentially-weighted round-trip latency estimator (RFC6298 style)."""

    __slots__ = ("_srtt", "_alpha", "_samples")

    def __init__(self, alpha: float = 0.125) -> None:
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self._srtt: float | None = None
        self._alpha = alpha
        self._samples = 0

    def record(self, rtt: float) -> None:
        if rtt < 0:
            raise ValueError("rtt must be non-negative")
        self._samples += 1
        if self._srtt is None:
            self._srtt = rtt
        else:
            self._srtt += self._alpha * (rtt - self._srtt)

    @property
    def smoothed(self) -> float | None:
        """Smoothed RTT in seconds, or ``None`` before the first sample."""
        return self._srtt

    @property
    def samples(self) -> int:
        return self._samples


class LossCounter:
    """Counts messages and bytes lost to failures on one link."""

    __slots__ = ("messages", "bytes")

    def __init__(self) -> None:
        self.messages = 0
        self.bytes = 0

    def record(self, nbytes: int, nmessages: int = 1) -> None:
        self.messages += nmessages
        self.bytes += nbytes


@dataclass
class LinkStats:
    """Everything measured about one direction of one overlay link."""

    throughput: ThroughputMeter = field(default_factory=ThroughputMeter)
    latency: LatencyMeter = field(default_factory=LatencyMeter)
    loss: LossCounter = field(default_factory=LossCounter)

    def snapshot(self, now: float) -> "LinkStatsSnapshot":
        return LinkStatsSnapshot(
            rate=self.throughput.rate(now),
            total_bytes=self.throughput.total_bytes,
            total_messages=self.throughput.total_messages,
            srtt=self.latency.smoothed,
            lost_messages=self.loss.messages,
            lost_bytes=self.loss.bytes,
        )


@dataclass(frozen=True)
class LinkStatsSnapshot:
    """Immutable point-in-time view of :class:`LinkStats` (for reports)."""

    rate: float
    total_bytes: int
    total_messages: int
    srtt: float | None
    lost_messages: int
    lost_bytes: int
