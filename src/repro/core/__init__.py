"""Sans-IO middleware core shared by the simulated and asyncio engines."""

from repro.core.algorithm import Algorithm, Disposition, EngineServices, KnownHosts
from repro.core.bandwidth import BandwidthSpec, NodeThrottle, RateLimiter
from repro.core.buffer import CircularBuffer
from repro.core.ids import CONTROL_APP, AppId, NodeId
from repro.core.message import HEADER_SIZE, Message
from repro.core.msgtypes import ALGORITHM_TYPE_BASE, MsgType
from repro.core.stats import LatencyMeter, LinkStats, LossCounter, ThroughputMeter
from repro.core.switch import PendingForward, ReceiverPort, SwitchScheduler

__all__ = [
    "ALGORITHM_TYPE_BASE",
    "Algorithm",
    "AppId",
    "BandwidthSpec",
    "CONTROL_APP",
    "CircularBuffer",
    "Disposition",
    "EngineServices",
    "HEADER_SIZE",
    "KnownHosts",
    "LatencyMeter",
    "LinkStats",
    "LossCounter",
    "Message",
    "MsgType",
    "NodeId",
    "NodeThrottle",
    "PendingForward",
    "RateLimiter",
    "ReceiverPort",
    "SwitchScheduler",
    "ThroughputMeter",
]
