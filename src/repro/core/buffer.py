"""Bounded circular FIFO used for receiver and sender buffers.

The paper implements the shared buffers between receiver, engine and
sender threads as thread-safe circular queues with a fixed capacity in
*messages* (Section 2.2).  Buffer capacity is the lever behind the whole
back-pressure story (Figs. 6 and 7), so capacity accounting must be
exact.  Synchronization (blocking put/get) lives in the runtime layers
(:mod:`repro.sim.sync`, asyncio queues); this class is the pure data
structure both build on.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from repro.errors import BufferClosedError

T = TypeVar("T")


class CircularBuffer(Generic[T]):
    """A fixed-capacity FIFO ring of message references.

    Stores references only — never copies of items — mirroring the
    paper's zero-copy design.  ``put`` on a full buffer and ``get`` on an
    empty buffer raise ``IndexError``; callers that need blocking
    semantics wrap the buffer with runtime-specific synchronization.
    """

    __slots__ = ("_items", "_capacity", "_head", "_count", "_closed", "on_size_change")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"buffer capacity must be >= 1, got {capacity}")
        self._items: list[T | None] = [None] * capacity
        self._capacity = capacity
        self._head = 0  # index of the oldest item
        self._count = 0
        self._closed = False
        #: optional listener called with the size delta after every
        #: mutation; lets aggregators (e.g. SwitchScheduler) maintain
        #: totals incrementally instead of re-summing buffers
        self.on_size_change = None

    # --- capacity --------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of items the buffer can hold."""
        return self._capacity

    def __len__(self) -> int:
        return self._count

    @property
    def is_full(self) -> bool:
        return self._count == self._capacity

    @property
    def is_empty(self) -> bool:
        return self._count == 0

    @property
    def free(self) -> int:
        """Number of free slots."""
        return self._capacity - self._count

    # --- queue operations --------------------------------------------------------

    def put(self, item: T) -> None:
        """Append ``item``; raises ``IndexError`` if full, ``BufferClosedError`` if closed."""
        if self._closed:
            raise BufferClosedError("put on closed buffer")
        if self._count == self._capacity:
            raise IndexError("buffer full")
        tail = (self._head + self._count) % self._capacity
        self._items[tail] = item
        self._count += 1
        if self.on_size_change is not None:
            self.on_size_change(1)

    def get(self) -> T:
        """Remove and return the oldest item; raises ``IndexError`` if empty."""
        if self._count == 0:
            raise IndexError("buffer empty")
        item = self._items[self._head]
        self._items[self._head] = None  # drop the reference promptly
        self._head = (self._head + 1) % self._capacity
        self._count -= 1
        if self.on_size_change is not None:
            self.on_size_change(-1)
        assert item is not None
        return item

    def peek(self) -> T:
        """Return the oldest item without removing it."""
        if self._count == 0:
            raise IndexError("buffer empty")
        item = self._items[self._head]
        assert item is not None
        return item

    def clear(self) -> list[T]:
        """Remove and return all items, oldest first."""
        drained = list(self)
        self._items = [None] * self._capacity
        self._head = 0
        self._count = 0
        if drained and self.on_size_change is not None:
            self.on_size_change(-len(drained))
        return drained

    # --- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Refuse further ``put`` calls; existing items may still be drained."""
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    # --- iteration -------------------------------------------------------------------

    def __iter__(self) -> Iterator[T]:
        """Iterate oldest-to-newest without consuming."""
        for offset in range(self._count):
            item = self._items[(self._head + offset) % self._capacity]
            assert item is not None
            yield item

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"CircularBuffer({self._count}/{self._capacity}, {state})"
