"""A deterministic discrete-event kernel driving ``async def`` tasks.

The paper's engine is a set of POSIX threads (receivers, senders, the
engine thread) that block on buffers and sockets.  We reproduce that
concurrency structure as coroutine tasks over *virtual time*: the same
blocking style (``await queue.get()``, ``await kernel.sleep(d)``), but
scheduled by a priority queue of timestamped events, so every run is
exactly reproducible and simulated hours execute in real-time seconds.

This kernel is intentionally independent of ``asyncio``: it drives
coroutines directly via ``send``/``throw``.  Any ``async def`` function
that only awaits this module's :class:`Future` objects (directly or
through other coroutines) can run on it.

Determinism guarantees:

- events fire in (time, creation sequence) order — FIFO among ties;
- task wake-ups are themselves events, so the interleaving is a pure
  function of the program and the seed.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Awaitable, Callable, Coroutine, Generator

from repro.errors import SimulationError


class Cancelled(BaseException):
    """Raised inside a task when it is cancelled.

    Derives from ``BaseException`` (like ``asyncio.CancelledError``) so
    that blanket ``except Exception`` handlers in node code cannot
    swallow a termination request.
    """


class Future:
    """A one-shot container for a value that a task can ``await``."""

    __slots__ = ("_kernel", "_done", "_result", "_exception", "_callbacks")

    def __init__(self, kernel: "Kernel") -> None:
        self._kernel = kernel
        self._done = False
        self._result: Any = None
        self._exception: BaseException | None = None
        self._callbacks: list[Callable[["Future"], None]] = []

    @property
    def done(self) -> bool:
        return self._done

    def set_result(self, value: Any = None) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._result = value
        self._fire()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._exception = exc
        self._fire()

    def result(self) -> Any:
        if not self._done:
            raise SimulationError("future not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._result

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        if self._done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def __await__(self) -> Generator["Future", None, Any]:
        if not self._done:
            yield self  # the running Task picks this up and parks on it
        return self.result()


class Task:
    """A coroutine being driven by the kernel."""

    __slots__ = ("_kernel", "_coro", "name", "_finished", "_result", "_exception", "_cancelled", "_waiting_on", "_done_futures")

    def __init__(self, kernel: "Kernel", coro: Coroutine[Any, Any, Any], name: str) -> None:
        self._kernel = kernel
        self._coro = coro
        self.name = name
        self._finished = False
        self._result: Any = None
        self._exception: BaseException | None = None
        self._cancelled = False
        self._waiting_on: Future | None = None
        self._done_futures: list[Future] = []

    # --- state ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def result(self) -> Any:
        if not self._finished:
            raise SimulationError(f"task {self.name!r} has not finished")
        if self._exception is not None:
            raise self._exception
        return self._result

    def join(self) -> Future:
        """A future resolved when this task finishes (for ``await task.join()``)."""
        future = Future(self._kernel)
        if self._finished:
            future.set_result(self._result)
        else:
            self._done_futures.append(future)
        return future

    # --- control -----------------------------------------------------------------

    def cancel(self) -> None:
        """Request cancellation; the task sees :class:`Cancelled` at its next step."""
        if self._finished or self._cancelled:
            return
        self._cancelled = True
        # Detach from whatever it is waiting on and schedule the throw.
        self._waiting_on = None
        self._kernel.call_soon(self._step_throw, Cancelled())

    # --- stepping ------------------------------------------------------------------

    def _step_send(self, value: Any) -> None:
        if self._finished:
            return
        try:
            yielded = self._coro.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
        except Cancelled:
            self._finish(cancelled=True)
        except BaseException as exc:  # noqa: BLE001 - crash is recorded, re-raised by kernel
            self._finish(exception=exc)
        else:
            self._park(yielded)

    def _step_throw(self, exc: BaseException) -> None:
        if self._finished:
            return
        try:
            yielded = self._coro.throw(exc)
        except StopIteration as stop:
            self._finish(result=stop.value)
        except Cancelled:
            self._finish(cancelled=True)
        except BaseException as raised:  # noqa: BLE001
            self._finish(exception=raised)
        else:
            self._park(yielded)

    def _park(self, yielded: Any) -> None:
        if not isinstance(yielded, Future):
            self._finish(
                exception=SimulationError(
                    f"task {self.name!r} awaited a non-kernel awaitable: {yielded!r}"
                )
            )
            return
        self._waiting_on = yielded
        yielded.add_done_callback(self._wake)

    def _wake(self, future: Future) -> None:
        # Ignore stale wake-ups from futures we abandoned on cancellation.
        if self._finished or future is not self._waiting_on:
            return
        self._waiting_on = None
        if future._exception is not None:
            self._kernel.call_soon(self._step_throw, future._exception)
        else:
            self._kernel.call_soon(self._step_send, future._result)

    def _finish(
        self,
        result: Any = None,
        exception: BaseException | None = None,
        cancelled: bool = False,
    ) -> None:
        self._finished = True
        self._result = result
        self._exception = exception
        self._cancelled = cancelled or self._cancelled
        self._coro.close()
        self._kernel._task_finished(self)
        for future in self._done_futures:
            if exception is not None:
                future.set_exception(exception)
            else:
                future.set_result(result)
        self._done_futures.clear()

    def __repr__(self) -> str:
        state = "finished" if self._finished else ("cancelled" if self._cancelled else "running")
        return f"Task({self.name!r}, {state})"


class Kernel:
    """The virtual-time event loop."""

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._sequence = 0
        self._tasks: list[Task] = []
        self._crashed: list[Task] = []
        self.rng = random.Random(seed)

    # --- time --------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # --- scheduling -----------------------------------------------------------------

    def call_at(self, when: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at virtual time ``when``."""
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        heapq.heappush(self._heap, (when, self._sequence, callback, args))
        self._sequence += 1

    def call_later(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self.call_at(self._now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> None:
        self.call_at(self._now, callback, *args)

    def sleep(self, delay: float) -> Future:
        """Awaitable that resolves ``delay`` virtual seconds from now."""
        future = Future(self)
        self.call_later(delay, self._resolve_sleep, future)
        return future

    @staticmethod
    def _resolve_sleep(future: Future) -> None:
        if not future.done:  # a cancelled sleeper may have been abandoned
            future.set_result(None)

    def future(self) -> Future:
        return Future(self)

    # --- tasks ---------------------------------------------------------------------

    def spawn(self, coro: Coroutine[Any, Any, Any], name: str | None = None) -> Task:
        """Start driving ``coro`` as a task (first step runs as an event *now*)."""
        task = Task(self, coro, name or getattr(coro, "__name__", "task"))
        self._tasks.append(task)
        self.call_soon(task._step_send, None)
        return task

    def _task_finished(self, task: Task) -> None:
        if task._exception is not None:
            self._crashed.append(task)

    @property
    def live_tasks(self) -> list[Task]:
        return [task for task in self._tasks if not task.finished]

    # --- running ----------------------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events in order until the heap drains or ``until`` passes.

        Returns the virtual time at which the run stopped.  If any task
        crashed with an exception, the first crash is re-raised so test
        failures surface immediately instead of as silent hangs.
        ``max_events`` is a debugging guard against zero-latency livelock
        (an unbounded cascade of same-timestamp events).
        """
        processed = 0
        while self._heap:
            when, _, callback, args = self._heap[0]
            if until is not None and when > until:
                break
            if max_events is not None and processed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events} at t={self._now}")
            heapq.heappop(self._heap)
            self._now = when
            processed += 1
            callback(*args)
            if self._crashed:
                task = self._crashed[0]
                raise SimulationError(f"task {task.name!r} crashed") from task._exception
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_complete(self, coro: Coroutine[Any, Any, Any], timeout: float | None = None) -> Any:
        """Spawn ``coro``, run until it finishes, and return its result."""
        task = self.spawn(coro, name="run_until_complete")
        deadline = None if timeout is None else self._now + timeout
        while not task.finished:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: no scheduled events but {task.name!r} has not finished"
                )
            if deadline is not None and self._heap[0][0] > deadline:
                task.cancel()
                self.run(until=deadline)
                raise SimulationError(f"run_until_complete timed out after {timeout}s")
            when, _, callback, args = heapq.heappop(self._heap)
            self._now = when
            callback(*args)
            if self._crashed:
                crashed = self._crashed[0]
                raise SimulationError(f"task {crashed.name!r} crashed") from crashed._exception
        return task.result()


async def gather(*awaitables: Awaitable[Any]) -> list[Any]:
    """Await several kernel awaitables sequentially, returning their results.

    Sequential awaiting is sufficient under virtual time: awaiting an
    already-resolved future costs zero simulated time, so the wall-clock
    of the *simulation* is unaffected by the order.
    """
    return [await awaitable for awaitable in awaitables]
