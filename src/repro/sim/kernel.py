"""A deterministic discrete-event kernel driving ``async def`` tasks.

The paper's engine is a set of POSIX threads (receivers, senders, the
engine thread) that block on buffers and sockets.  We reproduce that
concurrency structure as coroutine tasks over *virtual time*: the same
blocking style (``await queue.get()``, ``await kernel.sleep(d)``), but
scheduled by timestamped events, so every run is exactly reproducible
and simulated hours execute in real-time seconds.

This kernel is intentionally independent of ``asyncio``: it drives
coroutines directly via ``send``/``throw``.  Any ``async def`` function
that only awaits this module's :class:`Future` objects (directly or
through other coroutines) can run on it.

Determinism guarantees:

- events fire in (time, creation sequence) order — FIFO among ties;
- task wake-ups are themselves events, so the interleaving is a pure
  function of the program and the seed.

Two event stores back those guarantees.  Timed events (``call_at``,
``call_later``, ``sleep``) live in a binary heap; *immediate* events
(``call_soon``, task wake-ups — the overwhelming majority in a message
switching workload) live in a FIFO ready deque and never touch the
heap.  Both carry the same global creation sequence, so draining them
in (time, sequence) order reproduces exactly the schedule a single
heap would have produced.

Timers are cancellable: ``call_at``/``call_later`` return a
:class:`TimerHandle`, and cancelling a task whose ``sleep`` is pending
retires the underlying timer immediately instead of leaving a dead
entry in the heap until its deadline.  Dead entries that do arise are
skipped on pop and compacted away when they outnumber the live ones,
so the heap stays bounded under arbitrary spawn/cancel churn.
"""

from __future__ import annotations

import heapq
from collections import deque
from random import Random
from typing import Any, Awaitable, Callable, Coroutine, Generator

from repro.errors import SimulationError

# A scheduled event is a mutable 4-slot list [when, seq, callback, args].
# Lists (not tuples) so cancellation can null the callback in place; the
# unique ``seq`` guarantees heap comparisons never reach the callback.
_WHEN, _SEQ, _CALLBACK, _ARGS = 0, 1, 2, 3

#: lazy heap compaction threshold: rebuild once dead timers both exceed
#: this floor and outnumber live entries (amortized O(1) per cancel)
_COMPACT_FLOOR = 64


class Cancelled(BaseException):
    """Raised inside a task when it is cancelled.

    Derives from ``BaseException`` (like ``asyncio.CancelledError``) so
    that blanket ``except Exception`` handlers in node code cannot
    swallow a termination request.
    """


class TimerHandle:
    """A cancellable reference to one timed event.

    Returned by :meth:`Kernel.call_at` and :meth:`Kernel.call_later`.
    ``cancel()`` is idempotent and O(1): the heap entry is retired in
    place and skipped (or compacted away) by the run loop.
    """

    __slots__ = ("_entry", "_kernel")

    def __init__(self, entry: list, kernel: "Kernel") -> None:
        self._entry = entry
        self._kernel = kernel

    @property
    def when(self) -> float:
        """The virtual time this timer fires (even after cancellation)."""
        return self._entry[_WHEN]

    @property
    def cancelled(self) -> bool:
        """True once cancelled (or already fired — the entry is spent)."""
        return self._entry[_CALLBACK] is None

    def cancel(self) -> None:
        """Retire the timer; a no-op if it already fired or was cancelled."""
        entry = self._entry
        if entry[_CALLBACK] is not None:
            entry[_CALLBACK] = None
            entry[_ARGS] = None
            self._kernel._timer_died()

    def __repr__(self) -> str:
        state = "cancelled/spent" if self.cancelled else f"at {self.when}"
        return f"TimerHandle({state})"


class Future:
    """A one-shot container for a value that a task can ``await``.

    The common case — exactly one waiter (the awaiting task) — is kept
    allocation-free: the first callback lands in a dedicated slot and
    only additional waiters grow a list.
    """

    __slots__ = ("_kernel", "_done", "_result", "_exception",
                 "_callback", "_callbacks", "_timer")

    def __init__(self, kernel: "Kernel") -> None:
        self._kernel = kernel
        self._done = False
        self._result: Any = None
        self._exception: BaseException | None = None
        self._callback: Callable[["Future"], None] | None = None
        self._callbacks: list[Callable[["Future"], None]] | None = None
        # The heap entry resolving this future, when it is a sleep; lets
        # task cancellation retire the timer instead of abandoning it.
        self._timer: list | None = None

    @property
    def done(self) -> bool:
        return self._done

    def set_result(self, value: Any = None) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._result = value
        self._fire()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise SimulationError("future already resolved")
        self._done = True
        self._exception = exc
        self._fire()

    def result(self) -> Any:
        if not self._done:
            raise SimulationError("future not resolved yet")
        if self._exception is not None:
            raise self._exception
        return self._result

    def add_done_callback(self, callback: Callable[["Future"], None]) -> None:
        if self._done:
            callback(self)
        elif self._callback is None:
            self._callback = callback
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)

    def _fire(self) -> None:
        callback = self._callback
        if callback is not None:
            self._callback = None
            callback(self)
        if self._callbacks is not None:
            callbacks, self._callbacks = self._callbacks, None
            for callback in callbacks:
                callback(self)

    def __await__(self) -> Generator["Future", None, Any]:
        if not self._done:
            yield self  # the running Task picks this up and parks on it
        return self.result()


class Task:
    """A coroutine being driven by the kernel."""

    __slots__ = ("_kernel", "_coro", "name", "_finished", "_result",
                 "_exception", "_cancelled", "_waiting_on", "_done_futures")

    def __init__(self, kernel: "Kernel", coro: Coroutine[Any, Any, Any], name: str) -> None:
        self._kernel = kernel
        self._coro = coro
        self.name = name
        self._finished = False
        self._result: Any = None
        self._exception: BaseException | None = None
        self._cancelled = False
        self._waiting_on: Future | None = None
        self._done_futures: list[Future] | None = None

    # --- state ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def result(self) -> Any:
        if not self._finished:
            raise SimulationError(f"task {self.name!r} has not finished")
        if self._exception is not None:
            raise self._exception
        return self._result

    def join(self) -> Future:
        """A future resolved when this task finishes (for ``await task.join()``)."""
        future = Future(self._kernel)
        if self._finished:
            future.set_result(self._result)
        else:
            if self._done_futures is None:
                self._done_futures = []
            self._done_futures.append(future)
        return future

    # --- control -----------------------------------------------------------------

    def cancel(self) -> None:
        """Request cancellation; the task sees :class:`Cancelled` at its next step."""
        if self._finished or self._cancelled:
            return
        self._cancelled = True
        # Detach from whatever it is waiting on; a pending sleep's timer
        # is retired immediately so it never lingers in the heap.
        waiting = self._waiting_on
        if waiting is not None:
            self._waiting_on = None
            timer = waiting._timer
            if timer is not None and timer[_CALLBACK] is not None:
                timer[_CALLBACK] = None
                timer[_ARGS] = None
                self._kernel._timer_died()
        self._kernel.call_soon(self._step_throw, Cancelled())

    # --- stepping ------------------------------------------------------------------

    def _step_send(self, value: Any) -> None:
        if self._finished:
            return
        try:
            yielded = self._coro.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
        except Cancelled:
            self._finish(cancelled=True)
        except BaseException as exc:  # noqa: BLE001 - crash is recorded, re-raised by kernel
            self._finish(exception=exc)
        else:
            self._park(yielded)

    def _step_throw(self, exc: BaseException) -> None:
        if self._finished:
            return
        try:
            yielded = self._coro.throw(exc)
        except StopIteration as stop:
            self._finish(result=stop.value)
        except Cancelled:
            self._finish(cancelled=True)
        except BaseException as raised:  # noqa: BLE001
            self._finish(exception=raised)
        else:
            self._park(yielded)

    def _park(self, yielded: Any) -> None:
        if type(yielded) is not Future and not isinstance(yielded, Future):
            self._finish(
                exception=SimulationError(
                    f"task {self.name!r} awaited a non-kernel awaitable: {yielded!r}"
                )
            )
            return
        self._waiting_on = yielded
        yielded.add_done_callback(self._wake)

    def _wake(self, future: Future) -> None:
        # Ignore stale wake-ups from futures we abandoned on cancellation.
        if self._finished or future is not self._waiting_on:
            return
        self._waiting_on = None
        kernel = self._kernel
        seq = kernel._sequence
        kernel._sequence = seq + 1
        exc = future._exception
        if exc is not None:
            kernel._ready.append((seq, self._step_throw, (exc,)))
        else:
            kernel._ready.append((seq, self._step_send, (future._result,)))

    def _finish(
        self,
        result: Any = None,
        exception: BaseException | None = None,
        cancelled: bool = False,
    ) -> None:
        self._finished = True
        self._result = result
        self._exception = exception
        self._cancelled = cancelled or self._cancelled
        self._coro.close()
        self._kernel._task_finished(self)
        if self._done_futures is not None:
            for future in self._done_futures:
                if exception is not None:
                    future.set_exception(exception)
                else:
                    future.set_result(result)
            self._done_futures = None

    def __repr__(self) -> str:
        state = "finished" if self._finished else ("cancelled" if self._cancelled else "running")
        return f"Task({self.name!r}, {state})"


class Kernel:
    """The virtual-time event loop."""

    __slots__ = ("_now", "_heap", "_ready", "_sequence", "_live",
                 "_crashed", "_dead_timers", "rng")

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        #: timed events: a heap of [when, seq, callback, args] lists
        self._heap: list[list] = []
        #: immediate events: (seq, callback, args) in FIFO order
        self._ready: deque[tuple[int, Callable[..., None], tuple]] = deque()
        self._sequence = 0
        #: insertion-ordered set of unfinished tasks
        self._live: dict[Task, None] = {}
        self._crashed: list[Task] = []
        #: cancelled timers still sitting in the heap (compacted lazily)
        self._dead_timers = 0
        self.rng = Random(seed)

    # --- time --------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # --- scheduling -----------------------------------------------------------------

    def _next_seq(self) -> int:
        seq = self._sequence
        self._sequence = seq + 1
        return seq

    def call_at(self, when: float, callback: Callable[..., None], *args: Any) -> TimerHandle:
        """Schedule ``callback(*args)`` at virtual time ``when``.

        Returns a :class:`TimerHandle` whose ``cancel()`` retires the
        event without waiting for its deadline.
        """
        if when < self._now:
            raise SimulationError(f"cannot schedule in the past: {when} < {self._now}")
        entry = [when, self._next_seq(), callback, args]
        heapq.heappush(self._heap, entry)
        return TimerHandle(entry, self)

    def call_later(self, delay: float, callback: Callable[..., None], *args: Any) -> TimerHandle:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at the current virtual time.

        The fast path: lands in the FIFO ready deque, never the heap.
        """
        seq = self._sequence
        self._sequence = seq + 1
        self._ready.append((seq, callback, args))

    def sleep(self, delay: float) -> Future:
        """Awaitable that resolves ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        future = Future(self)
        entry = [self._now + delay, self._next_seq(), self._resolve_sleep, (future,)]
        heapq.heappush(self._heap, entry)
        future._timer = entry
        return future

    @staticmethod
    def _resolve_sleep(future: Future) -> None:
        if not future.done:  # an abandoned sleeper's future resolves into the void
            future.set_result(None)

    def future(self) -> Future:
        return Future(self)

    # --- timer bookkeeping ------------------------------------------------------

    def _timer_died(self) -> None:
        """Account one cancelled heap entry; compact when they dominate.

        Compaction mutates the heap *in place* (slice assignment): the
        run loops hold a local alias to ``self._heap``, and rebinding to
        a fresh list here would strand them on the stale one whenever a
        callback cancels enough timers mid-run.
        """
        self._dead_timers = dead = self._dead_timers + 1
        if dead > _COMPACT_FLOOR and dead * 2 > len(self._heap):
            self._heap[:] = [entry for entry in self._heap if entry[_CALLBACK] is not None]
            heapq.heapify(self._heap)
            self._dead_timers = 0

    @property
    def pending_timers(self) -> int:
        """Live (non-cancelled) entries currently in the timer heap."""
        return len(self._heap) - self._dead_timers

    # --- tasks ---------------------------------------------------------------------

    def spawn(self, coro: Coroutine[Any, Any, Any], name: str | None = None) -> Task:
        """Start driving ``coro`` as a task (first step runs as an event *now*)."""
        task = Task(self, coro, name or getattr(coro, "__name__", "task"))
        self._live[task] = None
        self._ready.append((self._next_seq(), task._step_send, (None,)))
        return task

    def _task_finished(self, task: Task) -> None:
        self._live.pop(task, None)
        if task._exception is not None:
            self._crashed.append(task)

    @property
    def live_tasks(self) -> list[Task]:
        """Unfinished tasks, in spawn order (no scan over finished ones)."""
        return list(self._live)

    # --- running ----------------------------------------------------------------------

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Process events in order until both stores drain or ``until`` passes.

        Returns the virtual time at which the run stopped.  If any task
        crashed with an exception, the first crash is re-raised so test
        failures surface immediately instead of as silent hangs.
        ``max_events`` is a debugging guard against zero-latency livelock
        (an unbounded cascade of same-timestamp events).
        """
        if until is not None and until < self._now:
            return self._now
        heap = self._heap
        ready = self._ready
        ready_pop = ready.popleft
        heappop = heapq.heappop
        crashed = self._crashed
        budget = -1 if max_events is None else max_events
        while True:
            if ready:
                # A timed event at the *current* timestamp created earlier
                # than the ready head must fire first (global FIFO order);
                # cancelled timers at the head are retired on the way.
                if heap:
                    head = heap[0]
                    while head[_CALLBACK] is None:
                        heappop(heap)
                        self._dead_timers -= 1
                        if not heap:
                            head = None
                            break
                        head = heap[0]
                    if head is not None and head[_WHEN] <= self._now and head[_SEQ] < ready[0][0]:
                        heappop(heap)
                        callback, args = head[_CALLBACK], head[_ARGS]
                        head[_CALLBACK] = head[_ARGS] = None  # mark spent
                    else:
                        _, callback, args = ready_pop()
                else:
                    _, callback, args = ready_pop()
            elif heap:
                head = heap[0]
                if head[_CALLBACK] is None:  # retired timer: skip, no event
                    heappop(heap)
                    self._dead_timers -= 1
                    continue
                when = head[_WHEN]
                if until is not None and when > until:
                    break
                heappop(heap)
                self._now = when
                callback, args = head[_CALLBACK], head[_ARGS]
                head[_CALLBACK] = head[_ARGS] = None  # mark spent
            else:
                break
            if budget >= 0:
                if budget == 0:
                    raise SimulationError(f"exceeded max_events={max_events} at t={self._now}")
                budget -= 1
            if args:
                callback(*args)
            else:
                callback()
            if crashed:
                task = crashed[0]
                raise SimulationError(f"task {task.name!r} crashed") from task._exception
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_complete(self, coro: Coroutine[Any, Any, Any], timeout: float | None = None) -> Any:
        """Spawn ``coro``, run until it finishes, and return its result.

        The loop mirrors :meth:`run` exactly — same two event stores,
        same dead-timer pruning — so the deadline decision is always
        made against the next *live* event.  On timeout the task is
        cancelled, events up to the deadline (including the cancellation
        throw itself) are drained, and :class:`SimulationError` is
        raised with virtual time resting exactly at the deadline.
        """
        task = self.spawn(coro, name="run_until_complete")
        deadline = None if timeout is None else self._now + timeout
        heap = self._heap
        ready = self._ready
        crashed = self._crashed
        while not task.finished:
            while heap and heap[0][_CALLBACK] is None:
                heapq.heappop(heap)
                self._dead_timers -= 1
            if ready:
                callback = None
                if heap:
                    head = heap[0]
                    if head[_WHEN] <= self._now and head[_SEQ] < ready[0][0]:
                        heapq.heappop(heap)
                        callback, args = head[_CALLBACK], head[_ARGS]
                        head[_CALLBACK] = head[_ARGS] = None
                if callback is None:
                    _, callback, args = ready.popleft()
            elif heap:
                head = heap[0]
                when = head[_WHEN]
                if deadline is not None and when > deadline:
                    task.cancel()
                    self.run(until=deadline)
                    raise SimulationError(f"run_until_complete timed out after {timeout}s")
                heapq.heappop(heap)
                self._now = when
                callback, args = head[_CALLBACK], head[_ARGS]
                head[_CALLBACK] = head[_ARGS] = None
            else:
                raise SimulationError(
                    f"deadlock: no scheduled events but {task.name!r} has not finished"
                )
            callback(*args)
            if crashed:
                failed = crashed[0]
                raise SimulationError(f"task {failed.name!r} crashed") from failed._exception
        return task.result()


async def gather(*awaitables: Awaitable[Any]) -> list[Any]:
    """Await several kernel awaitables sequentially, returning their results.

    Sequential awaiting is sufficient under virtual time: awaiting an
    already-resolved future costs zero simulated time, so the wall-clock
    of the *simulation* is unaffected by the order.
    """
    return [await awaitable for awaitable in awaitables]
