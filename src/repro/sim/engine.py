"""The simulated engine backend: EngineCore over the discrete-event kernel.

All switching semantics — control draining, the weighted-round-robin
switch, pending-forward retries, probe/bandwidth/status handling, source
pacing, telemetry — live in :class:`repro.core.engine_core.EngineCore`.
This module supplies only what is transport-specific: simulated links
(one receiver task per upstream, one sender task per downstream),
link construction through the :class:`Fabric`, inactivity detection
tuned to virtual time, and graceful termination.

The algorithm runs only inside the engine task (plus source tasks, which
never interleave mid-``process``), preserving the paper's guarantee that
algorithms need no thread-safe data structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any, Coroutine, Iterable, Protocol

from repro.core.algorithm import Algorithm
from repro.core.bandwidth import BandwidthSpec
from repro.core.engine_core import EngineCore
from repro.core.ids import CONTROL_APP, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.core.stats import LinkStats
from repro.core.switch import ReceiverPort
from repro.errors import BufferClosedError, LinkDownError
from repro.sim.kernel import Kernel, Task
from repro.sim.link import SimLink
from repro.sim.sync import SimEvent, SimQueue
from repro.telemetry import Telemetry
from repro.telemetry.tracing import EventType


class Fabric(Protocol):
    """What an engine needs from the surrounding network."""

    def open_link(self, src: NodeId, dst: NodeId) -> SimLink | None:
        """Create a directed connection; ``None`` if ``dst`` is not alive."""

    def to_observer(self, msg: Message) -> None:
        """Deliver a message to the (centralized) observer."""

    def node_terminated(self, node: NodeId) -> None:
        """Notification that ``node`` finished its graceful shutdown."""


@dataclass
class EngineConfig:
    """Tunables of one engine instance.

    ``buffer_capacity`` is the paper's per-buffer size in messages (both
    receiver and sender buffers) — the lever between delay-sensitive
    (small) and bandwidth-aggressive (large) behaviour (Section 2.4).
    """

    buffer_capacity: int = 64
    report_interval: float = 1.0
    #: seconds of upstream silence before the link is declared failed;
    #: ``None`` disables inactivity detection (sim links usually fail loudly).
    inactivity_timeout: float | None = None
    #: minimal virtual time between two source-produced messages.  "Back to
    #: back as fast as possible" needs a floor in a discrete-event world:
    #: without one, a source whose sends are never flow-controlled (e.g.
    #: all its destinations just died) would produce unboundedly many
    #: messages without advancing virtual time.
    source_interval: float = 0.001
    #: period between repeated bootstrap requests to the observer, so nodes
    #: that booted early still learn about later arrivals; ``None`` sends a
    #: single bootstrap request at start-up only.
    bootstrap_refresh: float | None = 5.0
    bandwidth: BandwidthSpec = dataclass_field(default_factory=BandwidthSpec)
    #: opt-in telemetry (metrics + lifecycle tracing); ``None`` keeps the
    #: data path entirely uninstrumented (the default).
    telemetry: Telemetry | None = None


@dataclass
class _SenderLink:
    """Engine-side state of one outgoing connection (thread-per-sender)."""

    dest: NodeId
    link: SimLink
    queue: SimQueue[Message]
    stats: LinkStats
    task: Task | None = None
    #: virtual time at which the current in-flight delivery started, for
    #: inactivity detection of silently-stalled links; None when idle.
    in_flight_since: float | None = None
    #: cached ``str(dest)`` for telemetry labels
    label: str = dataclass_field(init=False, default="")

    def __post_init__(self) -> None:
        self.label = str(self.dest)


class SimEngine(EngineCore):
    """One virtualized overlay node: engine + algorithm + connections."""

    def __init__(
        self,
        kernel: Kernel,
        node_id: NodeId,
        algorithm: Algorithm,
        fabric: Fabric,
        config: EngineConfig | None = None,
    ) -> None:
        self.kernel = kernel
        self._fabric = fabric
        config = config or EngineConfig()
        super().__init__(
            node_id, algorithm, config,
            control=SimQueue(kernel),  # the publicized port
            wake=SimEvent(kernel),
            send_space=SimEvent(kernel),
        )
        self._senders: dict[NodeId, _SenderLink] = {}
        self._upstream_links: dict[NodeId, SimLink] = {}
        self._recv_stats: dict[NodeId, LinkStats] = {}
        self._last_recv_at: dict[NodeId, float] = {}
        self._terminated = False
        self._tasks: list[Task] = []
        self._bind_instruments()

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Bind the algorithm and spawn the engine's tasks."""
        if self._running or self._terminated:
            raise RuntimeError(f"engine {self._node_id} already started")
        self._running = True
        self.algorithm.bind(self)
        self._tasks.append(self.kernel.spawn(self._engine_loop(), name=f"{self._node_id}/engine"))
        self._tasks.append(self.kernel.spawn(self._report_loop(), name=f"{self._node_id}/report"))
        if self.config.inactivity_timeout is not None:
            self._tasks.append(
                self.kernel.spawn(self._watchdog_loop(), name=f"{self._node_id}/watchdog")
            )

    def terminate(self) -> None:
        """Gracefully shut the node down (the observer's *terminate node*).

        All incident links are broken so neighbours detect the failure
        through their normal error paths; local tasks are cancelled and
        data structures cleared — the paper's graceful termination.
        """
        if not self._running:
            return
        self._running = False
        self._terminated = True
        for task in self._sources.values():
            task.cancel()
        self._sources.clear()
        self._local_apps.clear()
        for sender in list(self._senders.values()):
            sender.link.break_()
            sender.queue.close()
            if sender.task is not None:
                sender.task.cancel()
        self._senders.clear()
        for link in list(self._upstream_links.values()):
            link.break_()
        self._upstream_links.clear()
        for port in list(self._scheduler.ports):
            self._scheduler.remove_port(port.peer)
        self._control.close()
        self._wake.set()
        self._send_space.set()
        for task in self._tasks:
            task.cancel()
        self._tasks.clear()
        self.algorithm.on_stop()
        self._fabric.node_terminated(self._node_id)

    # ------------------------------------------------------ Clock / ObserverSink

    def now(self) -> float:
        return self.kernel.now

    def send_to_observer(self, msg: Message) -> None:
        if self._running:
            self._fabric.to_observer(msg)

    # -------------------------------------------------------------- Transport port

    def _dispatch(self, msg: Message, dest: NodeId) -> None:
        sender = self._ensure_sender(dest)
        if sender is None:
            self._notify_broken_link(dest, direction="down")
            return
        if self._ins is not None and msg.type == MsgType.DATA:
            self._data_sends += 1
        self._stage(msg, dest, sender.queue)

    def _outbound_queue(self, dest: NodeId) -> SimQueue[Message] | None:
        sender = self._senders.get(dest)
        return None if sender is None else sender.queue

    def downstreams(self) -> list[NodeId]:
        return list(self._senders)

    def _request_connect(self, dest: NodeId) -> None:
        self.connect(dest)

    def _request_shutdown(self) -> None:
        self.terminate()

    def _spawn(self, coro: Coroutine, name: str) -> Task:
        return self.kernel.spawn(coro, name=name)

    async def _sleep(self, delay: float) -> None:
        await self.kernel.sleep(delay)

    def _call_later(self, delay: float, callback: Any, *args: Any) -> None:
        self.kernel.call_later(delay, callback, *args)

    def _on_engine_start(self) -> None:
        # Table 1: start the TCP server, bootstrap from observer, then loop.
        self._send_boot()
        if self.config.bootstrap_refresh is not None:
            self._tasks.append(
                self.kernel.spawn(self._bootstrap_loop(), name=f"{self._node_id}/boot")
            )

    def _source_pacing(self) -> float:
        return self.config.source_interval

    def _send_buffer_levels(self) -> dict[str, int]:
        return {s.label: len(s.queue) for s in self._senders.values()}

    def _recv_rates(self, now: float) -> dict[str, float]:
        return {str(p): st.throughput.rate(now) for p, st in self._recv_stats.items()}

    def _send_rates(self, now: float) -> dict[str, float]:
        return {s.label: s.stats.throughput.rate(now) for s in self._senders.values()}

    def _up_rate_reports(self, now: float) -> Iterable[tuple[str, float]]:
        for peer, stats in self._recv_stats.items():
            if self._scheduler.get_port(peer) is None:
                continue
            yield str(peer), stats.throughput.rate(now)

    def _down_rate_reports(self, now: float) -> Iterable[tuple[str, float]]:
        for dest, sender in self._senders.items():
            yield str(dest), sender.stats.throughput.rate(now)

    def _stats_in(self, peer: NodeId) -> LinkStats | None:
        return self._recv_stats.get(peer)

    def _stats_out(self, peer: NodeId) -> LinkStats | None:
        sender = self._senders.get(peer)
        return None if sender is None else sender.stats

    # ----------------------------------------------------------------- connections

    def connect(self, dest: NodeId) -> bool:
        """Ensure a persistent outgoing connection to ``dest`` exists."""
        return self._ensure_sender(dest) is not None

    def disconnect(self, dest: NodeId) -> None:
        """Tear down the outgoing connection to ``dest`` (if any)."""
        sender = self._senders.pop(dest, None)
        if sender is None:
            return
        sender.link.break_()
        lost = sender.queue.drain()
        sender.queue.close()
        for msg in lost:
            sender.stats.loss.record(msg.size)
            self._record_loss(msg)
        if sender.task is not None:
            sender.task.cancel()
        self.throttle.drop_link(dest)
        for app in list(self._app_downstreams):
            self._app_downstreams[app].discard(dest)

    def accept_upstream(self, link: SimLink) -> None:
        """Register an incoming connection (called by the fabric)."""
        if not self._running or link.src in self._upstream_links:
            return
        self._upstream_links[link.src] = link
        buffer: SimQueue[Message] = SimQueue(self.kernel, capacity=self.config.buffer_capacity)
        port = ReceiverPort(peer=link.src, buffer=buffer)  # type: ignore[arg-type]
        self._scheduler.add_port(port)
        self._recv_stats[link.src] = LinkStats()
        self._last_recv_at[link.src] = self.kernel.now
        self._tasks.append(
            self.kernel.spawn(
                self._receiver_loop(link, port), name=f"{self._node_id}/recv-{link.src}"
            )
        )
        self._enqueue_notification(
            Message.with_fields(MsgType.NEW_UPSTREAM, self._node_id, CONTROL_APP, peer=str(link.src))
        )

    def deliver_control(self, msg: Message) -> None:
        """Inject a message into the node's publicized port (observer path)."""
        if not self._running:
            return
        self._control.put_force(msg)
        self._wake.set()

    async def _bootstrap_loop(self) -> None:
        refresh = self.config.bootstrap_refresh
        assert refresh is not None
        while self._running:
            await self.kernel.sleep(refresh)
            if self._running:
                self._send_boot()

    # ------------------------------------------------------------------- receivers

    async def _receiver_loop(self, link: SimLink, port: ReceiverPort) -> None:
        peer = link.src
        stats = self._recv_stats[peer]
        while self._running:
            try:
                msg, sent_at = await link.inbox.get()
            except BufferClosedError:
                if self._running:
                    self._upstream_failed(peer)
                return
            arrival = sent_at + link.latency
            if arrival > self.kernel.now:
                await self.kernel.sleep(arrival - self.kernel.now)
            delay = self.throttle.reserve_recv(msg.size, self.kernel.now)
            if delay > 0:
                if self._ins is not None:
                    self._ins.on_throttle_stall("down", delay)
                await self.kernel.sleep(delay)
            stats.throughput.record(msg.size, self.kernel.now)
            self._last_recv_at[peer] = self.kernel.now
            if not self._running:
                return
            if msg.type == MsgType.DATA:
                try:
                    await port.buffer.put(msg)  # type: ignore[attr-defined]
                except BufferClosedError:
                    return
                port.note_bytes(msg.size)
                ins = self._ins
                if ins is not None:
                    now = self.kernel.now
                    label = port.label
                    ins.enqueued[label] += 1
                    port.wait_times.append(now)
                    msg._hop_t0 = now  # this hop's clock starts here
                    if ins.tracer.enabled:
                        ins.trace_msg(now, EventType.ENQUEUE, msg, label)
            else:
                if msg.type == MsgType.BROKEN_SOURCE:
                    self._propagate_broken_source(msg, peer)
                self._control.put_force(msg)
            self._wake.set()

    def _upstream_failed(self, peer: NodeId) -> None:
        """An incoming connection failed (broken pipe / closed socket)."""
        link = self._upstream_links.pop(peer, None)
        if link is not None:
            link.break_()
        port = self._scheduler.remove_port(peer)
        if port is not None:
            lost = port.buffer.drain() if hasattr(port.buffer, "drain") else []  # type: ignore[attr-defined]
            stats = self._recv_stats.get(peer)
            if stats is not None:
                for msg in lost:
                    stats.loss.record(msg.size)
                    self._record_loss(msg)
        # Drop the stats entry with the port: a dead upstream must not
        # linger in status-report recv_rates (stale-NodeId leak).
        self._recv_stats.pop(peer, None)
        self._last_recv_at.pop(peer, None)
        self._notify_broken_link(peer, direction="up")
        # Domino effect: any application fed exclusively by this upstream
        # has lost its source from our point of view.
        self._domino_upstream_lost(peer)
        self._wake.set()

    async def _watchdog_loop(self) -> None:
        """Detect upstream failures via long consecutive traffic inactivity."""
        timeout = self.config.inactivity_timeout
        assert timeout is not None
        while self._running:
            await self.kernel.sleep(timeout / 2)
            if not self._running:
                return
            now = self.kernel.now
            for peer, last in list(self._last_recv_at.items()):
                if now - last > timeout:
                    link = self._upstream_links.get(peer)
                    if link is not None:
                        link.break_()  # unblocks the receiver task, which cleans up
                    else:
                        self._upstream_failed(peer)
            # Sender side: a delivery stuck longer than the timeout means the
            # downstream is silently gone (stalled link) — tear it down.
            for sender in list(self._senders.values()):
                started = sender.in_flight_since
                if started is not None and now - started > timeout:
                    sender.link.break_()
                    if sender.task is not None:
                        sender.task.cancel()
                    self._sender_failed(sender, undelivered=[])

    # --------------------------------------------------------------------- senders

    def _ensure_sender(self, dest: NodeId) -> _SenderLink | None:
        sender = self._senders.get(dest)
        if sender is not None:
            return sender
        link = self._fabric.open_link(self._node_id, dest)
        if link is None:
            return None
        queue: SimQueue[Message] = SimQueue(self.kernel, capacity=self.config.buffer_capacity)
        sender = _SenderLink(dest=dest, link=link, queue=queue, stats=LinkStats())
        self._senders[dest] = sender
        sender.task = self.kernel.spawn(
            self._sender_loop(sender), name=f"{self._node_id}/send-{dest}"
        )
        self._tasks.append(sender.task)
        return sender

    async def _sender_loop(self, sender: _SenderLink) -> None:
        while self._running:
            try:
                msg = await sender.queue.get()
            except BufferClosedError:
                return
            sender.in_flight_since = self.kernel.now
            delay = self.throttle.reserve_send(sender.dest, msg.size, self.kernel.now)
            if delay > 0:
                if self._ins is not None:
                    self._ins.on_throttle_stall("up", delay)
                await self.kernel.sleep(delay)
            if self._ins is not None and sender.link.inbox.is_full:
                self._ins.backpressure[sender.label] += 1
            try:
                await sender.link.deliver(msg)
            except LinkDownError:
                if self._running:
                    self._sender_failed(sender, undelivered=[msg])
                return
            sender.in_flight_since = None
            sender.stats.throughput.record(msg.size, self.kernel.now)
            ins = self._ins
            if ins is not None and msg.type == MsgType.DATA:
                label = sender.label
                ins.forwarded[label] += 1
                now = self.kernel.now
                t0 = msg._hop_t0
                if t0 is not None:
                    ins.observe_hop(now - t0 if now > t0 else 0.0)
                if ins.tracer.enabled:
                    ins.trace_msg(now, EventType.FORWARD, msg, label)
            self._send_space.set()
            self._wake.set()

    def _sender_failed(self, sender: _SenderLink, undelivered: list[Message]) -> None:
        """An outgoing connection failed mid-send."""
        current = self._senders.get(sender.dest)
        if current is not sender:
            return  # already replaced or removed
        del self._senders[sender.dest]
        lost = undelivered + sender.queue.drain()
        sender.queue.close()
        for msg in lost:
            sender.stats.loss.record(msg.size)
            self._record_loss(msg)
        self.throttle.drop_link(sender.dest)
        for port in self._scheduler.ports:
            port.discard_dest(sender.dest)
        if self._source_pending is not None:
            for forward in self._source_pending:
                forward.remaining = [d for d in forward.remaining if d != sender.dest]
        for app in list(self._app_downstreams):
            self._app_downstreams[app].discard(sender.dest)
        self._notify_broken_link(sender.dest, direction="down")
        self._send_space.set()
        self._wake.set()

    def __repr__(self) -> str:
        state = "running" if self._running else ("terminated" if self._terminated else "new")
        return f"SimEngine({self._node_id}, {state})"
