"""The simulated message switching engine (the paper's Fig. 4, in coroutines).

Each overlay node runs:

- one **receiver task** per upstream connection, pulling messages off the
  link, applying the incoming bandwidth emulation, and blocking when its
  bounded receiver buffer is full (back pressure);
- one **sender task** per downstream connection, draining its bounded
  sender buffer through the outgoing bandwidth emulation onto the link;
- one **engine task** that processes control messages from the node's
  publicized port and switches data messages from receiver buffers to
  sender buffers in weighted round-robin order, consulting the
  application-specific :class:`~repro.core.algorithm.Algorithm` — which in
  turn calls back through the single ``send`` entry point.

The algorithm runs only inside the engine task (plus source tasks, which
never interleave mid-``process``), preserving the paper's guarantee that
algorithms need no thread-safe data structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Protocol

from repro.core.algorithm import Algorithm, Disposition
from repro.core.bandwidth import BandwidthSpec, NodeThrottle
from repro.core.ids import CONTROL_APP, AppId, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType, is_engine_type
from repro.core.stats import LinkStats, LinkStatsSnapshot
from repro.core.switch import PendingForward, ReceiverPort, SwitchScheduler
from repro.errors import BufferClosedError, LinkDownError
from repro.sim.kernel import Kernel, Task
from repro.sim.link import SimLink
from repro.sim.sync import SimEvent, SimQueue
from repro.telemetry import Telemetry
from repro.telemetry.tracing import EventType


class Fabric(Protocol):
    """What an engine needs from the surrounding network."""

    def open_link(self, src: NodeId, dst: NodeId) -> SimLink | None:
        """Create a directed connection; ``None`` if ``dst`` is not alive."""

    def to_observer(self, msg: Message) -> None:
        """Deliver a message to the (centralized) observer."""

    def node_terminated(self, node: NodeId) -> None:
        """Notification that ``node`` finished its graceful shutdown."""


@dataclass
class EngineConfig:
    """Tunables of one engine instance.

    ``buffer_capacity`` is the paper's per-buffer size in messages (both
    receiver and sender buffers) — the lever between delay-sensitive
    (small) and bandwidth-aggressive (large) behaviour (Section 2.4).
    """

    buffer_capacity: int = 64
    report_interval: float = 1.0
    #: seconds of upstream silence before the link is declared failed;
    #: ``None`` disables inactivity detection (sim links usually fail loudly).
    inactivity_timeout: float | None = None
    #: minimal virtual time between two source-produced messages.  "Back to
    #: back as fast as possible" needs a floor in a discrete-event world:
    #: without one, a source whose sends are never flow-controlled (e.g.
    #: all its destinations just died) would produce unboundedly many
    #: messages without advancing virtual time.
    source_interval: float = 0.001
    #: period between repeated bootstrap requests to the observer, so nodes
    #: that booted early still learn about later arrivals; ``None`` sends a
    #: single bootstrap request at start-up only.
    bootstrap_refresh: float | None = 5.0
    bandwidth: BandwidthSpec = dataclass_field(default_factory=BandwidthSpec)
    #: opt-in telemetry (metrics + lifecycle tracing); ``None`` keeps the
    #: data path entirely uninstrumented (the default).
    telemetry: Telemetry | None = None


@dataclass
class _SenderLink:
    """Engine-side state of one outgoing connection (thread-per-sender)."""

    dest: NodeId
    link: SimLink
    queue: SimQueue[Message]
    stats: LinkStats
    task: Task | None = None
    #: virtual time at which the current in-flight delivery started, for
    #: inactivity detection of silently-stalled links; None when idle.
    in_flight_since: float | None = None
    #: cached ``str(dest)`` for telemetry labels
    label: str = dataclass_field(init=False, default="")

    def __post_init__(self) -> None:
        self.label = str(self.dest)


class SimEngine:
    """One virtualized overlay node: engine + algorithm + connections."""

    def __init__(
        self,
        kernel: Kernel,
        node_id: NodeId,
        algorithm: Algorithm,
        fabric: Fabric,
        config: EngineConfig | None = None,
    ) -> None:
        self.kernel = kernel
        self._node_id = node_id
        self.algorithm = algorithm
        self.config = config or EngineConfig()
        self._fabric = fabric
        self.throttle = NodeThrottle(self.config.bandwidth)

        self._scheduler = SwitchScheduler()
        self._senders: dict[NodeId, _SenderLink] = {}
        self._upstream_links: dict[NodeId, SimLink] = {}
        self._recv_stats: dict[NodeId, LinkStats] = {}
        self._last_recv_at: dict[NodeId, float] = {}

        self._control: SimQueue[Message] = SimQueue(kernel)  # the publicized port
        self._wake = SimEvent(kernel)
        self._send_space = SimEvent(kernel)

        self._running = False
        self._terminated = False
        self._lost_messages = 0
        self._lost_bytes = 0
        self._tasks: list[Task] = []
        self._sources: dict[AppId, Task] = {}
        self._local_apps: set[AppId] = set()
        self._app_upstreams: dict[AppId, set[NodeId]] = {}
        self._app_downstreams: dict[AppId, set[NodeId]] = {}

        # switching context: which receiver port (or source) produced the
        # message the algorithm is currently processing
        self._current_port: ReceiverPort | None = None
        self._source_pending: list[PendingForward] | None = None

        # opt-in telemetry; when off, every hot-path hook is one `is None`
        tel = self.config.telemetry
        self._ins = tel.instruments_for(node_id) if tel is not None else None
        #: cached str(NodeId) renderings for telemetry labels at sites
        #: that have no port/sender structure in hand (e.g. defers)
        self._peer_strs: dict[NodeId, str] = {}
        #: data-message send() calls observed while the algorithm runs,
        #: used to recognize local delivery (processed without re-sending)
        self._data_sends = 0

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Bind the algorithm and spawn the engine's tasks."""
        if self._running or self._terminated:
            raise RuntimeError(f"engine {self._node_id} already started")
        self._running = True
        self.algorithm.bind(self)
        self._tasks.append(self.kernel.spawn(self._engine_loop(), name=f"{self._node_id}/engine"))
        self._tasks.append(self.kernel.spawn(self._report_loop(), name=f"{self._node_id}/report"))
        if self.config.inactivity_timeout is not None:
            self._tasks.append(
                self.kernel.spawn(self._watchdog_loop(), name=f"{self._node_id}/watchdog")
            )

    @property
    def running(self) -> bool:
        return self._running

    def terminate(self) -> None:
        """Gracefully shut the node down (the observer's *terminate node*).

        All incident links are broken so neighbours detect the failure
        through their normal error paths; local tasks are cancelled and
        data structures cleared — the paper's graceful termination.
        """
        if not self._running:
            return
        self._running = False
        self._terminated = True
        for task in self._sources.values():
            task.cancel()
        self._sources.clear()
        self._local_apps.clear()
        for sender in list(self._senders.values()):
            sender.link.break_()
            sender.queue.close()
            if sender.task is not None:
                sender.task.cancel()
        self._senders.clear()
        for link in list(self._upstream_links.values()):
            link.break_()
        self._upstream_links.clear()
        for port in list(self._scheduler.ports):
            self._scheduler.remove_port(port.peer)
        self._control.close()
        self._wake.set()
        self._send_space.set()
        for task in self._tasks:
            task.cancel()
        self._tasks.clear()
        self.algorithm.on_stop()
        self._fabric.node_terminated(self._node_id)

    # ------------------------------------------------------------- EngineServices

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    def now(self) -> float:
        return self.kernel.now

    def send(self, msg: Message, dest: NodeId) -> None:
        """The single engine entry point available to algorithms.

        ``send`` never raises and never reports failure synchronously:
        abnormal outcomes surface later as engine-produced messages
        (Section 2.3).  Data messages respect sender-buffer bounds and
        participate in back pressure; other (small protocol) messages are
        never blocked, so control traffic cannot deadlock behind data.
        """
        if not self._running:
            return
        if dest == self._node_id:
            self._control.put_force(msg)
            self._wake.set()
            return
        sender = self._ensure_sender(dest)
        if sender is None:
            self._notify_broken_link(dest, direction="down")
            return
        if msg.type == MsgType.DATA:
            if self._ins is not None:
                self._data_sends += 1
            self._track_downstream(msg.app, dest)
            if sender.queue.put_nowait(msg):
                return
            self._defer_data(msg, dest)
        else:
            sender.queue.put_force(msg)

    def send_to_observer(self, msg: Message) -> None:
        if self._running:
            self._fabric.to_observer(msg)

    def upstreams(self) -> list[NodeId]:
        return [port.peer for port in self._scheduler.ports]

    def downstreams(self) -> list[NodeId]:
        return list(self._senders)

    def link_stats(self, peer: NodeId) -> LinkStatsSnapshot | None:
        sender = self._senders.get(peer)
        if sender is not None:
            return sender.stats.snapshot(self.kernel.now)
        stats = self._recv_stats.get(peer)
        if stats is not None:
            return stats.snapshot(self.kernel.now)
        return None

    def start_source(self, app: AppId, payload_size: int) -> None:
        """Deploy an application data source producing back-to-back traffic."""
        if app in self._sources or not self._running:
            return
        self._local_apps.add(app)
        task = self.kernel.spawn(
            self._source_loop(app, payload_size), name=f"{self._node_id}/source-{app}"
        )
        self._sources[app] = task

    def stop_source(self, app: AppId) -> None:
        """Terminate a deployed source and tell downstreams it is gone."""
        task = self._sources.pop(app, None)
        self._local_apps.discard(app)
        if task is not None:
            task.cancel()
        self._broadcast_broken_source(app)

    def set_timer(self, delay: float, token: int = 0) -> None:
        """Deliver a ``TIMER`` message to the algorithm after ``delay``."""
        msg = Message.with_fields(MsgType.TIMER, self._node_id, CONTROL_APP, token=token)
        self.kernel.call_later(delay, self._enqueue_notification, msg)

    def measure(self, peer: NodeId) -> None:
        """Probe RTT to ``peer``; the algorithm receives MEASURE_REPLY.

        The probe is a tiny HEARTBEAT request/echo over the persistent
        connection — used only on demand, never as a liveness heartbeat.
        """
        probe = Message.with_fields(
            MsgType.HEARTBEAT, self._node_id, CONTROL_APP,
            probe="req", t0=self.kernel.now, origin=str(self._node_id),
        )
        self.send(probe, peer)

    def set_port_weight(self, peer: NodeId, weight: int) -> None:
        """Dynamically retune a receiver port's round-robin weight.

        The switch serves ``weight`` messages from this upstream per
        rotation, so competing upstreams share the engine's switching
        (and, under a bandwidth cap, the node's uplink) proportionally.
        """
        self._scheduler.set_weight(peer, weight)
        self._wake.set()

    # ----------------------------------------------------------------- connections

    def connect(self, dest: NodeId) -> bool:
        """Ensure a persistent outgoing connection to ``dest`` exists."""
        return self._ensure_sender(dest) is not None

    def disconnect(self, dest: NodeId) -> None:
        """Tear down the outgoing connection to ``dest`` (if any)."""
        sender = self._senders.pop(dest, None)
        if sender is None:
            return
        sender.link.break_()
        lost = sender.queue.drain()
        sender.queue.close()
        for msg in lost:
            sender.stats.loss.record(msg.size)
            self._record_loss(msg)
        if sender.task is not None:
            sender.task.cancel()
        self.throttle.drop_link(dest)
        for app in list(self._app_downstreams):
            self._app_downstreams[app].discard(dest)

    def accept_upstream(self, link: SimLink) -> None:
        """Register an incoming connection (called by the fabric)."""
        if not self._running or link.src in self._upstream_links:
            return
        self._upstream_links[link.src] = link
        buffer: SimQueue[Message] = SimQueue(self.kernel, capacity=self.config.buffer_capacity)
        port = ReceiverPort(peer=link.src, buffer=buffer)  # type: ignore[arg-type]
        self._scheduler.add_port(port)
        self._recv_stats[link.src] = LinkStats()
        self._last_recv_at[link.src] = self.kernel.now
        self._tasks.append(
            self.kernel.spawn(
                self._receiver_loop(link, port), name=f"{self._node_id}/recv-{link.src}"
            )
        )
        self._enqueue_notification(
            Message.with_fields(MsgType.NEW_UPSTREAM, self._node_id, CONTROL_APP, peer=str(link.src))
        )

    def deliver_control(self, msg: Message) -> None:
        """Inject a message into the node's publicized port (observer path)."""
        if not self._running:
            return
        self._control.put_force(msg)
        self._wake.set()

    # --------------------------------------------------------------------- engine

    async def _engine_loop(self) -> None:
        # Table 1: start the TCP server, bootstrap from observer, then loop.
        self._send_boot()
        if self.config.bootstrap_refresh is not None:
            self._tasks.append(
                self.kernel.spawn(self._bootstrap_loop(), name=f"{self._node_id}/boot")
            )
        self.algorithm.on_start()
        while self._running:
            progressed = self._drain_control()
            progressed = self._switch_round() or progressed
            if not progressed:
                # No await happened since the last state change we saw, so
                # clear-then-wait cannot lose a wake-up (cooperative tasks).
                self._wake.clear()
                await self._wake.wait()

    def _send_boot(self) -> None:
        self.send_to_observer(
            Message.with_fields(MsgType.BOOT, self._node_id, CONTROL_APP, node=str(self._node_id))
        )

    async def _bootstrap_loop(self) -> None:
        refresh = self.config.bootstrap_refresh
        assert refresh is not None
        while self._running:
            await self.kernel.sleep(refresh)
            if self._running:
                self._send_boot()

    def _drain_control(self) -> bool:
        progressed = False
        while self._running and not self._control.is_empty:
            try:
                msg = self._control.get_nowait()
            except IndexError:  # pragma: no cover - guarded by is_empty
                break
            progressed = True
            if is_engine_type(msg.type):
                self._engine_process(msg)
            else:
                self.algorithm.process(msg)
        return progressed

    def _engine_process(self, msg: Message) -> None:
        """Handle engine-owned control types (``Engine::process`` in Table 1)."""
        if msg.type == MsgType.TERMINATE:
            self.terminate()
        elif msg.type == MsgType.SET_BANDWIDTH:
            self._apply_bandwidth(msg)
        elif msg.type == MsgType.CONNECT:
            self.connect(NodeId.parse(msg.fields()["dest"]))
        elif msg.type == MsgType.DISCONNECT:
            self.disconnect(NodeId.parse(msg.fields()["dest"]))
        elif msg.type == MsgType.REQUEST:
            self.send_to_observer(self._status_report())
            self.algorithm.process(msg)  # let the algorithm add its own report
        elif msg.type == MsgType.HEARTBEAT:
            self._handle_probe(msg)

    def _handle_probe(self, msg: Message) -> None:
        fields = msg.fields()
        origin = NodeId.parse(fields["origin"])
        if fields.get("probe") == "req":
            echo = Message.with_fields(
                MsgType.HEARTBEAT, self._node_id, CONTROL_APP,
                probe="resp", t0=fields["t0"], origin=fields["origin"],
            )
            self.send(echo, origin)
        elif fields.get("probe") == "resp":
            peer = msg.sender
            rtt = self.kernel.now - float(fields["t0"])
            self._enqueue_notification(Message.with_fields(
                MsgType.MEASURE_REPLY, self._node_id, CONTROL_APP,
                peer=str(peer), rtt=rtt, send_rate=self.send_rate(peer),
            ))

    def _apply_bandwidth(self, msg: Message) -> None:
        fields = msg.fields()
        category = fields["category"]
        rate = fields["rate"]
        if category == "total":
            self.throttle.set_total(rate)
        elif category == "up":
            self.throttle.set_up(rate)
        elif category == "down":
            self.throttle.set_down(rate)
        elif category == "link":
            self.throttle.set_link(NodeId.parse(fields["peer"]), rate)
        else:
            raise ValueError(f"unknown bandwidth category: {category!r}")

    def _status_report(self) -> Message:
        now = self.kernel.now
        fields = dict(
            node=str(self._node_id),
            upstreams=[str(p) for p in self.upstreams()],
            downstreams=[str(d) for d in self.downstreams()],
            recv_buffers={str(p.peer): len(p.buffer) for p in self._scheduler.ports},
            send_buffers={str(d): len(s.queue) for d, s in self._senders.items()},
            recv_rates={str(p): st.throughput.rate(now) for p, st in self._recv_stats.items()},
            send_rates={str(d): s.stats.throughput.rate(now) for d, s in self._senders.items()},
            lost_messages=self._lost_messages,
            lost_bytes=self._lost_bytes,
            apps=sorted(self._local_apps | set(self._app_upstreams)),
        )
        tel = self.config.telemetry
        if tel is not None:
            self._refresh_buffer_gauges()
            fields["metrics"] = tel.snapshot(node=str(self._node_id))
        return Message.with_fields(MsgType.STATUS, self._node_id, CONTROL_APP, **fields)

    def _refresh_buffer_gauges(self) -> None:
        assert self._ins is not None
        self._ins.set_buffer_gauges(
            {str(p.peer): len(p.buffer) for p in self._scheduler.ports},
            {str(d): len(s.queue) for d, s in self._senders.items()},
        )

    # --------------------------------------------------------------------- switch

    def _switch_round(self) -> bool:
        """One weighted (deficit) round-robin pass over all receiver ports.

        Credits are consumed as messages depart a port, so under output
        congestion — where every message traverses the pending path —
        competing upstreams still share the output in weight proportion.
        When every port with work has exhausted its credit, a new credit
        epoch starts and the pass reruns.
        """
        progressed = False
        ins = self._ins
        moved = 0
        for port in self._scheduler.rotation():
            if not port.has_work():
                continue
            if port.credit <= 0:
                if ins is not None:
                    ins.credit_stalls[port.label] += 1
                    epoch = self._scheduler.epochs
                    if ins.tracer.enabled and port.stall_epoch != epoch:
                        port.stall_epoch = epoch
                        ins.trace_port(self.kernel.now, EventType.CREDIT_EXHAUSTED, port.label)
                continue
            if port.pending:
                before = len(port.pending)
                self._retry_pending(port)
                completed = before - len(port.pending)
                if completed:
                    port.credit -= completed
                    progressed = True
                if port.blocked or port.credit <= 0:
                    continue
            while port.credit > 0 and not port.blocked and not port.buffer.is_empty:
                msg = port.buffer.get_nowait()  # type: ignore[attr-defined]
                port.switched += 1
                moved += 1
                if ins is not None:
                    self._record_pick(port, msg)
                self._track_upstream(msg.app, port.peer)
                self._current_port = port
                sends_before = self._data_sends
                try:
                    disposition = self.algorithm.process(msg)
                finally:
                    self._current_port = None
                if disposition is Disposition.HOLD:
                    port.held += 1
                elif ins is not None and self._data_sends == sends_before:
                    ins.n_delivers += 1
                    if ins.tracer.enabled:
                        ins.trace_msg(self.kernel.now, EventType.DELIVER, msg)
                progressed = True
                if not port.blocked:
                    port.credit -= 1
        if ins is not None:
            ins.n_switch_rounds += 1
            if moved:
                ins.observe_batch(float(moved))
        # Epoch boundary: once every port that still has work has spent its
        # credit, start a new epoch.  (Ports with credit left keep their
        # claim on upcoming sender-buffer slots, which is exactly what makes
        # the weight ratio hold under output congestion.)  The backlog must
        # be explicitly non-empty: the scheduler's O(1) has_work() can read
        # momentarily-stale counters, and a vacuous all() over zero backlog
        # ports would fire a spurious epoch with progressed=True.
        scheduler = self._scheduler
        has_backlog = False
        if scheduler.has_work():  # O(1) pre-filter; may be stale-positive
            all_spent = True
            for port in scheduler.ports_view():
                if port.has_work():
                    has_backlog = True
                    if port.credit > 0:
                        all_spent = False
                        break
            has_backlog = has_backlog and all_spent
        if has_backlog:
            scheduler.replenish_credits()
            if ins is not None:
                ins.n_credit_epochs += 1
            progressed = True  # rerun the switch with fresh credits
        return progressed

    def _peer_str(self, node: NodeId) -> str:
        """Cached ``str(node)`` for telemetry labels (NodeId.__str__ formats)."""
        label = self._peer_strs.get(node)
        if label is None:
            label = self._peer_strs[node] = str(node)
        return label

    def _record_pick(self, port: ReceiverPort, msg: Message) -> None:
        """Telemetry for one switched message (queue wait + pick event)."""
        ins = self._ins
        now = self.kernel.now
        ins.switched[port.label] += 1
        times = port.wait_times
        if times:
            ins.observe_wait(now - times.popleft())
        if ins.tracer.enabled:
            ins.trace_msg(now, EventType.SWITCH_PICK, msg, port.label)

    def _retry_pending(self, port: ReceiverPort) -> bool:
        progressed = False
        ins = self._ins
        for forward in port.pending:
            progressed = self._try_forward(forward) or progressed
            if ins is not None:
                ins.n_retries += 1
                if forward.done:
                    ins.n_retry_completions += 1
                if ins.tracer.enabled:
                    ins.trace_retry(self.kernel.now, forward.msg, forward.done)
        port.prune_pending()
        return progressed

    def _try_forward(self, forward: PendingForward) -> bool:
        placed_any = False
        still_remaining: list[NodeId] = []
        for dest in forward.remaining:
            sender = self._senders.get(dest)
            if sender is None or sender.queue.closed:
                placed_any = True  # destination vanished; drop the obligation
                continue
            if sender.queue.put_nowait(forward.msg):
                placed_any = True
            else:
                still_remaining.append(dest)
        forward.remaining = still_remaining
        return placed_any

    def _defer_data(self, msg: Message, dest: NodeId) -> None:
        """A data send hit a full sender buffer: remember the remaining sender."""
        ins = self._ins
        if ins is not None:
            label = self._peer_str(dest)
            ins.defers[label] += 1
            if ins.tracer.enabled:
                ins.trace_msg(self.kernel.now, EventType.DEFER, msg, label)
        if self._current_port is not None:
            self._current_port.deferred += 1
            pending = self._current_port.pending
            if pending and pending[-1].msg is msg:
                pending[-1].remaining.append(dest)
            else:
                self._current_port.add_pending(PendingForward(msg, [dest]))
        elif self._source_pending is not None:
            if self._source_pending and self._source_pending[-1].msg is msg:
                self._source_pending[-1].remaining.append(dest)
            else:
                self._source_pending.append(PendingForward(msg, [dest]))
        else:
            # No switching context (e.g. algorithm reacting to a control
            # message): queue unconditionally rather than drop.
            sender = self._senders.get(dest)
            if sender is not None:
                sender.queue.put_force(msg)

    # --------------------------------------------------------------------- source

    async def _source_loop(self, app: AppId, payload_size: int) -> None:
        """Produce back-to-back data messages, flow-controlled by send buffers."""
        seq = 0
        while self._running and app in self._local_apps:
            payload = self.algorithm.produce_payload(app, seq, payload_size)
            msg = Message(MsgType.DATA, self._node_id, app, payload, seq=seq)
            seq += 1
            if self._ins is not None:
                self._ins.n_source += 1
                if self._ins.tracer.enabled:
                    self._ins.trace_msg(self.kernel.now, EventType.SOURCE_EMIT, msg)
            self._source_pending = []
            try:
                self.algorithm.process(msg)
                while any(f.remaining for f in self._source_pending) and self._running:
                    self._send_space.clear()
                    await self._send_space.wait()
                    for forward in self._source_pending:
                        self._try_forward(forward)
                    self._source_pending = [
                        f for f in self._source_pending if f.remaining
                    ]
            finally:
                self._source_pending = None
            # Pace the producer: bounds event volume when sends are never
            # flow-controlled (see EngineConfig.source_interval).
            await self.kernel.sleep(self.config.source_interval)

    def _broadcast_broken_source(self, app: AppId) -> None:
        downstreams = self._app_downstreams.pop(app, set())
        if self._ins is not None and downstreams:
            self._ins.n_domino += 1
        notice = Message.with_fields(
            MsgType.BROKEN_SOURCE, self._node_id, app, app=app, origin=str(self._node_id)
        )
        for dest in downstreams:
            sender = self._senders.get(dest)
            if sender is not None and not sender.queue.closed:
                sender.queue.put_force(notice.clone())

    # ------------------------------------------------------------------- receivers

    async def _receiver_loop(self, link: SimLink, port: ReceiverPort) -> None:
        peer = link.src
        stats = self._recv_stats[peer]
        while self._running:
            try:
                msg, sent_at = await link.inbox.get()
            except BufferClosedError:
                if self._running:
                    self._upstream_failed(peer)
                return
            arrival = sent_at + link.latency
            if arrival > self.kernel.now:
                await self.kernel.sleep(arrival - self.kernel.now)
            delay = self.throttle.reserve_recv(msg.size, self.kernel.now)
            if delay > 0:
                if self._ins is not None:
                    self._ins.on_throttle_stall("down", delay)
                await self.kernel.sleep(delay)
            stats.throughput.record(msg.size, self.kernel.now)
            self._last_recv_at[peer] = self.kernel.now
            if not self._running:
                return
            if msg.type == MsgType.DATA:
                try:
                    await port.buffer.put(msg)  # type: ignore[attr-defined]
                except BufferClosedError:
                    return
                ins = self._ins
                if ins is not None:
                    now = self.kernel.now
                    label = port.label
                    ins.enqueued[label] += 1
                    port.wait_times.append(now)
                    if ins.tracer.enabled:
                        ins.trace_msg(now, EventType.ENQUEUE, msg, label)
            else:
                if msg.type == MsgType.BROKEN_SOURCE:
                    self._propagate_broken_source(msg, peer)
                self._control.put_force(msg)
            self._wake.set()

    def _propagate_broken_source(self, msg: Message, peer: NodeId) -> None:
        """Domino effect: the path through ``peer`` lost its source.

        Only when the *last* upstream feeding the application is gone
        (and we are not the source ourselves) does the failure cascade
        to our downstreams — multi-path topologies keep flowing.
        """
        app = AppId(msg.fields().get("app", msg.app))
        upstreams = self._app_upstreams.get(app)
        if upstreams is not None:
            upstreams.discard(peer)
            if upstreams:
                return
            del self._app_upstreams[app]
        if app not in self._local_apps:
            self._broadcast_broken_source(app)

    def _upstream_failed(self, peer: NodeId) -> None:
        """An incoming connection failed (broken pipe / closed socket)."""
        link = self._upstream_links.pop(peer, None)
        if link is not None:
            link.break_()
        port = self._scheduler.remove_port(peer)
        if port is not None:
            lost = port.buffer.drain() if hasattr(port.buffer, "drain") else []  # type: ignore[attr-defined]
            stats = self._recv_stats.get(peer)
            if stats is not None:
                for msg in lost:
                    stats.loss.record(msg.size)
                    self._record_loss(msg)
        # Drop the stats entry with the port: a dead upstream must not
        # linger in status-report recv_rates (stale-NodeId leak).
        self._recv_stats.pop(peer, None)
        self._last_recv_at.pop(peer, None)
        self._notify_broken_link(peer, direction="up")
        # Domino effect: any application fed exclusively by this upstream
        # has lost its source from our point of view.
        for app, ups in list(self._app_upstreams.items()):
            ups.discard(peer)
            if not ups and app not in self._local_apps:
                del self._app_upstreams[app]
                self._broadcast_broken_source(app)
        self._wake.set()

    async def _watchdog_loop(self) -> None:
        """Detect upstream failures via long consecutive traffic inactivity."""
        timeout = self.config.inactivity_timeout
        assert timeout is not None
        while self._running:
            await self.kernel.sleep(timeout / 2)
            if not self._running:
                return
            now = self.kernel.now
            for peer, last in list(self._last_recv_at.items()):
                if now - last > timeout:
                    link = self._upstream_links.get(peer)
                    if link is not None:
                        link.break_()  # unblocks the receiver task, which cleans up
                    else:
                        self._upstream_failed(peer)
            # Sender side: a delivery stuck longer than the timeout means the
            # downstream is silently gone (stalled link) — tear it down.
            for sender in list(self._senders.values()):
                started = sender.in_flight_since
                if started is not None and now - started > timeout:
                    sender.link.break_()
                    if sender.task is not None:
                        sender.task.cancel()
                    self._sender_failed(sender, undelivered=[])

    # --------------------------------------------------------------------- senders

    def _ensure_sender(self, dest: NodeId) -> _SenderLink | None:
        sender = self._senders.get(dest)
        if sender is not None:
            return sender
        link = self._fabric.open_link(self._node_id, dest)
        if link is None:
            return None
        queue: SimQueue[Message] = SimQueue(self.kernel, capacity=self.config.buffer_capacity)
        sender = _SenderLink(dest=dest, link=link, queue=queue, stats=LinkStats())
        self._senders[dest] = sender
        sender.task = self.kernel.spawn(
            self._sender_loop(sender), name=f"{self._node_id}/send-{dest}"
        )
        self._tasks.append(sender.task)
        return sender

    async def _sender_loop(self, sender: _SenderLink) -> None:
        while self._running:
            try:
                msg = await sender.queue.get()
            except BufferClosedError:
                return
            sender.in_flight_since = self.kernel.now
            delay = self.throttle.reserve_send(sender.dest, msg.size, self.kernel.now)
            if delay > 0:
                if self._ins is not None:
                    self._ins.on_throttle_stall("up", delay)
                await self.kernel.sleep(delay)
            if self._ins is not None and sender.link.inbox.is_full:
                self._ins.backpressure[sender.label] += 1
            try:
                await sender.link.deliver(msg)
            except LinkDownError:
                if self._running:
                    self._sender_failed(sender, undelivered=[msg])
                return
            sender.in_flight_since = None
            sender.stats.throughput.record(msg.size, self.kernel.now)
            ins = self._ins
            if ins is not None and msg.type == MsgType.DATA:
                label = sender.label
                ins.forwarded[label] += 1
                if ins.tracer.enabled:
                    ins.trace_msg(self.kernel.now, EventType.FORWARD, msg, label)
            self._send_space.set()
            self._wake.set()

    def _sender_failed(self, sender: _SenderLink, undelivered: list[Message]) -> None:
        """An outgoing connection failed mid-send."""
        current = self._senders.get(sender.dest)
        if current is not sender:
            return  # already replaced or removed
        del self._senders[sender.dest]
        lost = undelivered + sender.queue.drain()
        sender.queue.close()
        for msg in lost:
            sender.stats.loss.record(msg.size)
            self._record_loss(msg)
        self.throttle.drop_link(sender.dest)
        for port in self._scheduler.ports:
            port.discard_dest(sender.dest)
        if self._source_pending is not None:
            for forward in self._source_pending:
                forward.remaining = [d for d in forward.remaining if d != sender.dest]
        for app in list(self._app_downstreams):
            self._app_downstreams[app].discard(sender.dest)
        self._notify_broken_link(sender.dest, direction="down")
        self._send_space.set()
        self._wake.set()

    # --------------------------------------------------------------------- reports

    async def _report_loop(self) -> None:
        """Periodically report per-link throughput to the algorithm."""
        while self._running:
            await self.kernel.sleep(self.config.report_interval)
            if not self._running:
                return
            if self._ins is not None:
                self._refresh_buffer_gauges()
            now = self.kernel.now
            for peer, stats in self._recv_stats.items():
                if self._scheduler.get_port(peer) is None:
                    continue
                self._enqueue_notification(
                    Message.with_fields(
                        MsgType.UP_THROUGHPUT,
                        self._node_id,
                        CONTROL_APP,
                        peer=str(peer),
                        rate=stats.throughput.rate(now),
                    )
                )
            for dest, sender in self._senders.items():
                self._enqueue_notification(
                    Message.with_fields(
                        MsgType.DOWN_THROUGHPUT,
                        self._node_id,
                        CONTROL_APP,
                        peer=str(dest),
                        rate=sender.stats.throughput.rate(now),
                    )
                )

    # --------------------------------------------------------------------- helpers

    def _enqueue_notification(self, msg: Message) -> None:
        if not self._running:
            return
        self._control.put_force(msg)
        self._wake.set()

    def _notify_broken_link(self, peer: NodeId, direction: str) -> None:
        if self._ins is not None:
            self._ins.on_broken_link(direction)
        self._enqueue_notification(
            Message.with_fields(
                MsgType.BROKEN_LINK,
                self._node_id,
                CONTROL_APP,
                peer=str(peer),
                direction=direction,
            )
        )

    def _record_loss(self, msg: Message) -> None:
        """Cumulative node-level loss accounting (survives link teardown)."""
        self._lost_messages += 1
        self._lost_bytes += msg.size
        if self._ins is not None:
            self._ins.n_drops += 1
            self._ins.n_dropped_bytes += msg.size
            if self._ins.tracer.enabled:
                self._ins.trace_msg(self.kernel.now, EventType.DROP, msg)

    def _track_downstream(self, app: AppId, dest: NodeId) -> None:
        self._app_downstreams.setdefault(app, set()).add(dest)

    def _track_upstream(self, app: AppId, peer: NodeId) -> None:
        self._app_upstreams.setdefault(app, set()).add(peer)

    # --------------------------------------------------------------- introspection

    def send_rate(self, dest: NodeId) -> float:
        """Current outgoing throughput to ``dest`` in bytes/second."""
        sender = self._senders.get(dest)
        return 0.0 if sender is None else sender.stats.throughput.rate(self.kernel.now)

    def recv_rate(self, peer: NodeId) -> float:
        """Current incoming throughput from ``peer`` in bytes/second."""
        stats = self._recv_stats.get(peer)
        return 0.0 if stats is None else stats.throughput.rate(self.kernel.now)

    def buffer_levels(self) -> dict[str, int]:
        """Receiver/sender buffer occupancy (for the observer's display)."""
        levels = {f"recv:{port.peer}": len(port.buffer) for port in self._scheduler.ports}
        levels.update({f"send:{dest}": len(s.queue) for dest, s in self._senders.items()})
        return levels

    def __repr__(self) -> str:
        state = "running" if self._running else ("terminated" if self._terminated else "new")
        return f"SimEngine({self._node_id}, {state})"
