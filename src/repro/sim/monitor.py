"""Periodic measurement sampling for experiments.

Experiments that study *convergence* (how fast throughput reacts to a
bandwidth change, a failure, a join) need time series, not end-state
snapshots.  :class:`RateRecorder` samples selected link rates on a fixed
virtual-time period and exposes the series plus convergence helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ids import NodeId
from repro.sim.network import SimNetwork


@dataclass
class RateSeries:
    """One link's sampled throughput over virtual time."""

    src: NodeId
    dst: NodeId
    times: list[float] = field(default_factory=list)
    rates: list[float] = field(default_factory=list)

    def latest(self) -> float:
        return self.rates[-1] if self.rates else 0.0

    def time_to_reach(self, target: float, tolerance: float = 0.15,
                      hold: int = 3) -> float | None:
        """First sample time after which the rate stays within
        ``tolerance`` of ``target`` for ``hold`` consecutive samples."""
        run = 0
        for index, rate in enumerate(self.rates):
            if target == 0:
                close = rate < 1e-9
            else:
                close = abs(rate - target) <= tolerance * target
            run = run + 1 if close else 0
            if run >= hold:
                # Index arithmetic, not times.index(t): sampled times may
                # repeat (e.g. several samples at one virtual instant) and
                # index() would then land on the first occurrence.
                return self.times[index - hold + 1]
        return None


class RateRecorder:
    """Samples link send-rates every ``period`` virtual seconds."""

    def __init__(self, net: SimNetwork, period: float = 1.0) -> None:
        self.net = net
        self.period = period
        self._series: dict[tuple[NodeId, NodeId], RateSeries] = {}
        self._running = False

    def watch(self, src: NodeId | str, dst: NodeId | str) -> RateSeries:
        src_id = self.net[src] if isinstance(src, str) else src
        dst_id = self.net[dst] if isinstance(dst, str) else dst
        series = self._series.get((src_id, dst_id))
        if series is None:
            series = RateSeries(src_id, dst_id)
            self._series[(src_id, dst_id)] = series
        return series

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.net.kernel.call_later(self.period, self._sample)

    def stop(self) -> None:
        self._running = False

    def _sample(self) -> None:
        if not self._running:
            return
        now = self.net.kernel.now
        for (src, dst), series in self._series.items():
            engine = self.net.engines.get(src)
            rate = engine.send_rate(dst) if engine is not None and engine.running else 0.0
            series.times.append(now)
            series.rates.append(rate)
        self.net.kernel.call_later(self.period, self._sample)

    def series(self) -> list[RateSeries]:
        return list(self._series.values())
