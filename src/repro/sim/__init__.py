"""Deterministic discrete-event simulation substrate."""

from repro.sim.engine import EngineConfig, SimEngine
from repro.sim.kernel import Cancelled, Future, Kernel, Task
from repro.sim.link import SimLink
from repro.sim.network import NetworkConfig, SimNetwork
from repro.sim.sync import SimEvent, SimQueue

__all__ = [
    "Cancelled",
    "EngineConfig",
    "Future",
    "Kernel",
    "NetworkConfig",
    "SimEngine",
    "SimEvent",
    "SimLink",
    "SimNetwork",
    "SimQueue",
    "Task",
]
