"""Controlled failure injection for robustness experiments.

The paper's observer injects faults "in a controlled fashion, while any
possible exceptions are handled by the engine, transparent to the
algorithm" (Section 3.1).  This module is the experiment-side toolkit:
immediate or scheduled node kills, link cuts (loud) and link stalls
(silent — only traffic-inactivity detection catches them), plus a
declarative schedule runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal

from repro.core.ids import NodeId
from repro.errors import UnknownNodeError
from repro.sim.network import SimNetwork

FailureKind = Literal["kill_node", "cut_link", "stall_link", "kill_source"]


def kill_node(net: SimNetwork, node: NodeId | str) -> None:
    """Terminate a node abruptly; neighbours detect via socket errors."""
    net.engine(node).terminate()


def cut_link(net: SimNetwork, src: NodeId | str, dst: NodeId | str) -> None:
    """Break the directed overlay link src -> dst with a loud failure."""
    src_engine = net.engine(src)
    dst_id = net[dst] if isinstance(dst, str) else dst
    sender = src_engine._senders.get(dst_id)
    if sender is None:
        raise UnknownNodeError(f"no live link {src} -> {dst}")
    sender.link.break_()


def stall_link(net: SimNetwork, src: NodeId | str, dst: NodeId | str) -> None:
    """Silently stall src -> dst: no errors, no traffic.

    Only engines with ``inactivity_timeout`` configured will ever notice.
    """
    src_engine = net.engine(src)
    dst_id = net[dst] if isinstance(dst, str) else dst
    sender = src_engine._senders.get(dst_id)
    if sender is None:
        raise UnknownNodeError(f"no live link {src} -> {dst}")
    sender.link.stall()


def kill_source(net: SimNetwork, node: NodeId | str, app: int) -> None:
    """Fail an application data source prematurely."""
    net.engine(node).stop_source(app)


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled fault."""

    at: float
    kind: FailureKind
    node: NodeId | str
    peer: NodeId | str | None = None
    app: int | None = None


@dataclass
class FailureSchedule:
    """A declarative list of faults applied at virtual times.

    Call :meth:`arm` once after ``net.start()``; each event fires from a
    kernel callback, so the schedule composes with any experiment loop.
    """

    events: list[FailureEvent] = field(default_factory=list)

    def kill_node(self, at: float, node: NodeId | str) -> "FailureSchedule":
        self.events.append(FailureEvent(at, "kill_node", node))
        return self

    def cut_link(self, at: float, src: NodeId | str, dst: NodeId | str) -> "FailureSchedule":
        self.events.append(FailureEvent(at, "cut_link", src, peer=dst))
        return self

    def stall_link(self, at: float, src: NodeId | str, dst: NodeId | str) -> "FailureSchedule":
        self.events.append(FailureEvent(at, "stall_link", src, peer=dst))
        return self

    def kill_source(self, at: float, node: NodeId | str, app: int) -> "FailureSchedule":
        self.events.append(FailureEvent(at, "kill_source", node, app=app))
        return self

    def arm(self, net: SimNetwork) -> None:
        for event in sorted(self.events, key=lambda e: e.at):
            net.kernel.call_at(event.at, self._fire, net, event)

    @staticmethod
    def _fire(net: SimNetwork, event: FailureEvent) -> None:
        try:
            if event.kind == "kill_node":
                kill_node(net, event.node)
            elif event.kind == "cut_link":
                assert event.peer is not None
                cut_link(net, event.node, event.peer)
            elif event.kind == "stall_link":
                assert event.peer is not None
                stall_link(net, event.node, event.peer)
            elif event.kind == "kill_source":
                assert event.app is not None
                kill_source(net, event.node, event.app)
        except UnknownNodeError:
            # The target already failed or was torn down first; an injected
            # fault racing a real one is not an experiment error.
            pass
