"""Controlled failure injection for robustness experiments.

The paper's observer injects faults "in a controlled fashion, while any
possible exceptions are handled by the engine, transparent to the
algorithm" (Section 3.1).  This module is the experiment-side toolkit:
immediate or scheduled node kills, link cuts (loud) and link stalls
(silent — only traffic-inactivity detection catches them), plus a
declarative schedule runner.

Churn support: schedules may also *grow* the deployment.  A
``join_node`` event asks a caller-supplied ``node_factory(net, name)``
to create and start a new node at fire time, and ``leave_node`` performs
a graceful departure — the algorithm gets a chance to announce it (via
an ``announce_leave()`` method, e.g. SWIM's gossip blast) before the
engine terminates.  Together with the Poisson generators in
:mod:`repro.membership.churn` this turns the one-shot fault schedule
into a sustained-churn driver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Literal

from repro.core.ids import NodeId
from repro.errors import ConfigurationError, UnknownNodeError
from repro.sim.network import SimNetwork

FailureKind = Literal[
    "kill_node", "cut_link", "stall_link", "kill_source", "join_node", "leave_node"
]

#: virtual seconds between a leave announcement and the engine teardown,
#: so the departing node's final gossip blast drains its send queues
LEAVE_GRACE = 0.05

#: a join event's factory: create + start one node named ``name``
NodeFactory = Callable[[SimNetwork, str], None]


def kill_node(net: SimNetwork, node: NodeId | str) -> None:
    """Terminate a node abruptly; neighbours detect via socket errors."""
    net.engine(node).terminate()


def leave_node(net: SimNetwork, node: NodeId | str) -> None:
    """Gracefully depart: announce (if the algorithm can), then terminate."""
    engine = net.engine(node)
    announce = getattr(engine.algorithm, "announce_leave", None)
    if callable(announce):
        announce()
        net.kernel.call_later(LEAVE_GRACE, engine.terminate)
    else:
        engine.terminate()


def cut_link(net: SimNetwork, src: NodeId | str, dst: NodeId | str) -> None:
    """Break the directed overlay link src -> dst with a loud failure."""
    src_engine = net.engine(src)
    dst_id = net[dst] if isinstance(dst, str) else dst
    sender = src_engine._senders.get(dst_id)
    if sender is None:
        raise UnknownNodeError(f"no live link {src} -> {dst}")
    sender.link.break_()


def stall_link(net: SimNetwork, src: NodeId | str, dst: NodeId | str) -> None:
    """Silently stall src -> dst: no errors, no traffic.

    Only engines with ``inactivity_timeout`` configured will ever notice.
    """
    src_engine = net.engine(src)
    dst_id = net[dst] if isinstance(dst, str) else dst
    sender = src_engine._senders.get(dst_id)
    if sender is None:
        raise UnknownNodeError(f"no live link {src} -> {dst}")
    sender.link.stall()


def kill_source(net: SimNetwork, node: NodeId | str, app: int) -> None:
    """Fail an application data source prematurely."""
    net.engine(node).stop_source(app)


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled fault."""

    at: float
    kind: FailureKind
    node: NodeId | str
    peer: NodeId | str | None = None
    app: int | None = None


_CHURN_TRACE = {
    "kill_node": "churn-crash",
    "join_node": "churn-join",
    "leave_node": "churn-leave",
}


@dataclass
class FailureSchedule:
    """A declarative list of faults applied at virtual times.

    Call :meth:`arm` once after ``net.start()``; each event fires from a
    kernel callback, so the schedule composes with any experiment loop.
    """

    events: list[FailureEvent] = field(default_factory=list)

    def kill_node(self, at: float, node: NodeId | str) -> "FailureSchedule":
        self.events.append(FailureEvent(at, "kill_node", node))
        return self

    def join_node(self, at: float, name: str) -> "FailureSchedule":
        """Create + start a new node at ``at`` via the armed node factory."""
        self.events.append(FailureEvent(at, "join_node", name))
        return self

    def leave_node(self, at: float, node: NodeId | str) -> "FailureSchedule":
        self.events.append(FailureEvent(at, "leave_node", node))
        return self

    def cut_link(self, at: float, src: NodeId | str, dst: NodeId | str) -> "FailureSchedule":
        self.events.append(FailureEvent(at, "cut_link", src, peer=dst))
        return self

    def stall_link(self, at: float, src: NodeId | str, dst: NodeId | str) -> "FailureSchedule":
        self.events.append(FailureEvent(at, "stall_link", src, peer=dst))
        return self

    def kill_source(self, at: float, node: NodeId | str, app: int) -> "FailureSchedule":
        self.events.append(FailureEvent(at, "kill_source", node, app=app))
        return self

    def arm(self, net: SimNetwork, node_factory: NodeFactory | None = None) -> None:
        if node_factory is None and any(e.kind == "join_node" for e in self.events):
            raise ConfigurationError(
                "schedule contains join_node events: arm(net, node_factory=...)"
            )
        for event in sorted(self.events, key=lambda e: e.at):
            net.kernel.call_at(event.at, self._fire, net, event, node_factory)

    @staticmethod
    def _fire(
        net: SimNetwork, event: FailureEvent, node_factory: NodeFactory | None = None
    ) -> None:
        try:
            if event.kind == "kill_node":
                kill_node(net, event.node)
            elif event.kind == "join_node":
                assert node_factory is not None
                node_factory(net, str(event.node))
            elif event.kind == "leave_node":
                leave_node(net, event.node)
            elif event.kind == "cut_link":
                assert event.peer is not None
                cut_link(net, event.node, event.peer)
            elif event.kind == "stall_link":
                assert event.peer is not None
                stall_link(net, event.node, event.peer)
            elif event.kind == "kill_source":
                assert event.app is not None
                kill_source(net, event.node, event.app)
        except UnknownNodeError:
            # The target already failed or was torn down first; an injected
            # fault racing a real one is not an experiment error.
            return
        trace_event = _CHURN_TRACE.get(event.kind)
        tel = net.config.telemetry
        if trace_event is not None and tel is not None and tel.tracer.enabled:
            tel.tracer.append_raw(
                net.kernel.now, str(event.node), trace_event, "", 0, {}
            )
