"""A simulated overlay connection between two nodes.

A :class:`SimLink` models one direction of a persistent TCP connection:

- a small bounded in-flight queue (the socket buffer) whose blocking
  ``put`` gives TCP-style flow control — a stalled receiver eventually
  blocks the sender;
- a fixed propagation latency applied by the receiving side;
- in-order delivery;
- failure modes: :meth:`break_` (an abrupt close both sides observe as
  an error, like a broken pipe) and :meth:`stall` (a *silent* failure
  that only traffic-inactivity detection can catch).

Bandwidth is **not** a property of the link object: emulated rates are
enforced by the sending node's :class:`~repro.core.bandwidth.NodeThrottle`
(per-link caps included), mirroring how the paper wraps the socket send
path with timers.
"""

from __future__ import annotations

from repro.core.ids import NodeId
from repro.core.message import Message
from repro.errors import LinkDownError
from repro.sim.kernel import Kernel
from repro.sim.sync import SimQueue

#: Default in-flight capacity (messages) of the simulated socket buffer.
DEFAULT_SOCKET_BUFFER = 4


class SimLink:
    """One direction of a persistent connection from ``src`` to ``dst``."""

    def __init__(
        self,
        kernel: Kernel,
        src: NodeId,
        dst: NodeId,
        latency: float = 0.0,
        socket_buffer: int = DEFAULT_SOCKET_BUFFER,
    ) -> None:
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        self._kernel = kernel
        self.src = src
        self.dst = dst
        self.latency = latency
        self.inbox: SimQueue[tuple[Message, float]] = SimQueue(kernel, capacity=socket_buffer)
        self._stalled = False
        self._broken = False
        #: cumulative messages/bytes that crossed this link
        self.delivered_messages = 0
        self.delivered_bytes = 0
        #: deliveries that found the in-flight window full and had to block
        #: (TCP-style flow control pushing back on the sender task)
        self.backpressure_events = 0

    # --- state ------------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """True until the link has been broken."""
        return not self._broken

    @property
    def stalled(self) -> bool:
        return self._stalled

    # --- data path -----------------------------------------------------------------

    async def deliver(self, msg: Message) -> None:
        """Hand ``msg`` to the wire; blocks while the in-flight window is full.

        Raises :class:`~repro.errors.LinkDownError` if the link broke, or
        blocks forever if the link silently stalled — exactly the two
        failure signatures the engine's detection machinery must handle.
        """
        if self._broken:
            raise LinkDownError(f"link {self.src}->{self.dst} is down")
        if self._stalled:
            # A stalled link accepts nothing and reports nothing: the
            # sender parks on a future that never resolves, like a TCP
            # connection to a silently-partitioned host.
            await self._kernel.future()
            raise AssertionError("unreachable: stalled link future resolved")
        if self.inbox.is_full:
            self.backpressure_events += 1
        try:
            await self.inbox.put((msg, self._kernel.now))
        except Exception as exc:
            raise LinkDownError(f"link {self.src}->{self.dst} closed mid-send") from exc
        self.delivered_messages += 1
        self.delivered_bytes += msg.size

    # --- failure injection -------------------------------------------------------------

    def break_(self) -> None:
        """Abruptly fail the link: both endpoints observe errors."""
        if self._broken:
            return
        self._broken = True
        self.inbox.close()

    def stall(self) -> None:
        """Silently stop the link: no errors, just no traffic (for
        inactivity-detection experiments)."""
        self._stalled = True

    def __repr__(self) -> str:
        state = "broken" if self._broken else ("stalled" if self._stalled else "up")
        return f"SimLink({self.src} -> {self.dst}, {state}, latency={self.latency})"
