"""Synchronization primitives for kernel tasks: queues and events.

These are the simulated counterparts of the paper's thread-safe circular
queues and wait/signal relationships between receiver, engine and sender
threads.  ``SimQueue.put`` on a full queue *blocks the calling task*,
which is exactly the mechanism that turns bounded buffers into back
pressure (Fig. 6b of the paper).

The implementation wakes **all** waiters whenever the queue state
changes and lets each waiter re-check; a waiter whose task has been
cancelled is then harmless (its future resolves into the void), which
keeps node termination (the observer's ``terminate`` command) safe.
"""

from __future__ import annotations

from collections import deque
from typing import Generic, TypeVar

from repro.errors import BufferClosedError
from repro.sim.kernel import Future, Kernel

T = TypeVar("T")


class SimQueue(Generic[T]):
    """A bounded FIFO queue whose put/get block the calling task."""

    def __init__(self, kernel: Kernel, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self._kernel = kernel
        self._capacity = capacity
        self._items: deque[T] = deque()
        self._getters: deque[Future] = deque()
        self._putters: deque[Future] = deque()
        self._closed = False
        #: optional listener called with the size delta after every
        #: mutation (see :class:`repro.core.buffer.CircularBuffer`)
        self.on_size_change = None

    # --- introspection --------------------------------------------------------------

    @property
    def capacity(self) -> int | None:
        return self._capacity

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        return self._capacity is not None and len(self._items) >= self._capacity

    @property
    def is_empty(self) -> bool:
        return not self._items

    @property
    def closed(self) -> bool:
        return self._closed

    # --- operations -------------------------------------------------------------------

    async def put(self, item: T) -> None:
        """Append ``item``, blocking while the queue is full."""
        while True:
            if self._closed:
                raise BufferClosedError("put on closed queue")
            if not self.is_full:
                self._items.append(item)
                if self.on_size_change is not None:
                    self.on_size_change(1)
                self._wake(self._getters)
                return
            waiter = self._kernel.future()
            self._putters.append(waiter)
            await waiter

    def put_nowait(self, item: T) -> bool:
        """Append without blocking; returns False if the queue is full."""
        if self._closed:
            raise BufferClosedError("put on closed queue")
        if self.is_full:
            return False
        self._items.append(item)
        if self.on_size_change is not None:
            self.on_size_change(1)
        self._wake(self._getters)
        return True

    def put_force(self, item: T) -> None:
        """Append even when full (used for small control messages).

        Control traffic must never deadlock behind data back pressure
        (the paper keeps protocol messages flowing via the publicized
        port); forcing them past the capacity bound models that, at the
        cost of letting the queue exceed its nominal capacity by the —
        small — control volume.
        """
        if self._closed:
            raise BufferClosedError("put on closed queue")
        self._items.append(item)
        if self.on_size_change is not None:
            self.on_size_change(1)
        self._wake(self._getters)

    async def get(self) -> T:
        """Remove and return the oldest item, blocking while empty.

        Items still queued when the queue closes are drained normally;
        only a ``get`` on an empty closed queue raises
        :class:`~repro.errors.BufferClosedError`.
        """
        while True:
            if self._items:
                item = self._items.popleft()
                if self.on_size_change is not None:
                    self.on_size_change(-1)
                self._wake(self._putters)
                return item
            if self._closed:
                raise BufferClosedError("get on closed, drained queue")
            waiter = self._kernel.future()
            self._getters.append(waiter)
            await waiter

    def get_nowait(self) -> T:
        """Remove and return the oldest item; raises ``IndexError`` when empty."""
        if not self._items:
            raise IndexError("queue empty")
        item = self._items.popleft()
        if self.on_size_change is not None:
            self.on_size_change(-1)
        self._wake(self._putters)
        return item

    def drain(self) -> list[T]:
        """Remove and return all queued items."""
        items = list(self._items)
        self._items.clear()
        if items and self.on_size_change is not None:
            self.on_size_change(-len(items))
        self._wake(self._putters)
        return items

    def close(self) -> None:
        """Refuse further puts and fail blocked waiters.

        Blocked putters and (once drained) blocked getters observe
        :class:`~repro.errors.BufferClosedError` — the simulated analogue
        of a socket operation failing on a torn-down connection.
        """
        if self._closed:
            return
        self._closed = True
        self._wake(self._getters)
        self._wake(self._putters)

    # --- internals ----------------------------------------------------------------------

    def _wake(self, waiters: deque[Future]) -> None:
        while waiters:
            waiters.popleft().set_result(None)


class SimEvent:
    """A level-triggered event flag tasks can wait on."""

    def __init__(self, kernel: Kernel) -> None:
        self._kernel = kernel
        self._flag = False
        self._waiters: deque[Future] = deque()

    @property
    def is_set(self) -> bool:
        return self._flag

    def set(self) -> None:
        self._flag = True
        while self._waiters:
            self._waiters.popleft().set_result(None)

    def clear(self) -> None:
        self._flag = False

    async def wait(self) -> None:
        while not self._flag:
            waiter = self._kernel.future()
            self._waiters.append(waiter)
            await waiter
