"""The simulated overlay network: nodes, links, observer, and the clock.

``SimNetwork`` is the top-level object experiments interact with.  It

- allocates virtualized node identities (many per simulated host, like
  iOverlay's virtualized deployment),
- hosts one :class:`~repro.sim.engine.SimEngine` per node,
- implements the engine-facing :class:`~repro.sim.engine.Fabric` (link
  creation with a configurable latency model) and the observer-facing
  :class:`~repro.observer.observer.ObserverTransport`,
- runs the observer's periodic status polling,
- offers measurement helpers the experiments read link throughput from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.algorithm import Algorithm
from repro.core.bandwidth import BandwidthSpec
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.errors import ConfigurationError, UnknownNodeError
from repro.observer.observer import Observer
from repro.sim.engine import EngineConfig, SimEngine
from repro.sim.kernel import Kernel
from repro.sim.link import SimLink
from repro.telemetry import Telemetry

#: latency applied to node <-> observer control traffic
DEFAULT_OBSERVER_LATENCY = 0.002

LatencyModel = Callable[[NodeId, NodeId], float]


@dataclass
class NetworkConfig:
    """Network-wide defaults (individual nodes may override engine knobs)."""

    #: default one-way latency between overlay nodes, seconds; must be
    #: positive — zero-latency loops would let tasks exchange an unbounded
    #: number of messages without advancing virtual time.
    default_latency: float = 0.005
    socket_buffer: int = 4
    observer_latency: float = DEFAULT_OBSERVER_LATENCY
    observer_poll_interval: float = 1.0
    bootstrap_fanout: int = 8
    engine: EngineConfig = field(default_factory=EngineConfig)
    seed: int = 0
    #: one shared telemetry unit for the whole simulated cluster; ``None``
    #: (the default) leaves every engine uninstrumented.  Series are
    #: distinguished by their ``node`` label, and the tracer observes
    #: message lifecycles across all nodes under one virtual clock.
    telemetry: Telemetry | None = None


class SimNetwork:
    """A virtual overlay deployment under one discrete-event kernel."""

    def __init__(self, config: NetworkConfig | None = None) -> None:
        self.config = config or NetworkConfig()
        if self.config.default_latency <= 0:
            raise ConfigurationError("default_latency must be positive")
        self.kernel = Kernel(seed=self.config.seed)
        self.observer = Observer(
            transport=self,
            bootstrap_fanout=self.config.bootstrap_fanout,
            seed=self.config.seed,
        )
        self.engines: dict[NodeId, SimEngine] = {}
        self.names: dict[str, NodeId] = {}
        self._labels: dict[NodeId, str] = {}
        self._latency_model: LatencyModel | None = None
        self._next_host = 1
        self._started = False

    # ------------------------------------------------------------------ topology

    def set_latency_model(self, model: LatencyModel) -> None:
        """Install a per-pair one-way latency function (e.g. geographic)."""
        self._latency_model = model

    def latency(self, src: NodeId, dst: NodeId) -> float:
        if self._latency_model is not None:
            value = self._latency_model(src, dst)
            if value <= 0:
                raise ConfigurationError(f"latency model returned {value} for {src}->{dst}")
            return value
        return self.config.default_latency

    def add_node(
        self,
        algorithm: Algorithm,
        name: str | None = None,
        bandwidth: BandwidthSpec | None = None,
        config: EngineConfig | None = None,
        node_id: NodeId | None = None,
    ) -> NodeId:
        """Create a virtualized overlay node running ``algorithm``.

        Node identities default to sequential addresses in ``10.0.0.0/16``
        with the iOverlay convention of IP:port uniqueness, so several
        nodes may share one simulated host address with distinct ports.
        """
        if node_id is None:
            host = self._next_host
            self._next_host += 1
            node_id = NodeId(f"10.0.{host // 250}.{host % 250 + 1}", 7000)
        if node_id in self.engines:
            raise ConfigurationError(f"duplicate node id {node_id}")
        template = self.config.engine
        engine_config = config or EngineConfig(
            buffer_capacity=template.buffer_capacity,
            report_interval=template.report_interval,
            inactivity_timeout=template.inactivity_timeout,
            source_interval=template.source_interval,
            bandwidth=BandwidthSpec(),
            telemetry=template.telemetry,
        )
        if bandwidth is not None:
            engine_config.bandwidth = bandwidth
        if engine_config.telemetry is None and self.config.telemetry is not None:
            engine_config.telemetry = self.config.telemetry
        engine = SimEngine(self.kernel, node_id, algorithm, fabric=self, config=engine_config)
        self.engines[node_id] = engine
        if name is not None:
            if name in self.names:
                raise ConfigurationError(f"duplicate node name {name!r}")
            self.names[name] = node_id
            self._labels[node_id] = name
        if self._started:
            engine.start()
        return node_id

    def __getitem__(self, name: str) -> NodeId:
        """Look a node up by its experiment label."""
        try:
            return self.names[name]
        except KeyError:
            raise UnknownNodeError(f"no node named {name!r}") from None

    def engine(self, node: NodeId | str) -> SimEngine:
        node_id = self[node] if isinstance(node, str) else node
        try:
            return self.engines[node_id]
        except KeyError:
            raise UnknownNodeError(f"no node {node_id}") from None

    def label(self, node: NodeId) -> str:
        return self._labels.get(node, str(node))

    def connect(self, src: NodeId | str, dst: NodeId | str) -> None:
        """Open a persistent overlay connection src -> dst (engine-level)."""
        self.engine(src).connect(self[dst] if isinstance(dst, str) else dst)

    # --------------------------------------------------------------------- Fabric

    def open_link(self, src: NodeId, dst: NodeId) -> SimLink | None:
        target = self.engines.get(dst)
        if target is None or not target.running:
            return None
        link = SimLink(
            self.kernel,
            src,
            dst,
            latency=self.latency(src, dst),
            socket_buffer=self.config.socket_buffer,
        )
        target.accept_upstream(link)
        return link

    def to_observer(self, msg: Message) -> None:
        self.kernel.call_later(self.config.observer_latency, self.observer.on_message, msg)

    def node_terminated(self, node: NodeId) -> None:
        self.observer.mark_down(node)

    # ---------------------------------------------------------- ObserverTransport

    def observer_send(self, node: NodeId, msg: Message) -> None:
        engine = self.engines.get(node)
        if engine is None or not engine.running:
            return
        self.kernel.call_later(self.config.observer_latency, engine.deliver_control, msg)

    def observer_now(self) -> float:
        return self.kernel.now

    # -------------------------------------------------------------------- running

    def start(self) -> None:
        """Start every engine and the observer's polling loop."""
        if self._started:
            return
        self._started = True
        for engine in self.engines.values():
            engine.start()
        self.kernel.spawn(self._poll_loop(), name="observer/poll")

    async def _poll_loop(self) -> None:
        while True:
            await self.kernel.sleep(self.config.observer_poll_interval)
            self.observer.poll_all()

    def run(self, duration: float, max_events: int | None = None) -> float:
        """Advance the simulation by ``duration`` virtual seconds."""
        if not self._started:
            self.start()
        return self.kernel.run(until=self.kernel.now + duration, max_events=max_events)

    @property
    def now(self) -> float:
        return self.kernel.now

    @property
    def telemetry(self) -> Telemetry | None:
        """The cluster-wide telemetry unit, when enabled."""
        return self.config.telemetry

    # --------------------------------------------------------------- measurements

    def link_rate(self, src: NodeId | str, dst: NodeId | str) -> float:
        """Measured outgoing throughput on the overlay link src -> dst (B/s)."""
        dst_id = self[dst] if isinstance(dst, str) else dst
        return self.engine(src).send_rate(dst_id)

    def link_alive(self, src: NodeId | str, dst: NodeId | str) -> bool:
        dst_id = self[dst] if isinstance(dst, str) else dst
        src_engine = self.engines.get(self[src] if isinstance(src, str) else src)
        return src_engine is not None and dst_id in src_engine.downstreams()

    def rates_snapshot(self) -> dict[tuple[str, str], float]:
        """All live link rates, keyed by (label(src), label(dst))."""
        snapshot: dict[tuple[str, str], float] = {}
        for node, engine in self.engines.items():
            if not engine.running:
                continue
            for dest in engine.downstreams():
                snapshot[(self.label(node), self.label(dest))] = engine.send_rate(dest)
        return snapshot
