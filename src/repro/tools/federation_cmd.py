"""``ioverlay cluster --root`` / ``--join`` — the federated control plane.

Root mode boots an observer and a
:class:`~repro.cluster.federation.RootController` in this process,
spawns ``--children`` local child controllers (each with its own worker
fleet), optionally waits for ``--expect`` external joiners, then runs
the same chain workload as the flat ``ioverlay cluster`` — except the
placement happens in two stages (root -> controller -> worker) and the
report shows the tree.  Join mode runs one child controller daemon
that dials a remote root's bootstrap endpoint and serves placements
until signalled; it is a thin veneer over ``python -m
repro.cluster.child`` so both spellings behave identically.
"""

from __future__ import annotations

import asyncio
import json as json_mod

from repro.cluster.federation import RootConfig, RootController
from repro.cluster.scenarios import chain_specs, wait_until
from repro.core.ids import NodeId
from repro.net.observer_server import ObserverServer
from repro.tools.signals import install_shutdown_handlers


async def _run_root(children: int, workers_per_child: int, expect: int,
                    nodes: int, duration: float, payload: int,
                    placement: str, child_placement: str,
                    report_interval: float, flush_interval: float | None,
                    telemetry: bool, shm_ring_bytes: int,
                    uvloop: bool) -> dict:
    observer = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=report_interval)
    await observer.start()
    root = RootController(observer, RootConfig(
        placement=placement,
        workers_per_child=workers_per_child,
        child_placement=child_placement,
        observer_flush_interval=flush_interval or 0.2,
        worker_telemetry=telemetry,
        shm_ring_bytes=shm_ring_bytes,
        uvloop=uvloop,
    ))
    await root.start()
    if expect > 0:
        print(f"root bootstrap at {root.addr} — waiting for {expect} "
              f"external controller(s); join with:\n"
              f"  ioverlay cluster --join {root.addr} --name <controller>")
    await asyncio.gather(*(root.spawn_child(f"c{i}") for i in range(children)))
    if expect > 0:
        await root.wait_joined(children + expect, timeout=120.0)

    specs = chain_specs(nodes)
    placed = await root.deploy(specs)
    await wait_until(
        lambda: all(p.node_id in observer.observer.alive for p in placed.values()),
        timeout=60.0,
    )

    stop = asyncio.Event()
    install_shutdown_handlers(stop)
    app, source, sink = 1, "n0", f"n{nodes - 1}"
    root.deploy_source(source, app=app, payload_size=payload)
    try:
        await asyncio.wait_for(stop.wait(), timeout=duration)
    except asyncio.TimeoutError:
        pass
    observer.observer.terminate_source(root.node_id(source), app)
    await asyncio.sleep(report_interval)  # let the pipeline drain

    sink_info = (await root.node_info(sink))["info"]
    shards: dict[str, dict[str, int]] = {}
    for name, p in placed.items():
        shard = shards.setdefault(p.controller, {})
        shard[p.worker] = shard.get(p.worker, 0) + 1
    stats = {
        "controllers": len(root.controllers),
        "workers_per_child": workers_per_child,
        "nodes": nodes,
        "placement": placement,
        "child_placement": child_placement,
        "duration_s": duration,
        "placement_map": {
            name: f"{p.controller}/{p.worker}"
            for name, p in sorted(placed.items())
        },
        "shard_sizes": {
            ctl: sum(counts.values()) for ctl, counts in sorted(shards.items())
        },
        "shard_workers": {ctl: dict(sorted(counts.items()))
                          for ctl, counts in sorted(shards.items())},
        "delivered_messages": int(sink_info.get("received", 0)),
        "end_to_end_rate": sink_info.get("received", 0) * payload / duration,
        "controller_gauges": {
            name: {"nodes": state.node_count,
                   "workers_alive": state.workers_alive,
                   "rss_kb": state.rss_kb}
            for name, state in root.controllers.items()
        },
        "controller_deaths": root.controller_deaths,
        "shards_redeployed": root.shards_redeployed,
        "statuses_reported": len(observer.observer.statuses),
        "observer_frames_in": observer.frames_in,
        "aggregation_frames": observer.observer.agg_frames,
        "interrupted": stop.is_set(),
    }
    await root.stop()
    await observer.stop()
    return stats


def run_federation_root(
    children: int = 2,
    workers_per_child: int = 2,
    expect: int = 0,
    nodes: int = 20,
    duration: float = 3.0,
    payload: int = 1000,
    placement: str = "capacity",
    child_placement: str = "round-robin",
    report_interval: float = 0.5,
    flush_interval: float | None = None,
    telemetry: bool = False,
    shm_ring_bytes: int = 1 << 20,
    uvloop: bool = False,
    as_json: bool = False,
) -> int:
    if children < 1 and expect < 1:
        print("need at least 1 child controller (--children or --expect)")
        return 2
    if nodes < 2:
        print("need at least 2 nodes for a chain")
        return 2
    stats = asyncio.run(_run_root(
        children, workers_per_child, expect, nodes, duration, payload,
        placement, child_placement, report_interval, flush_interval,
        telemetry, shm_ring_bytes, uvloop,
    ))
    if as_json:
        print(json_mod.dumps(stats, indent=2))
        return 0
    print(f"federation: {stats['nodes']} nodes sharded over "
          f"{stats['controllers']} child controllers x "
          f"{stats['workers_per_child']} workers "
          f"({stats['placement']} -> {stats['child_placement']} placement)")
    for ctl, count in stats["shard_sizes"].items():
        workers = ", ".join(
            f"{w}={n}" for w, n in stats["shard_workers"][ctl].items())
        print(f"  shard {ctl:<8}: {count} nodes ({workers})")
    print(f"  chain delivery : {stats['delivered_messages']} messages, "
          f"{stats['end_to_end_rate'] / 1000:.1f} KB/s end-to-end")
    print(f"  control plane  : {stats['statuses_reported']}/{stats['nodes']} "
          f"nodes reported through their shard's aggregation proxy")
    print(f"  root observer  : {stats['observer_frames_in']} frames in, "
          f"{stats['aggregation_frames']} aggregated roll-ups")
    if stats["controller_deaths"]:
        print(f"  recovery       : {stats['controller_deaths']} controller "
              f"death(s), {stats['shards_redeployed']} shard redeploy(s)")
    if stats["interrupted"]:
        print("  (window ended early by signal; drained gracefully)")
    return 0


def run_federation_join(
    join: str,
    name: str,
    ip: str = "127.0.0.1",
    workers: int = 2,
    placement: str = "round-robin",
    capacity: float = 0.0,
    weight: float = 1.0,
    flush_interval: float | None = None,
    telemetry: bool = False,
    shm_ring_bytes: int = 1 << 20,
    uvloop: bool = False,
) -> int:
    """Run one child controller daemon until signalled (SIGTERM/SIGINT)."""
    from repro.cluster.child import main as child_main

    argv = [
        "--name", name,
        "--join", join,
        "--ip", ip,
        "--workers", str(workers),
        "--placement", placement,
        "--capacity", str(capacity),
        "--weight", str(weight),
        "--flush-interval", str(flush_interval if flush_interval is not None else 0.2),
        "--shm-ring-bytes", str(shm_ring_bytes),
    ]
    if telemetry:
        argv += ["--worker-telemetry"]
    if uvloop:
        argv += ["--uvloop"]
    return child_main(argv)
