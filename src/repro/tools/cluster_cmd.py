"""``ioverlay cluster`` — shard a chain across worker processes.

Boots an observer and a :class:`~repro.cluster.controller.ClusterController`
fleet in this process, deploys a forwarding chain across the workers
(placement policy selectable), runs a paced source through the
observer's ordinary ``sDeploy`` verb for a wall-clock window, and
prints what the fleet achieved: placement map, end-to-end delivery at
the sink, per-worker gauges from the heartbeats, and observer
coverage.  SIGTERM / SIGINT end the window early through the same
graceful drain as normal completion.
"""

from __future__ import annotations

import asyncio
import json as json_mod

from repro.cluster.controller import ClusterConfig, ClusterController
from repro.cluster.scenarios import chain_specs, wait_until
from repro.core.ids import NodeId
from repro.net.observer_server import ObserverServer
from repro.tools.signals import install_shutdown_handlers


async def _run(workers: int, nodes: int, duration: float, payload: int,
               placement: str, report_interval: float,
               fanout: int, flush_interval: float | None,
               telemetry: bool, shm_ring_bytes: int, uvloop: bool) -> dict:
    observer = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=report_interval)
    await observer.start()
    controller = ClusterController(observer, ClusterConfig(
        workers=workers, placement=placement,
        observer_fanout=fanout,
        observer_flush_interval=flush_interval,
        worker_telemetry=telemetry,
        shm_ring_bytes=shm_ring_bytes,
        uvloop=uvloop,
    ))
    await controller.start()
    specs = chain_specs(nodes)
    placed = await controller.deploy(specs)
    await wait_until(
        lambda: all(p.node_id in observer.observer.alive for p in placed.values()),
        timeout=30.0,
    )

    stop = asyncio.Event()
    install_shutdown_handlers(stop)
    app, source, sink = 1, "n0", f"n{nodes - 1}"
    controller.deploy_source(source, app=app, payload_size=payload)
    try:
        await asyncio.wait_for(stop.wait(), timeout=duration)
    except asyncio.TimeoutError:
        pass
    observer.observer.terminate_source(controller.node_id(source), app)
    await asyncio.sleep(report_interval)  # let the pipeline drain

    sink_reply = await controller.node_info(sink)
    sink_info = sink_reply["info"]
    # The fleet's data plane is attributable: sum per-transport link
    # counts over every node so the report says what carried the bytes.
    transports: dict[str, int] = {}
    for name in placed:
        for kind, links in (await controller.node_info(name)).get(
                "transports", {}).items():
            transports[kind] = transports.get(kind, 0) + links
    stats = {
        "workers": workers,
        "nodes": nodes,
        "placement": placement,
        "duration_s": duration,
        "placement_map": {
            name: p.worker for name, p in sorted(placed.items())
        },
        "nodes_per_worker": {
            name: len(state.placed) for name, state in controller.workers.items()
        },
        "delivered_messages": int(sink_info.get("received", 0)),
        "end_to_end_rate": sink_info.get("received", 0) * payload / duration,
        "transport_links": transports,
        "worker_loops": {
            name: state.loop_impl for name, state in controller.workers.items()
        },
        "worker_gauges": {
            name: {"rss_kb": state.rss_kb, "loop_lag_ms": state.loop_lag_ms,
                   "nodes": state.node_count}
            for name, state in controller.workers.items()
        },
        "statuses_reported": len(observer.observer.statuses),
        "observer_frames_in": observer.frames_in,
        "observer_bytes_in": observer.bytes_in,
        "aggregation_frames": observer.observer.agg_frames,
        "interrupted": stop.is_set(),
    }
    await controller.stop()
    await observer.stop()
    return stats


def run_cluster(
    workers: int = 2,
    nodes: int = 20,
    duration: float = 3.0,
    payload: int = 1000,
    placement: str = "round-robin",
    report_interval: float = 0.5,
    fanout: int = 0,
    flush_interval: float | None = None,
    telemetry: bool = False,
    shm_ring_bytes: int = 1 << 20,
    uvloop: bool = False,
    as_json: bool = False,
) -> int:
    if workers < 1:
        print("need at least 1 worker")
        return 2
    if nodes < 2:
        print("need at least 2 nodes for a chain")
        return 2
    if fanout > 0 and flush_interval is None:
        flush_interval = 0.5  # a tree of pure relays would reduce nothing
    stats = asyncio.run(_run(workers, nodes, duration, payload,
                             placement, report_interval,
                             fanout, flush_interval, telemetry,
                             shm_ring_bytes, uvloop))
    if as_json:
        print(json_mod.dumps(stats, indent=2))
        return 0
    print(f"cluster: {stats['nodes']} nodes sharded over {stats['workers']} "
          f"worker processes ({stats['placement']} placement)")
    print(f"  per worker     : " + ", ".join(
        f"{name}={count}" for name, count in sorted(stats["nodes_per_worker"].items())))
    print(f"  chain delivery : {stats['delivered_messages']} messages, "
          f"{stats['end_to_end_rate'] / 1000:.1f} KB/s end-to-end")
    loops = sorted(set(stats["worker_loops"].values()))
    print(f"  data plane     : " + (", ".join(
        f"{links} {kind} link{'s' if links != 1 else ''}"
        for kind, links in sorted(stats["transport_links"].items()))
        or "no live links") + f"; event loop: {', '.join(loops)}")
    print(f"  control plane  : {stats['statuses_reported']}/{stats['nodes']} "
          f"nodes reported status through their worker's proxy")
    print(f"  root observer  : {stats['observer_frames_in']} frames / "
          f"{stats['observer_bytes_in']} bytes in"
          + (f", {stats['aggregation_frames']} aggregated roll-ups"
             if stats["aggregation_frames"] else ""))
    if stats["interrupted"]:
        print("  (window ended early by signal; drained gracefully)")
    return 0
