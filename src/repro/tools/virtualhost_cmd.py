"""``ioverlay virtualhost`` — pack N full nodes into this process.

Spins up a :class:`~repro.net.virtual.VirtualHost` carrying a
source → relays → sink chain (the fig5 workload), with a live observer
polling every node, runs it for a wall-clock window, and prints what
the packing achieved: end-to-end delivery, status-report coverage, and
the loopback-dial count proving co-hosted traffic stayed in-process.
"""

from __future__ import annotations

import asyncio
import json as json_mod
import time

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.ids import NodeId
from repro.net.engine import NetEngineConfig
from repro.net.observer_server import ObserverServer
from repro.net.virtual import VirtualHost
from repro.tools.signals import install_shutdown_handlers


async def _run(nodes: int, duration: float, payload: int,
               window: int, report_interval: float) -> dict:
    observer = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=report_interval)
    await observer.start()
    host = VirtualHost(observer_addr=observer.addr, window=window)
    algorithms = [CopyForwardAlgorithm() for _ in range(nodes - 1)] + [SinkAlgorithm()]
    config = NetEngineConfig(report_interval=report_interval)
    engines = [host.add_node(alg, config=config) for alg in algorithms]

    t0 = time.monotonic()
    await host.start()
    startup = time.monotonic() - t0
    for alg, nxt in zip(algorithms, engines[1:]):
        alg.set_downstreams([nxt.node_id])
    await host.connect_chain()

    sink = algorithms[-1]
    # SIGTERM/SIGINT end the window early but still run the engines'
    # graceful teardown below (clean EOFs at peers, observer notified).
    stop = asyncio.Event()
    install_shutdown_handlers(stop)
    engines[0].start_source(app=1, payload_size=payload)
    try:
        await asyncio.wait_for(stop.wait(), timeout=duration)
    except asyncio.TimeoutError:
        pass
    engines[0].stop_source(1)
    await asyncio.sleep(report_interval)  # let final reports land

    stats = {
        "nodes": nodes,
        "duration_s": duration,
        "payload_bytes": payload,
        "startup_ms_per_node": startup * 1000.0 / nodes,
        "delivered_messages": sink.received,
        "delivered_bytes": sink.received_bytes,
        "end_to_end_rate": sink.received_bytes / duration,
        "statuses_reported": len(observer.observer.statuses),
        "loopback_dials": host.resolver.dials,
    }
    await host.stop()
    await observer.stop()
    return stats


def run_virtualhost(
    nodes: int = 100,
    duration: float = 3.0,
    payload: int = 1000,
    window: int = 64,
    report_interval: float = 0.5,
    as_json: bool = False,
) -> int:
    if nodes < 2:
        print("need at least 2 nodes for a chain")
        return 2
    stats = asyncio.run(_run(nodes, duration, payload, window, report_interval))
    if as_json:
        print(json_mod.dumps(stats, indent=2))
        return 0
    print(f"virtual host: {stats['nodes']} nodes on one event loop "
          f"({stats['startup_ms_per_node']:.1f} ms/node startup)")
    print(f"  chain delivery : {stats['delivered_messages']} messages, "
          f"{stats['end_to_end_rate'] / 1000:.1f} KB/s end-to-end")
    print(f"  control plane  : {stats['statuses_reported']}/{stats['nodes']} "
          f"nodes reported status to the observer")
    print(f"  loopback dials : {stats['loopback_dials']} "
          f"(chain links: {stats['nodes'] - 1}; equal means zero sockets "
          f"between co-hosted nodes)")
    return 0
