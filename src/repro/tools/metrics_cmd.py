"""``ioverlay metrics`` — an instrumented fig6-style run with exports.

Runs the seven-node copy-forwarding deployment (Figs. 6/7) under the
discrete-event simulator with the telemetry layer enabled, exercises the
interesting engine paths (steady state, runtime bandwidth reduction with
its back-pressure retries, and a node termination with its drops), and
writes every exporter's output:

- ``metrics.prom``  — cluster-wide Prometheus text exposition, produced
  by the *observer's* aggregate of per-node snapshots (the same merge a
  live deployment performs over STATUS reports);
- ``metrics.json``  — the raw registry snapshot (interchange format);
- ``trace.json``    — Chrome trace-event JSON of every recorded
  lifecycle event (open in ``chrome://tracing`` or Perfetto).

It also prints the observer's metrics panel and reconstructs one data
message's path from source to sink out of the trace, demonstrating the
end-to-end lifecycle record.
"""

from __future__ import annotations

import os

from repro.experiments.common import KB
from repro.experiments.topologies import build_seven_node_copy
from repro.observer.dashboard import render_metrics
from repro.telemetry import Telemetry
from repro.telemetry.exporters import dump_chrome_trace, to_json, write_prometheus
from repro.telemetry.tracing import EventType


def route_to_sink(events) -> list[str]:
    """One source→sink route of a (possibly multicast) message.

    Copy-forwarding duplicates a message down several branches, so the
    time-sorted node list interleaves branches; instead walk the FORWARD
    edges from the emitting node to a node that recorded DELIVER and
    return the longest such route.
    """
    edges: dict[str, list[str]] = {}
    for event in events:
        if event.event == EventType.FORWARD and "peer" in event.detail:
            edges.setdefault(event.node, []).append(event.detail["peer"])
    source = next(
        (e.node for e in events if e.event == EventType.SOURCE_EMIT),
        events[0].node if events else None,
    )
    if source is None:
        return []
    sinks = {e.node for e in events if e.event == EventType.DELIVER}
    best: list[str] = [source]

    def walk(node: str, route: list[str]) -> None:
        nonlocal best
        if node in sinks and len(route) > len(best):
            best = list(route)
        for nxt in edges.get(node, []):
            if nxt not in route:  # a message never loops in these trees
                route.append(nxt)
                walk(nxt, route)
                route.pop()

    walk(source, [source])
    return best


def pick_showcase_trace(telemetry: Telemetry) -> str | None:
    """A trace id that traveled far: prefer delivered, then longest route."""
    best: str | None = None
    best_score = (-1, -1)
    for tid in telemetry.tracer.trace_ids():
        events = telemetry.tracer.events_for(tid)
        delivered = any(e.event == EventType.DELIVER for e in events)
        score = (1 if delivered else 0, len(route_to_sink(events)))
        if score > best_score:
            best, best_score = tid, score
    return best


def run_metrics(
    duration: float = 20.0,
    buffer_capacity: int = 5,
    out_dir: str = ".",
    tracing: bool = True,
    trace_capacity: int = 65536,
    payload_size: int = 5000,
    seed: int = 0,
    echo=print,
) -> dict[str, str]:
    """Run the instrumented deployment and write all exports.

    Returns the paths written, keyed by export kind.
    """
    telemetry = Telemetry(trace_capacity=trace_capacity, tracing=tracing)
    deployment = build_seven_node_copy(
        buffer_capacity=buffer_capacity, seed=seed, telemetry=telemetry
    )
    net = deployment.net
    nodes = deployment.nodes

    # Phase 1: steady state — switch rounds, enqueues, forwards.
    net.observer.deploy_source(nodes["A"], app=1, payload_size=payload_size)
    net.run(duration / 2)
    # Phase 2: choke D's uplink — back pressure, defers, retries.
    net.observer.set_node_bandwidth(nodes["D"], "up", 30 * KB)
    net.run(duration / 4)
    # Phase 3: terminate B — broken links, drops, domino teardown.
    net.observer.terminate_node(nodes["B"])
    net.run(duration / 4)
    # Let the observer pull one more round of snapshots before exporting.
    net.observer.poll_all()
    net.run(1.0)

    os.makedirs(out_dir, exist_ok=True)
    prom_path = os.path.join(out_dir, "metrics.prom")
    json_path = os.path.join(out_dir, "metrics.json")
    paths = {"prometheus": prom_path, "json": json_path}
    write_prometheus(net.observer.cluster_metrics(), prom_path)
    with open(json_path, "w", encoding="utf-8") as handle:
        handle.write(to_json(telemetry.snapshot()))
    if tracing:
        trace_path = os.path.join(out_dir, "trace.json")
        dump_chrome_trace(telemetry.tracer.events(), trace_path)
        paths["chrome"] = trace_path

    echo(f"simulated {net.now:.1f}s on the seven-node copy topology")
    echo("")
    echo("== cluster metrics (observer aggregate) ==")
    echo(render_metrics(net.observer))
    if tracing:
        echo("")
        echo(f"recorded {telemetry.tracer.recorded} lifecycle events "
             f"({telemetry.tracer.dropped} rotated out of the ring)")
        showcase = pick_showcase_trace(telemetry)
        if showcase is not None:
            label = {str(node): name for name, node in nodes.items()}
            route = route_to_sink(telemetry.tracer.events_for(showcase))
            hops = [label.get(n, n) for n in route]
            echo(f"message {showcase} path: {' -> '.join(hops)}")
    echo("")
    for kind, path in paths.items():
        echo(f"wrote {kind}: {path}")
    return paths
