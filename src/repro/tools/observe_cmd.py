"""``ioverlay observe`` — a standalone observer daemon.

Runs the live :class:`~repro.net.observer_server.ObserverServer` on a
chosen endpoint so externally-launched nodes, virtual hosts or cluster
workers can bootstrap against it.  The daemon parks until SIGTERM /
SIGINT (or an optional ``--duration``), then shuts down gracefully —
closing every node connection cleanly — and prints a final summary of
what it saw.
"""

from __future__ import annotations

import asyncio
import json as json_mod

from repro.core.ids import NodeId
from repro.net.observer_server import ObserverServer
from repro.tools.signals import install_shutdown_handlers


async def _run(ip: str, port: int, poll_interval: float,
               lease_timeout: float | None, duration: float | None) -> dict:
    server = ObserverServer(
        NodeId(ip, port), poll_interval=poll_interval, lease_timeout=lease_timeout
    )
    await server.start()
    print(f"observer listening on {server.addr} "
          f"(poll every {poll_interval}s"
          + (f", lease timeout {lease_timeout}s)" if lease_timeout else ")"),
          flush=True)
    stop = asyncio.Event()
    install_shutdown_handlers(stop)
    try:
        await asyncio.wait_for(stop.wait(), timeout=duration)
    except asyncio.TimeoutError:
        pass
    observer = server.observer
    summary = {
        "addr": str(server.addr),
        "alive_nodes": len(observer.alive),
        "statuses": len(observer.statuses),
        "traces": len(observer.traces),
        "boot_count": observer.boot_count,
        "lease_expiries": observer.lease_expiries,
        "graceful": True,
    }
    await server.stop()
    return summary


def run_observe(
    ip: str = "127.0.0.1",
    port: int = 0,
    poll_interval: float = 1.0,
    lease_timeout: float | None = None,
    duration: float | None = None,
    as_json: bool = False,
) -> int:
    summary = asyncio.run(_run(ip, port, poll_interval, lease_timeout, duration))
    if as_json:
        print(json_mod.dumps(summary, indent=2))
    else:
        print(f"observer on {summary['addr']} shut down cleanly: "
              f"{summary['alive_nodes']} nodes alive, "
              f"{summary['statuses']} statuses, {summary['traces']} traces, "
              f"{summary['boot_count']} boots")
    return 0
