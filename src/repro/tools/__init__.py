"""Operator tooling: the ioverlay CLI and declarative scenarios."""

from repro.tools.scenario import (
    ALGORITHMS,
    ScenarioReport,
    build_network,
    load_scenario,
    run_scenario,
)

__all__ = [
    "ALGORITHMS",
    "ScenarioReport",
    "build_network",
    "load_scenario",
    "run_scenario",
]
