"""Declarative simulation scenarios: build and run a network from JSON.

A scenario file describes nodes (with algorithms and emulated
bandwidth), static overlay edges, deployed sources, a timeline of
runtime actions (the observer's control panel), and what to report.
``run_scenario`` turns it into a :class:`~repro.sim.network.SimNetwork`
run and returns the measurements — the one-file workflow the CLI
(:mod:`repro.tools.cli`) exposes.

Example scenario::

    {
      "duration": 30,
      "nodes": [
        {"name": "S", "algorithm": "copy_forward", "bandwidth": {"total": 400000}},
        {"name": "A", "algorithm": "sink"}
      ],
      "edges": [["S", "A"]],
      "sources": [{"node": "S", "app": 1, "payload_size": 5000}],
      "actions": [
        {"at": 10, "do": "set_bandwidth", "node": "S", "category": "up", "rate": 50000},
        {"at": 20, "do": "terminate", "node": "A"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.algorithms.forwarding import ChainRelayAlgorithm, CopyForwardAlgorithm, SinkAlgorithm
from repro.algorithms.gossip import GossipAlgorithm
from repro.algorithms.trees import AllUnicastTree, NodeStressAwareTree, RandomizedTree
from repro.core.algorithm import Algorithm
from repro.core.bandwidth import BandwidthSpec
from repro.errors import ConfigurationError
from repro.sim.engine import EngineConfig
from repro.sim.network import NetworkConfig, SimNetwork

AlgorithmFactory = Callable[[dict[str, Any]], Algorithm]


def _tree_factory(cls) -> AlgorithmFactory:
    return lambda params: cls(
        last_mile=float(params.get("last_mile", 100_000.0)),
        seed=params.get("seed"),
    )


ALGORITHMS: dict[str, AlgorithmFactory] = {
    "copy_forward": lambda params: CopyForwardAlgorithm(seed=params.get("seed")),
    "sink": lambda params: SinkAlgorithm(seed=params.get("seed")),
    "chain_relay": lambda params: ChainRelayAlgorithm(seed=params.get("seed")),
    "gossip": lambda params: GossipAlgorithm(
        probability=float(params.get("probability", 0.5)), seed=params.get("seed")
    ),
    "tree_ns_aware": _tree_factory(NodeStressAwareTree),
    "tree_unicast": _tree_factory(AllUnicastTree),
    "tree_random": _tree_factory(RandomizedTree),
}


@dataclass
class ScenarioReport:
    """What a scenario run produced."""

    duration: float
    link_rates: dict[str, float]
    received: dict[str, int]
    alive: list[str]
    traces: list[str] = field(default_factory=list)

    def to_json(self) -> str:
        return json.dumps(
            {
                "duration": self.duration,
                "link_rates": self.link_rates,
                "received": self.received,
                "alive": self.alive,
                "traces": self.traces,
            },
            indent=2,
            sort_keys=True,
        )


def load_scenario(path: str | Path) -> dict[str, Any]:
    try:
        spec = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot load scenario {path}: {exc}") from exc
    if not isinstance(spec, dict) or "nodes" not in spec:
        raise ConfigurationError("a scenario needs at least a 'nodes' list")
    return spec


def build_network(spec: dict[str, Any]) -> tuple[SimNetwork, dict[str, Algorithm]]:
    """Instantiate nodes, algorithms and static edges from a spec."""
    net_config = NetworkConfig(
        seed=int(spec.get("seed", 0)),
        engine=EngineConfig(buffer_capacity=int(spec.get("buffer_capacity", 64))),
    )
    net = SimNetwork(net_config)
    algorithms: dict[str, Algorithm] = {}
    for node_spec in spec["nodes"]:
        name = node_spec["name"]
        kind = node_spec.get("algorithm", "copy_forward")
        factory = ALGORITHMS.get(kind)
        if factory is None:
            raise ConfigurationError(
                f"unknown algorithm {kind!r}; available: {sorted(ALGORITHMS)}"
            )
        algorithm = factory(node_spec.get("params", {}) | node_spec)
        bandwidth_spec = node_spec.get("bandwidth", {})
        bandwidth = BandwidthSpec(
            total=bandwidth_spec.get("total"),
            up=bandwidth_spec.get("up"),
            down=bandwidth_spec.get("down"),
        )
        net.add_node(algorithm, name=name, bandwidth=bandwidth)
        algorithms[name] = algorithm
    for src, dst in spec.get("edges", []):
        algorithm = algorithms[src]
        if hasattr(algorithm, "add_downstream"):
            algorithm.add_downstream(net[dst])  # type: ignore[attr-defined]
        else:
            net.connect(src, dst)
    return net, algorithms


def run_scenario(spec: dict[str, Any]) -> ScenarioReport:
    """Build, run the timeline, and collect the report."""
    net, algorithms = build_network(spec)
    net.start()
    for source in spec.get("sources", []):
        net.observer.deploy_source(
            net[source["node"]],
            app=int(source.get("app", 1)),
            payload_size=int(source.get("payload_size", 5000)),
        )
    for action in sorted(spec.get("actions", []), key=lambda a: float(a["at"])):
        net.kernel.call_at(float(action["at"]), _apply_action, net, action)
    duration = float(spec.get("duration", 30.0))
    net.run(duration)

    link_rates = {
        f"{src}->{dst}": rate for (src, dst), rate in net.rates_snapshot().items()
    }
    received = {
        name: getattr(algorithm, "received", 0)
        for name, algorithm in algorithms.items()
        if isinstance(getattr(algorithm, "received", None), int)
    }
    return ScenarioReport(
        duration=duration,
        link_rates=link_rates,
        received=received,
        alive=[net.label(node) for node in net.observer.alive],
        traces=[record.text for record in net.observer.traces],
    )


def _apply_action(net: SimNetwork, action: dict[str, Any]) -> None:
    kind = action["do"]
    node = net[action["node"]] if "node" in action else None
    if kind == "terminate":
        assert node is not None
        net.observer.terminate_node(node)
    elif kind == "set_bandwidth":
        assert node is not None
        net.observer.set_node_bandwidth(node, action["category"], action.get("rate"))
    elif kind == "set_link_bandwidth":
        assert node is not None
        net.observer.set_link_bandwidth(node, net[action["peer"]], action.get("rate"))
    elif kind == "terminate_source":
        assert node is not None
        net.observer.terminate_source(node, app=int(action.get("app", 1)))
    elif kind == "control":
        assert node is not None
        net.observer.send_control(
            node, int(action["type"]),
            param1=int(action.get("param1", 0)), param2=int(action.get("param2", 0)),
        )
    else:
        raise ConfigurationError(f"unknown action {kind!r}")
