"""``ioverlay trace``: query a live observer for one message's causal path.

Opens one identified connection to the root observer, sends a
``FLOW_QUERY`` for the given trace id and renders the ``FLOW_REPLY`` —
the stitched node path with per-hop dwell times.  Works across worker
boundaries because the id is a pure function of the immutable wire
header: every worker's tracer stamps the identical id, the aggregation
tree forwards the (head-sampled) events to the root, and the root's
flow tracer reassembles them.
"""

from __future__ import annotations

import asyncio
import json

from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.net.framing import open_identified, read_message, write_message

#: identity the query connection introduces itself with (port 2 is never
#: a real node; the observer only needs *an* identity to route the reply)
QUERY_ID = NodeId("0.0.0.0", 2)


async def fetch_flow_report(
    observer_addr: NodeId, trace_id: str, timeout: float = 10.0
) -> dict:
    """One FLOW_QUERY/FLOW_REPLY round trip against a live observer."""
    reader, writer = await open_identified(observer_addr, QUERY_ID)
    try:
        write_message(writer, Message.with_fields(
            MsgType.FLOW_QUERY, QUERY_ID, 0, trace_id=trace_id
        ))
        await writer.drain()
        while True:
            reply = await asyncio.wait_for(read_message(reader), timeout)
            if reply.type == MsgType.FLOW_REPLY:
                return reply.fields()
    finally:
        writer.close()


def render_flow_report(report: dict) -> str:
    """The stitched path as text: one line per hop with dwell latency."""
    trace_id = report.get("trace_id", "")
    hops = report.get("hops", [])
    if not hops:
        return f"no events recorded for trace {trace_id!r}"
    lines = [
        f"trace {trace_id}: {len(hops)} hop(s), "
        f"{len(report.get('events', []))} event(s), "
        f"end-to-end {report.get('end_to_end', 0.0) * 1000:.3f} ms"
    ]
    for i, hop in enumerate(hops):
        events = ",".join(hop.get("events", []))
        arrow = "    " if i == 0 else " -> "
        lines.append(
            f"{arrow}{hop['node']:<22} dwell {hop.get('dwell', 0.0) * 1000:9.3f} ms"
            f"  [{events}]"
        )
    return "\n".join(lines)


def run_trace(trace_id: str, observer: str, as_json: bool = False) -> int:
    """CLI entry: fetch and print one flow report."""
    addr = NodeId.parse(observer)
    try:
        report = asyncio.run(fetch_flow_report(addr, trace_id))
    except (ConnectionError, OSError, asyncio.TimeoutError) as exc:
        print(f"cannot query observer at {observer}: {exc}")
        return 1
    if as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_flow_report(report))
    return 0 if report.get("hops") else 1
