"""The ``ioverlay`` command line: run scenarios and paper experiments.

::

    ioverlay scenario path/to/scenario.json     # run a declarative scenario
    ioverlay experiment fig6                    # regenerate one paper figure
    ioverlay experiment --list                  # what can be regenerated
    ioverlay metrics --out telemetry/           # instrumented run + exports
    ioverlay virtualhost --nodes 150            # pack N nodes in one process
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.tools.scenario import load_scenario, run_scenario

EXPERIMENTS: dict[str, str] = {
    "fig5": "repro.experiments.fig5_chain",
    "fig6": "repro.experiments.fig6_correctness",
    "fig7": "repro.experiments.fig7_large_buffers",
    "fig8": "repro.experiments.fig8_network_coding",
    "fig9": "repro.experiments.fig9_table3_trees",
    "table3": "repro.experiments.fig9_table3_trees",
    "fig11": "repro.experiments.fig11_planetlab_trees",
    "fig12": "repro.experiments.fig12_13_topologies",
    "fig13": "repro.experiments.fig12_13_topologies",
    "fig14": "repro.experiments.fig14_15_federation_small",
    "fig15": "repro.experiments.fig14_15_federation_small",
    "fig16": "repro.experiments.fig16_aware_over_time",
    "fig17": "repro.experiments.fig17_overhead_vs_size",
    "fig18": "repro.experiments.fig18_pernode_overhead",
    "fig19": "repro.experiments.fig19_bandwidth_vs_size",
    "underlay": "repro.experiments.ext_underlay_tree",
    "robustness": "repro.experiments.ext_robustness",
    "virtual-scaling": "repro.experiments.fig_virtual_scaling",
    "cluster-scaling": "repro.experiments.fig_cluster_scaling",
    "federation-scaling": "repro.experiments.fig_federation_scaling",
    "observer-scaling": "repro.experiments.fig_observer_scaling",
    "churn-convergence": "repro.experiments.fig_churn_convergence",
    "routing-throughput": "repro.experiments.fig_routing_throughput",
}


def _experiment_main(name: str) -> Callable[[], None]:
    import importlib

    module = importlib.import_module(EXPERIMENTS[name])
    return module.main


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ioverlay",
        description="iOverlay reproduction: scenarios and paper experiments",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    scenario_parser = subparsers.add_parser(
        "scenario", help="run a declarative JSON scenario in the simulator"
    )
    scenario_parser.add_argument("path", help="path to the scenario JSON file")
    scenario_parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )

    experiment_parser = subparsers.add_parser(
        "experiment", help="regenerate one of the paper's tables/figures"
    )
    experiment_parser.add_argument(
        "name", nargs="?", help=f"one of: {', '.join(sorted(set(EXPERIMENTS)))}"
    )
    experiment_parser.add_argument(
        "--list", action="store_true", help="list available experiments"
    )
    experiment_parser.add_argument(
        "extra", nargs=argparse.REMAINDER,
        help="arguments after -- go to the experiment's own parser "
             "(e.g. ioverlay experiment federation-scaling -- --smoke)",
    )

    metrics_parser = subparsers.add_parser(
        "metrics",
        help="run an instrumented fig6-style simulation and export telemetry",
    )
    metrics_parser.add_argument(
        "--duration", type=float, default=20.0,
        help="total simulated seconds (default 20)",
    )
    metrics_parser.add_argument(
        "--buffer", type=int, default=5,
        help="engine buffer capacity in messages (default 5)",
    )
    metrics_parser.add_argument(
        "--out", default=".",
        help="directory for metrics.prom / metrics.json / trace.json",
    )
    metrics_parser.add_argument(
        "--no-tracing", action="store_true",
        help="collect metrics only, skip the lifecycle tracer",
    )
    metrics_parser.add_argument(
        "--trace-capacity", type=int, default=65536,
        help="lifecycle-event ring buffer size (default 65536)",
    )
    metrics_parser.add_argument("--seed", type=int, default=0)

    vhost_parser = subparsers.add_parser(
        "virtualhost",
        help="pack N full nodes into this process on one event loop",
    )
    vhost_parser.add_argument(
        "--nodes", type=int, default=100,
        help="how many co-hosted nodes to pack into the chain (default 100)",
    )
    vhost_parser.add_argument(
        "--duration", type=float, default=3.0,
        help="wall-clock seconds to run the source (default 3)",
    )
    vhost_parser.add_argument(
        "--payload", type=int, default=1000,
        help="data message payload size in bytes (default 1000)",
    )
    vhost_parser.add_argument(
        "--window", type=int, default=64,
        help="in-flight window per loopback direction, in messages (default 64)",
    )
    vhost_parser.add_argument(
        "--json", action="store_true", help="emit the packing stats as JSON"
    )

    cluster_parser = subparsers.add_parser(
        "cluster",
        help="shard N nodes over a fleet of worker processes",
    )
    cluster_parser.add_argument(
        "--workers", type=int, default=2,
        help="how many worker processes to spawn (default 2)",
    )
    cluster_parser.add_argument(
        "--nodes", type=int, default=20,
        help="total chain nodes sharded across the fleet (default 20)",
    )
    cluster_parser.add_argument(
        "--duration", type=float, default=3.0,
        help="wall-clock seconds to run the source (default 3)",
    )
    cluster_parser.add_argument(
        "--payload", type=int, default=1000,
        help="data message payload size in bytes (default 1000)",
    )
    cluster_parser.add_argument(
        "--placement", default="round-robin",
        choices=("round-robin", "bin-pack"),
        help="placement policy for unpinned nodes (default round-robin)",
    )
    cluster_parser.add_argument(
        "--fanout", type=int, default=0,
        help="wire worker observer proxies into an aggregation tree with "
             "this fan-out (default 0 = flat funnel)",
    )
    cluster_parser.add_argument(
        "--flush-interval", type=float, default=None,
        help="aggregation flush period in seconds (tree mode; default 0.5 "
             "when --fanout is set)",
    )
    cluster_parser.add_argument(
        "--telemetry", action="store_true",
        help="enable worker telemetry so roll-ups carry metrics and traces",
    )
    cluster_parser.add_argument(
        "--shm-ring-bytes", type=int, default=1 << 20, metavar="BYTES",
        help="per-direction shared-memory ring size for cross-worker "
             "links (default 1 MiB)",
    )
    cluster_parser.add_argument(
        "--no-shm", action="store_true",
        help="force plain TCP between workers (disable shm ring dialing)",
    )
    cluster_parser.add_argument(
        "--uvloop", action="store_true",
        help="run worker event loops on uvloop when it is installed "
             "(silently falls back to stock asyncio otherwise)",
    )
    cluster_parser.add_argument(
        "--json", action="store_true", help="emit the cluster stats as JSON"
    )
    federation = cluster_parser.add_argument_group(
        "federation",
        "run a root/child controller tree instead of a flat fleet",
    )
    federation.add_argument(
        "--root", action="store_true",
        help="federate: run a root controller that places nodes across "
             "child controllers (--workers becomes workers per child)",
    )
    federation.add_argument(
        "--children", type=int, default=2,
        help="child controllers the root spawns locally (default 2)",
    )
    federation.add_argument(
        "--expect", type=int, default=0, metavar="N",
        help="additionally wait for N external --join controllers "
             "before deploying (root mode)",
    )
    federation.add_argument(
        "--controller-placement", default="capacity",
        choices=("capacity", "weighted"),
        help="stage-one policy: root -> child controller (default capacity)",
    )
    federation.add_argument(
        "--join", metavar="IP:PORT", default=None,
        help="run as a child controller daemon joining a remote root's "
             "bootstrap endpoint (serves placements until signalled)",
    )
    federation.add_argument(
        "--name", default="c0",
        help="this controller's name in the tree (join mode; default c0)",
    )
    federation.add_argument(
        "--capacity", type=float, default=0.0,
        help="declared node-weight capacity for stage-one placement "
             "(join mode; 0 = unbounded)",
    )
    federation.add_argument(
        "--weight", type=float, default=1.0,
        help="declared share for weighted stage-one placement (join mode)",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="query a live observer for one message's stitched causal path",
    )
    trace_parser.add_argument(
        "trace_id", help="deterministic message id (sender/app#seq)"
    )
    trace_parser.add_argument(
        "--observer", required=True, metavar="IP:PORT",
        help="root observer endpoint to query",
    )
    trace_parser.add_argument(
        "--json", action="store_true", help="emit the raw flow report as JSON"
    )

    observe_parser = subparsers.add_parser(
        "observe",
        help="run a standalone observer daemon until SIGTERM/SIGINT",
    )
    observe_parser.add_argument("--ip", default="127.0.0.1")
    observe_parser.add_argument(
        "--port", type=int, default=0,
        help="listen port (default 0 = ephemeral, printed on startup)",
    )
    observe_parser.add_argument(
        "--poll-interval", type=float, default=1.0,
        help="seconds between status polls (default 1)",
    )
    observe_parser.add_argument(
        "--lease-timeout", type=float, default=None,
        help="expire nodes silent for this many seconds (default: disabled)",
    )
    observe_parser.add_argument(
        "--duration", type=float, default=None,
        help="exit after this many seconds instead of waiting for a signal",
    )
    observe_parser.add_argument(
        "--json", action="store_true", help="emit the final summary as JSON"
    )

    args = parser.parse_args(argv)

    if args.command == "scenario":
        report = run_scenario(load_scenario(args.path))
        if args.json:
            print(report.to_json())
        else:
            print(f"simulated {report.duration:.1f}s; alive nodes: {', '.join(report.alive)}")
            for link, rate in sorted(report.link_rates.items()):
                print(f"  {link}: {rate / 1000:.1f} KB/s")
            for name, count in sorted(report.received.items()):
                if count:
                    print(f"  {name} received {count} messages")
        return 0

    if args.command == "experiment":
        if args.list or not args.name:
            for name in sorted(set(EXPERIMENTS)):
                print(name)
            return 0
        if args.name not in EXPERIMENTS:
            print(f"unknown experiment {args.name!r}; try --list", file=sys.stderr)
            return 2
        extra = [arg for arg in args.extra if arg != "--"]
        if extra:
            _experiment_main(args.name)(extra)
        else:
            _experiment_main(args.name)()
        return 0

    if args.command == "metrics":
        from repro.tools.metrics_cmd import run_metrics

        run_metrics(
            duration=args.duration,
            buffer_capacity=args.buffer,
            out_dir=args.out,
            tracing=not args.no_tracing,
            trace_capacity=args.trace_capacity,
            seed=args.seed,
        )
        return 0

    if args.command == "virtualhost":
        from repro.tools.virtualhost_cmd import run_virtualhost

        return run_virtualhost(
            nodes=args.nodes,
            duration=args.duration,
            payload=args.payload,
            window=args.window,
            as_json=args.json,
        )

    if args.command == "cluster":
        if args.join:
            from repro.tools.federation_cmd import run_federation_join

            return run_federation_join(
                join=args.join,
                name=args.name,
                workers=args.workers,
                placement=args.placement,
                capacity=args.capacity,
                weight=args.weight,
                flush_interval=args.flush_interval,
                telemetry=args.telemetry,
                shm_ring_bytes=0 if args.no_shm else args.shm_ring_bytes,
                uvloop=args.uvloop,
            )
        if args.root:
            from repro.tools.federation_cmd import run_federation_root

            return run_federation_root(
                children=args.children,
                workers_per_child=args.workers,
                expect=args.expect,
                nodes=args.nodes,
                duration=args.duration,
                payload=args.payload,
                placement=args.controller_placement,
                child_placement=args.placement,
                flush_interval=args.flush_interval,
                telemetry=args.telemetry,
                shm_ring_bytes=0 if args.no_shm else args.shm_ring_bytes,
                uvloop=args.uvloop,
                as_json=args.json,
            )
        from repro.tools.cluster_cmd import run_cluster

        return run_cluster(
            workers=args.workers,
            nodes=args.nodes,
            duration=args.duration,
            payload=args.payload,
            placement=args.placement,
            fanout=args.fanout,
            flush_interval=args.flush_interval,
            telemetry=args.telemetry,
            shm_ring_bytes=0 if args.no_shm else args.shm_ring_bytes,
            uvloop=args.uvloop,
            as_json=args.json,
        )

    if args.command == "trace":
        from repro.tools.trace_cmd import run_trace

        return run_trace(
            trace_id=args.trace_id,
            observer=args.observer,
            as_json=args.json,
        )

    if args.command == "observe":
        from repro.tools.observe_cmd import run_observe

        return run_observe(
            ip=args.ip,
            port=args.port,
            poll_interval=args.poll_interval,
            lease_timeout=args.lease_timeout,
            duration=args.duration,
            as_json=args.json,
        )

    return 2  # pragma: no cover - argparse enforces the subcommands


if __name__ == "__main__":
    raise SystemExit(main())
