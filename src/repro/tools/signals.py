"""Graceful-shutdown plumbing for long-running CLI daemons.

``ioverlay observe``, ``ioverlay virtualhost``, ``ioverlay cluster`` and
the cluster worker all park an asyncio loop forever; a SIGTERM from a
supervisor (or Ctrl-C) must run the engines' deliberate ``disconnect``/
``stop`` path instead of dying mid-frame, so peers read a clean EOF and
the observer is not left with phantom leases.
"""

from __future__ import annotations

import asyncio
import signal

#: signals that request a graceful daemon shutdown
SHUTDOWN_SIGNALS = (signal.SIGTERM, signal.SIGINT)


def install_shutdown_handlers(
    stop: asyncio.Event, signals: tuple[signal.Signals, ...] = SHUTDOWN_SIGNALS
) -> None:
    """Arm ``stop`` on each signal; must run inside the event loop.

    Falls back to plain :func:`signal.signal` handlers where the loop
    cannot own signals (non-main thread, platforms without
    ``add_signal_handler``); if even that is unavailable the daemon
    simply keeps the default die-on-signal behaviour.
    """
    loop = asyncio.get_running_loop()
    for sig in signals:
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):
            try:
                signal.signal(sig, lambda *_: loop.call_soon_threadsafe(stop.set))
            except (ValueError, OSError):
                pass


async def wait_for_shutdown(stop: asyncio.Event) -> None:
    """Park until a shutdown signal arrives (readable call-site name)."""
    await stop.wait()
