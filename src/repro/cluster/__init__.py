"""Cluster scale-out: shard virtualized nodes across OS processes.

:class:`~repro.net.virtual.VirtualHost` packs N full engines onto one
asyncio loop, which makes a single GIL-bound process the scaling
ceiling.  This package is the layer above it: a fleet of **worker
processes** (each one event loop running a ``VirtualHost`` plus an
:class:`~repro.net.proxy.ObserverProxy`) governed by a central
:class:`ClusterController` that owns placement, deployment and
supervision — the paper's observer-driven deployment of virtualized
nodes across physical hosts (Sections 5-6), reproduced in miniature on
one machine.

- :mod:`repro.cluster.protocol` — the controller <-> worker control
  channel (ordinary iOverlay frames, ``W_*`` verbs);
- :mod:`repro.cluster.placement` — round-robin, bin-packing by declared
  node weight, and explicit pinning;
- :mod:`repro.cluster.worker` — the worker process (``python -m
  repro.cluster.worker``): spawn/stop/inspect verbs, heartbeats with
  process gauges, graceful signal handling;
- :mod:`repro.cluster.controller` — spawn/supervise the fleet, place
  nodes, drive them through the observer's DEPLOY/TERMINATE verbs,
  re-run the failure domino bookkeeping when a worker dies, optionally
  respawn-and-redeploy;
- :mod:`repro.cluster.scenarios` — deterministic chain/butterfly
  workloads used to prove cluster output is byte-identical to a
  single-process run.

Cross-worker overlay traffic uses the ordinary socket path; traffic
between nodes on the same worker keeps the zero-copy loopback fast
path.  The observer sees one connection per worker (the proxy), exactly
as the paper's firewall relay intends.
"""

from repro.cluster.controller import ClusterConfig, ClusterController, WorkerState
from repro.cluster.placement import (
    BinPackPlacement,
    PlacementPolicy,
    RoundRobinPlacement,
    make_placement,
)
from repro.cluster.spec import NodeSpec, PlacedNode


def __getattr__(name: str):
    # WorkerHost is exported lazily: eagerly importing repro.cluster.worker
    # here would shadow the `python -m repro.cluster.worker` entry point
    # (runpy warns when the module is in sys.modules before execution).
    if name == "WorkerHost":
        from repro.cluster.worker import WorkerHost

        return WorkerHost
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ClusterConfig",
    "ClusterController",
    "WorkerState",
    "NodeSpec",
    "PlacedNode",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "BinPackPlacement",
    "make_placement",
    "WorkerHost",
]
