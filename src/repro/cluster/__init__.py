"""Cluster scale-out: shard virtualized nodes across OS processes.

:class:`~repro.net.virtual.VirtualHost` packs N full engines onto one
asyncio loop, which makes a single GIL-bound process the scaling
ceiling.  This package is the layer above it: a fleet of **worker
processes** (each one event loop running a ``VirtualHost`` plus an
:class:`~repro.net.proxy.ObserverProxy`) governed by a central
:class:`ClusterController` that owns placement, deployment and
supervision — the paper's observer-driven deployment of virtualized
nodes across physical hosts (Sections 5-6), reproduced in miniature on
one machine.

- :mod:`repro.cluster.protocol` — the controller <-> worker control
  channel (ordinary iOverlay frames, ``W_*`` verbs);
- :mod:`repro.cluster.placement` — round-robin, bin-packing by declared
  node weight, and explicit pinning;
- :mod:`repro.cluster.worker` — the worker process (``python -m
  repro.cluster.worker``): spawn/stop/inspect verbs, heartbeats with
  process gauges, graceful signal handling;
- :mod:`repro.cluster.controller` — spawn/supervise the fleet, place
  nodes, drive them through the observer's DEPLOY/TERMINATE verbs,
  re-run the failure domino bookkeeping when a worker dies, optionally
  respawn-and-redeploy;
- :mod:`repro.cluster.scenarios` — deterministic chain/butterfly
  workloads used to prove cluster output is byte-identical to a
  single-process run;
- :mod:`repro.cluster.supervise` — the shared supervision core both
  tiers run on: spawn/reap/heartbeat/death-ladder/respawn over an
  abstract child handle, with a consecutive-respawn budget and
  idempotent teardown;
- :mod:`repro.cluster.federation` / :mod:`repro.cluster.child` — the
  controller-of-controllers tier: a :class:`RootController` places
  specs across child controllers (two-stage placement, ``C_*`` verbs,
  O(children) observer ingress), each child running a full
  :class:`ClusterController` over its own worker fleet.

Cross-worker overlay traffic uses the ordinary socket path; traffic
between nodes on the same worker keeps the zero-copy loopback fast
path.  The observer sees one connection per worker (the proxy), exactly
as the paper's firewall relay intends.
"""

from repro.cluster.controller import ClusterConfig, ClusterController, WorkerState
from repro.cluster.federation import ControllerState, RootConfig, RootController
from repro.cluster.placement import (
    BinPackPlacement,
    CapacityPlacement,
    ControllerLoad,
    ControllerPlacementPolicy,
    PlacementPolicy,
    RoundRobinPlacement,
    WeightedControllerPlacement,
    make_controller_placement,
    make_placement,
)
from repro.cluster.spec import ControllerSpec, NodeSpec, PlacedNode
from repro.cluster.supervise import RespawnPolicy, SupervisorCore


def __getattr__(name: str):
    # The process entry points are exported lazily: eagerly importing
    # repro.cluster.worker / repro.cluster.child here would shadow their
    # `python -m` execution (runpy warns when the module is in
    # sys.modules before execution).
    if name == "WorkerHost":
        from repro.cluster.worker import WorkerHost

        return WorkerHost
    if name == "ChildControllerHost":
        from repro.cluster.child import ChildControllerHost

        return ChildControllerHost
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ClusterConfig",
    "ClusterController",
    "WorkerState",
    "RootConfig",
    "RootController",
    "ControllerState",
    "NodeSpec",
    "PlacedNode",
    "ControllerSpec",
    "PlacementPolicy",
    "RoundRobinPlacement",
    "BinPackPlacement",
    "ControllerPlacementPolicy",
    "CapacityPlacement",
    "WeightedControllerPlacement",
    "ControllerLoad",
    "make_placement",
    "make_controller_placement",
    "RespawnPolicy",
    "SupervisorCore",
    "WorkerHost",
    "ChildControllerHost",
]
