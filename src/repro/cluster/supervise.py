"""The supervision core: spawn, reap, heartbeat, death ladder, respawn.

Both tiers of the control plane supervise a set of *children* the same
way — the :class:`~repro.cluster.controller.ClusterController` watches
worker processes, the federated root controller watches whole child
controllers — so the mechanics live here once, over an abstract child
handle (:class:`ChildState`):

- **spawn**: launch a subprocess from a frontend-built argv and await
  its registration frame on the control server (children that *join*
  over plain TCP instead of being launched are *adopted*: same state
  machine, no process to reap or respawn);
- **death ladder**: a reaped process, a channel EOF and a heartbeat
  silence window all confirm the same death exactly once;
- **respawn**: a dead spawned child relaunches under a
  *consecutive-respawn budget* with exponential backoff
  (:class:`RespawnPolicy`) — a child that crash-loops on boot burns its
  budget and is abandoned with a ``respawn-exhausted`` trace instead of
  spinning the fleet forever; surviving longer than ``min_uptime``
  resets the streak;
- **teardown**: :meth:`SupervisorCore.stop` is idempotent and safe
  against in-flight respawns — a subprocess created while stop() runs
  is killed, never orphaned.

Frontends parameterize the wire dialect with a :class:`FrameFamily`
(the ``W_*`` worker verbs or the ``C_*`` controller-to-controller
verbs) and override the template hooks for registration, heartbeats,
death bookkeeping and orphan re-placement.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass, field as dataclass_field
from typing import Any

from repro.cluster.protocol import ControlChannel
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.errors import ClusterError
from repro.telemetry.tracing import EventType


@dataclass(frozen=True)
class FrameFamily:
    """The wire verbs one supervision tier speaks on its channels."""

    #: child -> supervisor, first frame: identity
    register: int
    #: child -> supervisor: periodic liveness + gauges
    heartbeat: int
    #: supervisor -> child: drain and exit
    shutdown: int
    #: child -> supervisor frames correlated to a request by ``seq``
    replies: frozenset[int]


#: controller <-> worker (process tier, PR 5)
WORKER_FAMILY = FrameFamily(
    register=MsgType.W_REGISTER,
    heartbeat=MsgType.W_HEARTBEAT,
    shutdown=MsgType.W_SHUTDOWN,
    replies=frozenset({MsgType.W_SPAWNED, MsgType.W_NODE_INFO_REPLY}),
)

#: root <-> child controller (federation tier)
CONTROLLER_FAMILY = FrameFamily(
    register=MsgType.C_JOIN,
    heartbeat=MsgType.C_HEARTBEAT,
    shutdown=MsgType.C_SHUTDOWN,
    replies=frozenset({MsgType.C_PLACED, MsgType.C_INFO_REPLY}),
)


@dataclass
class RespawnPolicy:
    """Budgeted exponential backoff for crash-looping children."""

    #: consecutive early deaths tolerated before giving up on the child
    max_consecutive: int = 5
    #: backoff before the 2nd consecutive respawn; doubles per streak step
    backoff_base: float = 0.25
    #: backoff ceiling
    backoff_max: float = 5.0
    #: surviving this long after registration resets the streak to zero
    min_uptime: float = 5.0

    def delay(self, streak: int) -> float:
        """Backoff before respawn attempt number ``streak`` (1-based)."""
        if streak <= 1:
            return 0.0
        return min(self.backoff_max, self.backoff_base * 2 ** (streak - 2))


@dataclass
class ChildState:
    """The abstract child handle: everything the core supervises."""

    name: str
    process: Any = None  # asyncio.subprocess.Process (None when adopted)
    chan: ControlChannel | None = None
    pid: int = 0
    alive: bool = False
    shutting_down: bool = False
    #: joined over TCP instead of being launched here: nothing to reap,
    #: nothing to respawn — death bookkeeping is all that applies
    adopted: bool = False
    last_heartbeat: float = 0.0
    #: when registration completed (uptime feeds the respawn streak)
    spawned_at: float = 0.0


class SupervisorCore:
    """Supervises a set of children over one control server.

    Frontends subclass and override the template hooks:

    ``child_argv(state)``
        argv for (re)launching the child; ``None`` marks the child
        non-respawnable (adopted children never consult it).
    ``child_env(state)``
        environment for the subprocess (``None`` inherits).
    ``on_registered(state, fields)``
        the child's registration fields arrived (identity facts).
    ``on_heartbeat(state, fields)``
        a heartbeat's gauge fields arrived.
    ``on_frame(state, msg)``
        any other non-reply upward frame.
    ``on_child_dead(state, reason)``
        death bookkeeping; returns the *orphans* to hand to
        ``replace_orphans`` after a successful respawn.
    ``replace_orphans(state, orphans)``
        re-place what the dead incarnation hosted.
    ``trace(event, **detail)``
        bridge to the frontend's telemetry (default: drop).
    """

    #: state dataclass instantiated per child (frontends override)
    state_class: type[ChildState] = ChildState

    def __init__(
        self,
        family: FrameFamily,
        *,
        ip: str = "127.0.0.1",
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 3.0,
        register_timeout: float = 20.0,
        request_timeout: float = 20.0,
        respawn: bool = False,
        respawn_policy: RespawnPolicy | None = None,
        adopt_unknown: bool = False,
    ) -> None:
        self.family = family
        self.ip = ip
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.register_timeout = register_timeout
        self.request_timeout = request_timeout
        self.respawn = respawn
        self.respawn_policy = respawn_policy or RespawnPolicy()
        #: accept registrations from children this supervisor did not
        #: launch (the federation root adopts remote ``--join`` daemons)
        self.adopt_unknown = adopt_unknown
        self.children: dict[str, ChildState] = {}
        self.port = 0
        self._server: asyncio.AbstractServer | None = None
        self._seq = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._register_waiters: dict[str, asyncio.Future] = {}
        self._respawn_streak: dict[str, int] = {}
        self._tasks: list[asyncio.Task] = []
        self._running = False
        #: set once stop() has fully torn down; a second stop() awaits it
        self._stopped: asyncio.Event | None = None
        self.deaths = 0
        self.respawns_abandoned = 0

    # ----------------------------------------------------------- template hooks

    def child_argv(self, state: ChildState) -> list[str] | None:
        raise NotImplementedError

    def child_env(self, state: ChildState) -> dict[str, str] | None:
        return None

    def on_registered(self, state: ChildState, fields: dict) -> None:
        pass

    def on_heartbeat(self, state: ChildState, fields: dict) -> None:
        pass

    def on_frame(self, state: ChildState, msg: Message) -> None:
        pass

    async def on_child_dead(self, state: ChildState, reason: str) -> list:
        return []

    async def replace_orphans(self, state: ChildState, orphans: list) -> None:
        pass

    def trace(self, event: str, **detail: Any) -> None:
        pass

    # ---------------------------------------------------------------- lifecycle

    @property
    def running(self) -> bool:
        return self._running

    async def start_server(self) -> None:
        """Bind the control server children register against."""
        if self._running:
            raise RuntimeError("supervisor already started")
        self._running = True
        self._stopped = None
        self._server = await asyncio.start_server(self._accept, host=self.ip, port=0)
        self.port = self._server.sockets[0].getsockname()[1]
        self._tasks.append(asyncio.ensure_future(self._sweep_loop()))

    async def stop(self) -> None:
        """Drain every child, then reap with escalation.

        Idempotent and re-entrant: a concurrent or nested call awaits
        the first one instead of racing it, and a respawn in flight
        cannot leak a half-spawned process — its creation future is
        tracked, and whatever it produces after cancellation is killed.
        """
        if self._stopped is not None:
            await self._stopped.wait()
            return
        if not self._running:
            return
        self._stopped = asyncio.Event()
        try:
            self._running = False
            # Stop accepting first: with adopt_unknown a C_JOIN landing
            # mid-teardown would otherwise grow self.children under us.
            if self._server is not None:
                self._server.close()
            for task in self._tasks:
                task.cancel()
            self._tasks.clear()
            for state in list(self.children.values()):
                state.shutting_down = True
                if state.alive and state.chan is not None and not state.chan.is_closing():
                    try:
                        await state.chan.send(self.family.shutdown)
                    except (ConnectionError, OSError):
                        pass
            for state in list(self.children.values()):
                await self._reap_with_escalation(state)
                state.alive = False
                if state.chan is not None:
                    state.chan.close()
                    state.chan = None
            if self._server is not None:
                await self._server.wait_closed()
                self._server = None
            for fut in self._pending.values():
                if not fut.done():
                    fut.cancel()
            self._pending.clear()
            for fut in self._register_waiters.values():
                if not fut.done():
                    fut.cancel()
            self._register_waiters.clear()
        finally:
            self._stopped.set()

    async def _reap_with_escalation(self, state: ChildState) -> None:
        proc = state.process
        if proc is None or proc.returncode is not None:
            return
        try:
            await asyncio.wait_for(proc.wait(), 5.0)
            return
        except asyncio.TimeoutError:
            proc.terminate()
        try:
            await asyncio.wait_for(proc.wait(), 2.0)
        except asyncio.TimeoutError:
            proc.kill()
            await proc.wait()

    # ----------------------------------------------------------------- spawning

    async def spawn_child(self, name: str) -> ChildState:
        """Launch one child process and wait for its registration."""
        if not self._running:
            raise ClusterError(f"cannot spawn {name!r}: supervisor is stopped")
        existing = self.children.get(name)
        if existing is not None and existing.alive:
            raise ClusterError(f"child {name!r} is already running")
        state = self.state_class(name=name)
        self.children[name] = state
        argv = self.child_argv(state)
        if argv is None:
            raise ClusterError(f"child {name!r} is not launchable from here")
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._register_waiters[name] = waiter
        # The creation future outlives a cancellation of this coroutine:
        # whatever process it produces after we are gone is killed, so a
        # stop() racing a respawn can never orphan a half-spawned child.
        creation = asyncio.ensure_future(
            asyncio.create_subprocess_exec(*argv, env=self.child_env(state))
        )
        try:
            state.process = await asyncio.shield(creation)
        except asyncio.CancelledError:
            creation.add_done_callback(_kill_stray)
            self._register_waiters.pop(name, None)
            raise
        except OSError as exc:
            self._register_waiters.pop(name, None)
            raise ClusterError(f"cannot launch child {name!r}: {exc}") from exc
        if not self._running:
            # stop() ran while the exec was in flight: the teardown loop
            # may already have passed this state — reap here instead.
            state.process.kill()
            await state.process.wait()
            self._register_waiters.pop(name, None)
            raise ClusterError(f"child {name!r} spawned during shutdown")
        try:
            await asyncio.wait_for(waiter, self.register_timeout)
        except asyncio.TimeoutError:
            self._register_waiters.pop(name, None)
            # Kill and reap the straggler: left alive it would leak, and
            # a late registration from it could attach a stale process's
            # channel to a newer respawn incarnation of this name.
            pid = state.process.pid
            if state.process.returncode is None:
                state.process.kill()
                await state.process.wait()
            raise ClusterError(
                f"child {name!r} (pid {pid}) did not register "
                f"within {self.register_timeout}s"
            ) from None
        state.alive = True
        now = time.monotonic()
        state.last_heartbeat = now
        state.spawned_at = now
        self._tasks.append(asyncio.ensure_future(self._reap(state)))
        return state

    async def _reap(self, state: ChildState) -> None:
        """Fast crash detection: the OS tells us the moment a child exits."""
        proc = state.process
        if proc is None:
            return
        returncode = await proc.wait()
        await self._child_dead(state, reason=f"exit={returncode}")

    # ----------------------------------------------------------- control channel

    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        chan = ControlChannel(reader, writer)
        try:
            first = await asyncio.wait_for(chan.recv(), self.register_timeout)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError, OSError):
            chan.close()
            return
        if first.type != self.family.register:
            chan.close()
            return
        fields = first.fields()
        name = str(fields.get("name", ""))
        state = self.children.get(name)
        if state is None:
            if not self.adopt_unknown or not name:
                chan.close()  # not a child of ours
                return
            state = self.state_class(name=name)
            state.adopted = True
            self.children[name] = state
        elif state.alive and state.chan is not None and not state.chan.is_closing():
            chan.close()  # a live child already owns this name
            return
        elif state.process is not None and int(fields.get("pid", 0)) != state.process.pid:
            # A stale incarnation (e.g. one that outlived its register
            # timeout) must not satisfy a newer respawn's registration.
            chan.close()
            return
        state.chan = chan
        state.pid = int(fields.get("pid", 0))
        self.on_registered(state, fields)
        if state.adopted:
            now = time.monotonic()
            state.alive = True
            state.shutting_down = False
            state.last_heartbeat = now
            state.spawned_at = now
        waiter = self._register_waiters.pop(name, None)
        if waiter is not None and not waiter.done():
            waiter.set_result(state)
        while self._running:
            try:
                msg = await chan.recv()
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                break
            except asyncio.CancelledError:
                return
            self._dispatch(state, msg)
        await self._child_dead(state, reason="channel-eof")

    def _dispatch(self, state: ChildState, msg: Message) -> None:
        if msg.type == self.family.heartbeat:
            state.last_heartbeat = time.monotonic()
            self.on_heartbeat(state, msg.fields())
        elif msg.type in self.family.replies:
            future = self._pending.pop(msg.seq, None)
            if future is not None and not future.done():
                future.set_result(msg)
        else:
            self.on_frame(state, msg)

    async def request(self, state: ChildState, type_: int, **fields: Any) -> dict:
        """One correlated request/reply round trip on a child's channel."""
        if not state.alive or state.chan is None or state.chan.is_closing():
            raise ClusterError(f"child {state.name!r} is not live")
        seq = next(self._seq)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[seq] = future
        try:
            await state.chan.send(type_, seq=seq, **fields)
        except (ConnectionError, OSError) as exc:
            self._pending.pop(seq, None)
            raise ClusterError(f"child {state.name!r} channel failed: {exc}") from exc
        try:
            reply = await asyncio.wait_for(future, self.request_timeout)
        except asyncio.TimeoutError:
            self._pending.pop(seq, None)
            raise ClusterError(
                f"child {state.name!r} did not answer request type {type_} "
                f"within {self.request_timeout}s"
            ) from None
        except asyncio.CancelledError:
            self._pending.pop(seq, None)
            task = asyncio.current_task()
            if task is not None and task.cancelling():
                raise  # the caller itself is being cancelled
            # Only the pending future was cancelled (teardown dropped it).
            raise ClusterError(
                f"child {state.name!r} request type {type_} was dropped "
                "during teardown"
            ) from None
        result = reply.fields()
        if "error" in result:
            raise ClusterError(f"child {state.name!r}: {result['error']}")
        return result

    async def send(self, state: ChildState, type_: int, **fields: Any) -> None:
        """One uncorrelated downward frame (best-effort)."""
        if state.chan is None or state.chan.is_closing():
            raise ClusterError(f"child {state.name!r} has no live channel")
        await state.chan.send(type_, **fields)

    # --------------------------------------------------------------- supervision

    async def _sweep_loop(self) -> None:
        """Confirm silent deaths the EOF/reap paths cannot see."""
        interval = max(0.05, self.heartbeat_interval / 2)
        while self._running:
            await asyncio.sleep(interval)
            if not self._running:
                return
            now = time.monotonic()
            for state in list(self.children.values()):
                if (
                    state.alive
                    and not state.shutting_down
                    and now - state.last_heartbeat > self.heartbeat_timeout
                ):
                    await self._child_dead(state, reason="heartbeat-timeout")

    async def _child_dead(self, state: ChildState, reason: str) -> None:
        """Confirm one death (idempotent across the three detection paths)."""
        if not self._running or not state.alive or state.shutting_down:
            return
        state.alive = False  # before any await: later detections no-op
        self.deaths += 1
        if state.chan is not None:
            state.chan.close()
            state.chan = None
        orphans = await self.on_child_dead(state, reason)
        if self.respawn and not state.adopted and self._running:
            self._tasks.append(
                asyncio.ensure_future(self._respawn(state.name, orphans))
            )

    async def _respawn(self, name: str, orphans: list) -> None:
        """Relaunch a dead child under the consecutive-respawn budget."""
        state = self.children.get(name)
        if state is None or not self._running:
            return
        policy = self.respawn_policy
        if state.spawned_at and time.monotonic() - state.spawned_at >= policy.min_uptime:
            self._respawn_streak[name] = 0  # it had a healthy run
        streak = self._respawn_streak.get(name, 0) + 1
        self._respawn_streak[name] = streak
        if streak > policy.max_consecutive:
            self.respawns_abandoned += 1
            self.trace(EventType.RESPAWN_EXHAUSTED, child=name, attempts=streak - 1)
            return
        delay = policy.delay(streak)
        if delay > 0:
            self.trace(
                EventType.RESPAWN_BACKOFF, child=name,
                attempt=streak, delay=round(delay, 3),
            )
            await asyncio.sleep(delay)
            if not self._running:
                return
        try:
            fresh = await self.spawn_child(name)
        except ClusterError:
            # A boot failure (register timeout, exec error) burns budget
            # exactly like an early death: try again until exhausted.
            if self._running:
                self._tasks.append(asyncio.ensure_future(self._respawn(name, orphans)))
            return
        await self.replace_orphans(fresh, orphans)


def _kill_stray(creation: asyncio.Future) -> None:
    """Reap a process whose spawner was cancelled mid-``exec``."""
    if creation.cancelled() or creation.exception() is not None:
        return
    try:
        creation.result().kill()
    except ProcessLookupError:
        pass
