"""Deterministic cluster workloads with verifiable byte-level output.

The acceptance bar for the cluster layer is *byte identity*: a topology
sharded across worker processes must deliver exactly the bytes a
single-process :class:`~repro.net.virtual.VirtualHost` run delivers.
Paced sources (``start_source``) emit on wall-clock schedules and can
never be compared byte-for-byte across runs, so these scenarios use
**burst** sources instead: an observer ``CONTROL`` verb
(:data:`BURST_CONTROL`) tells the source to emit exactly ``param1``
messages of ``param2`` bytes, with payloads that are a pure function of
``(app, seq, size)``.  Sinks fold what they receive into order-
independent SHA-256 digests and expose them through the duck-typed
``cluster_info()`` hook the worker's ``W_NODE_INFO`` verb serves — so
two runs are byte-identical iff their digests match, regardless of
process count or arrival order.

Two topologies mirror the repo's reference workloads:

- :func:`chain_specs` — the Fig. 5 forwarding chain;
- :func:`butterfly_specs` — the Fig. 8 network-coding butterfly
  (source splits into two sub-streams, a coding node combines them,
  two receivers decode from one plain and one coded stream each).

Relay and sink algorithms here also trace ``cluster-broken-link`` /
``cluster-broken-source`` to the observer, which is how the worker-kill
tests assert the failure domino reached exactly the dead worker's
nodes.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from typing import Callable

from repro.algorithms.coding.algorithm import CodedSourceAlgorithm, DecodingSinkAlgorithm
from repro.algorithms.forwarding import CopyForwardAlgorithm
from repro.cluster.spec import NodeSpec, build_algorithm, ref, resolve_refs
from repro.core.algorithm import Algorithm, Disposition
from repro.core.ids import AppId, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.net.virtual import VirtualHost

#: ``CONTROL.type`` value that triggers a deterministic burst
BURST_CONTROL = 1

#: importable algorithm paths (what NodeSpecs carry over the wire)
RELAY = "repro.cluster.scenarios:ClusterRelayAlgorithm"
SOURCE = "repro.cluster.scenarios:BurstSourceAlgorithm"
SINK = "repro.cluster.scenarios:DigestSinkAlgorithm"
CODED_SOURCE = "repro.cluster.scenarios:CodedBurstSourceAlgorithm"
CODING = "repro.algorithms.coding.algorithm:CodingNodeAlgorithm"
DECODING_SINK = "repro.cluster.scenarios:DecodingDigestSinkAlgorithm"


def burst_payload(app: AppId, seq: int, size: int) -> bytes:
    """The data portion of burst message ``seq``: pure f(app, seq, size)."""
    step = (seq * 31 + app * 17 + 7) % 251 + 1
    start = (seq * 131 + app) % 256
    return bytes((start + i * step) % 256 for i in range(size))


def _combined(parts: dict[int, str]) -> str:
    """Fold per-key digests into one order-independent hex digest."""
    whole = hashlib.sha256()
    for key in sorted(parts):
        whole.update(f"{key}:{parts[key]};".encode())
    return whole.hexdigest()


class _ClusterTracing:
    """Mixin: surface fabric failure notices as observer traces.

    The worker-kill tests read these back from the observer's central
    trace log to prove the domino reached exactly the dead worker's
    hosted nodes — and nobody else.
    """

    def on_broken_link(self, msg: Message) -> Disposition:
        fields = msg.fields()
        self.trace(
            f"cluster-broken-link peer={fields['peer']} "
            f"direction={fields.get('direction', '')}"
        )
        return super().on_broken_link(msg) or Disposition.DONE

    def on_broken_source(self, msg: Message) -> Disposition:
        self.trace(f"cluster-broken-source app={msg.app}")
        return super().on_broken_source(msg) or Disposition.DONE


class BurstSourceAlgorithm(_ClusterTracing, CopyForwardAlgorithm):
    """Emit exactly ``param1`` deterministic messages of ``param2`` bytes.

    Triggered by the observer's CONTROL verb; each message is copied to
    every configured downstream, like the paced sources do.
    """

    def __init__(self, downstreams: list[NodeId] | None = None, seed: int | None = None) -> None:
        super().__init__(downstreams=downstreams, seed=seed)
        self.bursts = 0
        self.emitted = 0

    def on_control(self, msg: Message) -> Disposition:
        fields = msg.fields()
        if int(fields.get("type", 0)) != BURST_CONTROL:
            return Disposition.DONE
        count, size = int(fields.get("param1", 0)), int(fields.get("param2", 0))
        for seq in range(count):
            data = Message(
                MsgType.DATA, self.node_id, msg.app,
                burst_payload(msg.app, seq, size), seq=seq,
            )
            for dest in self.downstream_targets:
                self.send(data, dest)
            self.emitted += 1
        self.bursts += 1
        return Disposition.DONE

    def cluster_info(self) -> dict:
        return {"emitted": self.emitted, "bursts": self.bursts}


class ClusterRelayAlgorithm(_ClusterTracing, CopyForwardAlgorithm):
    """Copy-forward relay that reports counters and failure traces."""

    def cluster_info(self) -> dict:
        return {"received": self.received, "forwarded": self.forwarded}


class DigestSinkAlgorithm(_ClusterTracing, Algorithm):
    """Consume data and keep an order-independent digest per application."""

    def __init__(self, seed: int | None = None) -> None:
        super().__init__(seed=seed)
        # app -> seq -> payload digest; last copy wins, which is safe
        # because burst payloads are pure functions of (app, seq, size).
        self._digests: dict[int, dict[int, str]] = {}
        self.received = 0

    def on_data(self, msg: Message) -> Disposition:
        per_app = self._digests.setdefault(msg.app, {})
        per_app[msg.seq] = hashlib.sha256(msg.payload).hexdigest()
        self.received += 1
        return Disposition.DONE

    def digest(self, app: AppId) -> str:
        return _combined(self._digests.get(app, {}))

    def cluster_info(self) -> dict:
        return {
            "received": self.received,
            "digests": {str(app): self.digest(app) for app in sorted(self._digests)},
        }


class CodedBurstSourceAlgorithm(CodedSourceAlgorithm):
    """Coded source fed by deterministic bursts instead of a paced task.

    The burst routes through the ordinary :meth:`on_data` splitter, so
    sub-stream fan-out and generation numbering are exactly those of the
    paced coded source.
    """

    def on_control(self, msg: Message) -> Disposition:
        fields = msg.fields()
        if int(fields.get("type", 0)) != BURST_CONTROL:
            return Disposition.DONE
        count, size = int(fields.get("param1", 0)), int(fields.get("param2", 0))
        for seq in range(count):
            self.on_data(Message(
                MsgType.DATA, self.node_id, msg.app,
                burst_payload(msg.app, seq, size), seq=seq,
            ))
        return Disposition.DONE

    def cluster_info(self) -> dict:
        return {"produced": self.produced}


class DecodingDigestSinkAlgorithm(_ClusterTracing, DecodingSinkAlgorithm):
    """Decoding sink that digests every decoded generation's originals."""

    def __init__(
        self, k: int, forward_to: list[NodeId] | None = None, seed: int | None = None
    ) -> None:
        super().__init__(k=k, forward_to=forward_to, seed=seed)
        self._generation_digests: dict[int, str] = {}

    def on_generation_decoded(self, generation: int, originals: list[bytes]) -> None:
        whole = hashlib.sha256()
        for original in originals:
            whole.update(original)
        self._generation_digests[generation] = whole.hexdigest()

    def digest(self) -> str:
        return _combined(self._generation_digests)

    def cluster_info(self) -> dict:
        return {"decoded": self.decoded_generations, "digest": self.digest()}


# ------------------------------------------------------------------ topologies


def chain_specs(length: int, prefix: str = "n") -> list[NodeSpec]:
    """A forwarding chain of ``length`` nodes, specs ordered sinks-first.

    ``{prefix}0`` is the burst source, ``{prefix}{length-1}`` the digest
    sink; everything between is a relay.  The source carries extra
    weight so bin-packing spreads real work, not just node counts.
    """
    if length < 2:
        raise ValueError(f"a chain needs at least 2 nodes, got {length}")
    specs = [NodeSpec(name=f"{prefix}{length - 1}", algorithm=SINK)]
    for i in range(length - 2, 0, -1):
        specs.append(NodeSpec(
            name=f"{prefix}{i}", algorithm=RELAY,
            kwargs={"downstreams": [ref(f"{prefix}{i + 1}")]},
        ))
    specs.append(NodeSpec(
        name=f"{prefix}0", algorithm=SOURCE,
        kwargs={"downstreams": [ref(f"{prefix}1")]}, weight=2.0,
    ))
    return specs


def butterfly_specs(prefix: str = "") -> list[NodeSpec]:
    """The Fig. 8 network-coding butterfly, specs ordered sinks-first.

    Source A splits into sub-streams via B and C; coding node D combines
    them (``a + b``) through relay E; receivers F and G each decode from
    one plain sub-stream and the coded stream.  Coding/decoding nodes
    carry extra weight for the bin-packing policy.
    """
    n = lambda name: f"{prefix}{name}"  # noqa: E731 - tiny local renamer
    return [
        NodeSpec(n("F"), DECODING_SINK, {"k": 2}, weight=2.0),
        NodeSpec(n("G"), DECODING_SINK, {"k": 2}, weight=2.0),
        NodeSpec(n("E"), RELAY, {"downstreams": [ref(n("F")), ref(n("G"))]}),
        NodeSpec(n("D"), CODING, {"k": 2, "downstreams": [ref(n("E"))]}, weight=2.0),
        NodeSpec(n("B"), RELAY, {"downstreams": [ref(n("D")), ref(n("F"))]}),
        NodeSpec(n("C"), RELAY, {"downstreams": [ref(n("D")), ref(n("G"))]}),
        NodeSpec(
            n("A"), CODED_SOURCE,
            {"downstreams": [ref(n("B")), ref(n("C"))]}, weight=2.0,
        ),
    ]


# ------------------------------------------------------- single-process baseline


async def build_local(
    specs: list[NodeSpec],
    observer_addr: NodeId | None = None,
    ip: str = "127.0.0.1",
) -> tuple[VirtualHost, dict[str, object]]:
    """Instantiate the same specs in ONE VirtualHost (the baseline run).

    Uses the identical spec -> algorithm construction path as the
    workers, so a digest mismatch against the cluster run can only come
    from the transport, never from differing wiring.
    """
    host = VirtualHost(observer_addr=observer_addr, ip=ip)
    engines: dict[str, object] = {}
    for spec in specs:
        wire = resolve_refs(spec.kwargs, lambda name: engines[name].node_id)
        algorithm = build_algorithm(spec.algorithm, wire)
        engine = host.add_node(algorithm)
        await host.start_node(engine)
        engines[spec.name] = engine
    return host, engines


def burst_control_message(app: AppId, count: int, size: int) -> Message:
    """The CONTROL frame the observer would send to trigger a burst."""
    from repro.observer.observer import Observer

    return Message.with_fields(
        MsgType.CONTROL, Observer.OBSERVER_ID, app,
        type=BURST_CONTROL, param1=count, param2=size,
    )


async def wait_until(
    predicate: Callable[[], bool], timeout: float = 30.0, interval: float = 0.05
) -> bool:
    """Poll ``predicate`` on the loop until true or ``timeout`` elapses."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()
