"""The federation root: a controller of controllers.

One :class:`RootController` supervises a set of **child controllers**
— each a full :class:`~repro.cluster.controller.ClusterController`
running its own worker fleet in its own process
(:mod:`repro.cluster.child`) — through the same supervision core that
watches worker processes, just one tier up:

- children either get **spawned** locally (``python -m
  repro.cluster.child``) or **join** over plain TCP from anywhere
  (``ioverlay cluster --join``); a joiner is *adopted* — same state
  machine, nothing to reap or respawn;
- the bootstrap handshake is two-phase: ``C_JOIN`` (identity, declared
  worker count/capacity/weight) is answered with ``C_WELCOME`` (the
  root observer endpoint to aggregate into, plus a pinned proxy port on
  respawn), the child boots its proxy and fleet, then reports
  ``C_EVENT {event: "ready"}`` — placement only ever targets ready
  children;
- **placement is two-stage**: the root resolves every ``"@name"``
  reference against its *global* placed map (so edges cross controller
  boundaries transparently), picks a child by capacity or weighted
  policy (or the spec's ``controller`` pin), and ships the wire-form
  spec via ``C_PLACE``; the child then places it across its own workers
  with the ordinary single-stage policies;
- the **observer tree** roots one aggregation proxy per child
  controller: a node's telemetry travels node → worker proxy → child
  controller proxy → root observer, so root ingress is
  O(children), not O(workers) — and downward control frames ride the
  same learned routes back;
- **death detection gains a third tier**: losing a child controller
  marks its *entire shard* down and re-places every orphaned spec
  through the root policy across the surviving (or respawned) children,
  in the original sinks-first order — the controller-level analog of
  the worker-death redeploy.

Everything is observable: ``ioverlay_cluster_controllers`` gauges the
ready population, controller deaths and shard redeploys bump counters,
and ``controller-join``/``controller-dead``/``shard-redeployed`` trace
events bracket every reconfiguration.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import Any, Iterable

from repro.cluster.controller import ObserverControl
from repro.cluster.placement import ControllerLoad, make_controller_placement
from repro.cluster.spec import NodeSpec, PlacedNode, resolve_refs
from repro.cluster.supervise import (
    CONTROLLER_FAMILY,
    ChildState,
    RespawnPolicy,
    SupervisorCore,
)
from repro.core.ids import AppId, NodeId
from repro.core.msgtypes import MsgType
from repro.errors import ClusterError, CodecError
from repro.telemetry import Telemetry
from repro.telemetry.tracing import EventType


@dataclass
class RootConfig:
    """Tunables of one federation root."""

    ip: str = "127.0.0.1"
    #: stage-one policy: ``capacity`` (most free declared capacity) or
    #: ``weighted`` (least load per declared weight)
    placement: str = "capacity"
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 3.0
    #: a child registers (C_JOIN) quickly, but is only *ready* once its
    #: whole fleet booted — both waits share this budget
    register_timeout: float = 30.0
    request_timeout: float = 30.0
    #: relaunch locally-spawned children that die (joiners never respawn
    #: from here — their machine owns their lifecycle)
    respawn: bool = False
    respawn_max: int = 5
    respawn_backoff: float = 0.25
    respawn_backoff_max: float = 5.0
    respawn_min_uptime: float = 5.0
    telemetry: Telemetry | None = None
    #: defaults for locally-spawned children (a join declares its own)
    workers_per_child: int = 2
    child_placement: str = "round-robin"
    #: aggregation flush period for the child-controller proxies *and*
    #: their worker proxies — the federation tree always aggregates
    #: (pure relays would multiply hops for no reduction)
    observer_flush_interval: float = 0.2
    #: worker-process passthrough for spawned children
    worker_telemetry: bool = False
    shm_ring_bytes: int = 1 << 20
    uvloop: bool = False


@dataclass
class ControllerState(ChildState):
    """Everything the root knows about one child controller."""

    #: declared fleet size / capacity / weight (from C_JOIN)
    workers: int = 0
    capacity: float = 0.0
    weight: float = 1.0
    #: fleet booted, aggregation proxy attached — placement may target it
    ready: bool = False
    #: the child's aggregation-proxy endpoint (from the ready event)
    proxy_addr: str = ""
    #: live gauges from C_HEARTBEAT
    node_count: int = 0
    workers_alive: int = 0
    rss_kb: float = 0.0
    #: spec name -> placement, in placement order (the shard this child
    #: hosts; sinks-first order is what makes a shard redeploy resolvable)
    placed: dict[str, PlacedNode] = dataclass_field(default_factory=dict)

    @property
    def load(self) -> float:
        """Total declared weight placed under this controller."""
        return sum(p.spec.weight for p in self.placed.values())


class ChildControllerSupervisor(SupervisorCore):
    """Controller-tier frontend of the supervision core.

    Children are ``repro.cluster.child`` processes — or remote joiners
    adopted on their C_JOIN.  The C_* frame family extends the W_* range
    one tier up; see :mod:`repro.cluster.protocol` for the verb table.
    """

    state_class = ControllerState

    def __init__(self, root: "RootController") -> None:
        config = root.config
        super().__init__(
            CONTROLLER_FAMILY,
            ip=config.ip,
            heartbeat_interval=config.heartbeat_interval,
            heartbeat_timeout=config.heartbeat_timeout,
            register_timeout=config.register_timeout,
            request_timeout=config.request_timeout,
            respawn=config.respawn,
            respawn_policy=RespawnPolicy(
                max_consecutive=config.respawn_max,
                backoff_base=config.respawn_backoff,
                backoff_max=config.respawn_backoff_max,
                min_uptime=config.respawn_min_uptime,
            ),
            adopt_unknown=True,
        )
        self.root = root

    # ------------------------------------------------------------------- hooks

    def child_argv(self, state: ChildState) -> list[str]:
        return self.root._child_argv(state.name)

    def child_env(self, state: ChildState) -> dict[str, str]:
        env = os.environ.copy()
        src_root = str(Path(__file__).resolve().parents[2])
        existing_path = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing_path if existing_path else src_root
        )
        return env

    def on_registered(self, state: ChildState, fields: dict) -> None:
        assert isinstance(state, ControllerState)
        self.root._on_join(state, fields)

    def on_heartbeat(self, state: ChildState, fields: dict) -> None:
        assert isinstance(state, ControllerState)
        state.node_count = int(fields.get("nodes", 0))
        state.workers_alive = int(fields.get("workers_alive", 0))
        state.rss_kb = float(fields.get("rss_kb", 0.0))
        self.root._refresh_gauges(state)

    def on_frame(self, state: ChildState, msg: Any) -> None:
        assert isinstance(state, ControllerState)
        if msg.type == MsgType.C_EVENT:
            self.root._on_event(state, msg.fields())

    async def on_child_dead(self, state: ChildState, reason: str) -> list:
        assert isinstance(state, ControllerState)
        self.root._note_controller_dead(state, reason)
        # The shard redeploy is scheduled by the root itself (it must run
        # for adopted children too, which the core never respawns), so
        # nothing is handed to replace_orphans here.
        return []

    def trace(self, event: str, **detail: Any) -> None:
        self.root._trace(event, **detail)


class RootController:
    """Places specs across child controllers, supervises the tree."""

    def __init__(self, observer: Any, config: RootConfig | None = None) -> None:
        self.observer = observer
        self._obs: Any = (
            observer if hasattr(observer, "mark_down") else ObserverControl(observer)
        )
        self.config = config or RootConfig()
        self.policy = make_controller_placement(self.config.placement)
        self.supervisor = ChildControllerSupervisor(self)
        #: spec name -> current placement, across the whole federation
        self.placed: dict[str, PlacedNode] = {}
        self.addr: NodeId | None = None
        #: child name -> declared worker count for local spawns
        self._spawn_workers: dict[str, int] = {}
        #: child name -> the aggregation-proxy port its first incarnation
        #: bound; a respawn is handed it via C_WELCOME so worker proxies
        #: already dialing it reattach instead of restarting
        self._proxy_ports: dict[str, int] = {}
        #: child name -> futures resolved when its ready event arrives
        self._ready_waiters: dict[str, list[asyncio.Future]] = {}
        self._redeploy_tasks: list[asyncio.Task] = []
        self.controller_deaths = 0
        self.shards_redeployed = 0
        self.nodes_redeployed = 0
        tel = self.config.telemetry
        if tel is not None:
            reg = tel.registry
            self._g_controllers = reg.gauge(
                "ioverlay_cluster_controllers",
                "Child controllers ready for placement")
            self._g_ctl_nodes = reg.gauge(
                "ioverlay_cluster_controller_nodes",
                "Nodes hosted per child controller", ("controller",))
            self._g_ctl_workers = reg.gauge(
                "ioverlay_cluster_controller_workers_alive",
                "Live workers per child controller", ("controller",))
            self._c_join = reg.counter(
                "ioverlay_cluster_controller_join_total",
                "Child controllers joined", ("controller",))
            self._c_dead = reg.counter(
                "ioverlay_cluster_controller_dead_total",
                "Child controller deaths confirmed", ("controller",))
            self._c_shard = reg.counter(
                "ioverlay_cluster_shard_redeployed_total",
                "Whole-shard redeploys after a controller death", ("controller",))
            self._c_redeployed = reg.counter(
                "ioverlay_cluster_node_redeployed_total",
                "Nodes re-placed after a failure", ("worker",))
        else:
            self._g_controllers = self._g_ctl_nodes = self._g_ctl_workers = None
            self._c_join = self._c_dead = self._c_shard = self._c_redeployed = None

    # ----------------------------------------------------- supervision facade

    @property
    def controllers(self) -> dict[str, ControllerState]:
        """The child-controller tree as the supervision core tracks it."""
        return self.supervisor.children  # type: ignore[return-value]

    @property
    def controller_count(self) -> int:
        return sum(1 for st in self.controllers.values() if st.alive and st.ready)

    def _trace(self, event: str, **detail: Any) -> None:
        tel = self.config.telemetry
        if tel is not None and tel.tracer.enabled:
            tel.tracer.append_raw(time.monotonic(), "root", event, "", 0, detail)

    def _refresh_gauges(self, state: ControllerState | None = None) -> None:
        if self._g_controllers is not None:
            self._g_controllers.set(self.controller_count)
            if state is not None:
                self._g_ctl_nodes.labels(controller=state.name).set(state.node_count)
                self._g_ctl_workers.labels(controller=state.name).set(
                    state.workers_alive
                )

    # ------------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind the controller-to-controller bootstrap server."""
        await self.supervisor.start_server()
        self.addr = NodeId(self.config.ip, self.supervisor.port)

    async def stop(self) -> None:
        """Drain the tree: C_SHUTDOWN every child, then reap/escalate."""
        for task in self._redeploy_tasks:
            task.cancel()
        self._redeploy_tasks.clear()
        await self.supervisor.stop()

    # ------------------------------------------------------------------- children

    def _child_argv(self, name: str) -> list[str]:
        assert self.addr is not None, "start() first"
        config = self.config
        argv = [
            sys.executable, "-m", "repro.cluster.child",
            "--name", name,
            "--join", str(self.addr),
            "--ip", config.ip,
            "--workers", str(self._spawn_workers.get(name, config.workers_per_child)),
            "--placement", config.child_placement,
            "--heartbeat-interval", str(config.heartbeat_interval),
            "--flush-interval", str(config.observer_flush_interval),
        ]
        if config.worker_telemetry:
            argv += ["--worker-telemetry"]
        if config.shm_ring_bytes > 0:
            argv += ["--shm-ring-bytes", str(config.shm_ring_bytes)]
        if config.uvloop:
            argv += ["--uvloop"]
        return argv

    async def spawn_child(self, name: str, workers: int | None = None) -> ControllerState:
        """Launch one child controller locally and wait until it is ready."""
        if workers is not None:
            self._spawn_workers[name] = workers
        state = await self.supervisor.spawn_child(name)
        assert isinstance(state, ControllerState)
        await self.wait_ready(name)
        return state

    async def wait_ready(
        self, name: str, timeout: float | None = None
    ) -> ControllerState:
        """Wait for ``name``'s fleet to finish booting (ready event)."""
        state = self.controllers.get(name)
        if state is not None and state.ready and state.alive:
            return state
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._ready_waiters.setdefault(name, []).append(future)
        try:
            await asyncio.wait_for(future, timeout or self.config.register_timeout)
        except asyncio.TimeoutError:
            raise ClusterError(
                f"child controller {name!r} did not become ready"
            ) from None
        state = self.controllers[name]
        assert isinstance(state, ControllerState)
        return state

    async def wait_joined(self, count: int, timeout: float = 60.0) -> None:
        """Wait until ``count`` child controllers are ready (remote joins)."""
        deadline = time.monotonic() + timeout
        while self.controller_count < count:
            if time.monotonic() > deadline:
                raise ClusterError(
                    f"only {self.controller_count}/{count} controllers ready "
                    f"after {timeout}s"
                )
            await asyncio.sleep(0.05)

    # ------------------------------------------------- bootstrap handshake

    def _on_join(self, state: ControllerState, fields: dict) -> None:
        """A C_JOIN arrived: record declarations, answer with C_WELCOME."""
        state.workers = int(fields.get("workers", 0))
        state.capacity = float(fields.get("capacity", 0.0))
        state.weight = float(fields.get("weight", 1.0))
        state.ready = False
        if self._c_join is not None:
            self._c_join.labels(controller=state.name).inc()
        self._trace(
            EventType.CONTROLLER_JOIN, controller=state.name, pid=state.pid,
            workers=state.workers, capacity=state.capacity, weight=state.weight,
        )
        welcome = {
            "observer": str(self._obs.addr),
            "proxy_port": self._proxy_ports.get(state.name, 0),
        }
        chan = state.chan
        if chan is not None:
            asyncio.ensure_future(chan.send(MsgType.C_WELCOME, **welcome))

    def _on_event(self, state: ControllerState, fields: dict) -> None:
        """An upward C_EVENT: ready / node-down / node-replaced."""
        event = str(fields.get("event", ""))
        if event == "ready":
            state.ready = True
            state.proxy_addr = str(fields.get("proxy", ""))
            if state.proxy_addr:
                try:
                    self._proxy_ports.setdefault(
                        state.name, NodeId.parse(state.proxy_addr).port
                    )
                except CodecError:
                    pass
            self._refresh_gauges(state)
            for future in self._ready_waiters.pop(state.name, []):
                if not future.done():
                    future.set_result(state)
        elif event == "node-down":
            name = str(fields.get("name", ""))
            if not name:
                # A report carrying only the identity: match it against
                # the shard map so the loss still reconciles.
                node = str(fields.get("node", ""))
                name = next(
                    (n for n, p in state.placed.items()
                     if str(p.node_id) == node),
                    "",
                )
            placed = self.placed.pop(name, None)
            state.placed.pop(name, None)
            if placed is not None:
                self._obs.mark_down(placed.node_id)
        elif event == "node-replaced":
            # The child respawned a worker internally and re-placed the
            # spec: refresh the root's map so refs and control verbs
            # target the new identity.
            name = str(fields.get("name", ""))
            stale = self.placed.get(name)
            if stale is None:
                return
            try:
                node_id = NodeId.parse(str(fields.get("node", "")))
            except CodecError:
                return
            fresh = PlacedNode(
                spec=stale.spec, worker=str(fields.get("worker", "")),
                node_id=node_id, controller=state.name,
            )
            self.placed[name] = fresh
            state.placed[name] = fresh
            self.nodes_redeployed += 1
            if self._c_redeployed is not None:
                self._c_redeployed.labels(worker=fresh.worker).inc()

    # ------------------------------------------------------------------ placement

    def _choose_controller(self, spec: NodeSpec, *, relax_pin: bool = False) -> str:
        fleet = {
            name: ControllerLoad(load=st.load, capacity=st.capacity, weight=st.weight)
            for name, st in self.controllers.items()
            if st.alive and st.ready
        }
        if spec.controller is not None:
            if spec.controller in fleet:
                return spec.controller
            if not relax_pin:
                raise ClusterError(
                    f"spec {spec.name!r} pins controller {spec.controller!r}, "
                    "which is not ready"
                )
        return self.policy.choose(spec, fleet)

    async def place(self, spec: NodeSpec, *, redeploy: bool = False) -> PlacedNode:
        """Two-stage placement: pick a child controller, ship the spec.

        References are resolved here against the *global* placed map, so
        an edge may point at a node under any other controller; the
        already-resolved wire form passes through the child's own
        reference resolution untouched.
        """
        if spec.name in self.placed:
            raise ClusterError(f"node {spec.name!r} is already placed")
        controller = self._choose_controller(spec, relax_pin=redeploy)
        state = self.controllers[controller]
        wire_kwargs = resolve_refs(
            spec.kwargs, lambda name: self.placed[name].node_id
        )
        reply = await self.supervisor.request(
            state, MsgType.C_PLACE,
            name=spec.name, algorithm=spec.algorithm, kwargs=wire_kwargs,
            weight=spec.weight, pin=spec.pin,
        )
        node_id = NodeId.parse(str(reply["node"]))
        placed = PlacedNode(
            spec=spec, worker=str(reply.get("worker", "")),
            node_id=node_id, controller=controller,
        )
        state.placed[spec.name] = placed
        self.placed[spec.name] = placed
        if redeploy:
            self.nodes_redeployed += 1
            if self._c_redeployed is not None:
                self._c_redeployed.labels(worker=placed.worker).inc()
        return placed

    async def deploy(self, specs: Iterable[NodeSpec]) -> dict[str, PlacedNode]:
        """Place a whole topology (specs ordered sinks-first)."""
        return {spec.name: await self.place(spec) for spec in specs}

    async def stop_node(self, name: str) -> None:
        placed = self._lookup(name)
        state = self.controllers[placed.controller]
        await self.supervisor.request(state, MsgType.C_STOP_NODE, name=name)
        state.placed.pop(name, None)
        self.placed.pop(name, None)
        self._obs.mark_down(placed.node_id)

    async def node_info(self, name: str) -> dict:
        placed = self._lookup(name)
        return await self.supervisor.request(
            self.controllers[placed.controller], MsgType.C_NODE_INFO, name=name
        )

    def _lookup(self, name: str) -> PlacedNode:
        try:
            return self.placed[name]
        except KeyError:
            raise ClusterError(f"no placed node named {name!r}") from None

    def node_id(self, name: str) -> NodeId:
        return self._lookup(name).node_id

    # ---------------------------------------------- observer-driven deployment

    def deploy_source(self, name: str, app: AppId, payload_size: int = 5120) -> None:
        """Start a paced source on a placed node, wherever it lives."""
        self._obs.deploy_source(self.node_id(name), app, payload_size)

    def send_control(
        self, name: str, type_: int, param1: int = 0, param2: int = 0, app: AppId = 0
    ) -> None:
        self._obs.send_control(
            self.node_id(name), type_, param1=param1, param2=param2, app=app
        )

    def terminate_node(self, name: str) -> None:
        self._obs.terminate_node(self.node_id(name))

    # --------------------------------------------------------- the third tier

    def _note_controller_dead(self, state: ControllerState, reason: str) -> None:
        """A whole child controller died: down its shard, then re-place it."""
        state.ready = False
        orphans = list(state.placed.values())
        state.placed.clear()
        for placed in orphans:
            self.placed.pop(placed.spec.name, None)
            self._obs.mark_down(placed.node_id)
        self.controller_deaths += 1
        if self._c_dead is not None:
            self._c_dead.labels(controller=state.name).inc()
        self._refresh_gauges()
        self._trace(
            EventType.CONTROLLER_DEAD, controller=state.name, reason=reason,
            shard=[p.spec.name for p in orphans],
        )
        if orphans and self.supervisor.running:
            self._redeploy_tasks.append(
                asyncio.ensure_future(self._redeploy_shard(state.name, orphans))
            )

    async def _redeploy_shard(self, dead: str, orphans: list[PlacedNode]) -> None:
        """Re-place a dead controller's whole shard through the root policy.

        Orphans are replayed in their original (sinks-first) placement
        order, so every reference a spec carries is already re-placed by
        the time the spec itself is.  A pin to the dead controller is
        relaxed — landing the node elsewhere beats failing the redeploy.
        """
        try:
            await self.wait_joined(1, timeout=self.config.register_timeout)
        except ClusterError:
            return
        redeployed = []
        for orphan in orphans:
            # Refs must resolve against *new* identities, so strip the
            # stale wire form by re-placing from the original spec.
            try:
                placed = await self.place(orphan.spec, redeploy=True)
            except ClusterError:
                continue
            redeployed.append(placed.spec.name)
        self.shards_redeployed += 1
        if self._c_shard is not None:
            self._c_shard.labels(controller=dead).inc()
        self._trace(
            EventType.SHARD_REDEPLOYED, controller=dead,
            nodes=redeployed, lost=[p.spec.name for p in orphans],
        )
