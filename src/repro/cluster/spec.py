"""Deployment specs: what to place, where it may go, how heavy it is.

A :class:`NodeSpec` describes one overlay node independently of the
worker it lands on: the algorithm as an importable ``module:Class``
path, JSON-able constructor kwargs, a declared *weight* for bin-packing
and an optional *pin* to a named worker.  Node identities are only known
after placement (every node binds an ephemeral port), so specs refer to
other nodes symbolically: a kwarg value ``"@sink"`` names the spec
called ``sink``.  The controller substitutes the placed identity before
shipping the spec (:func:`resolve_refs`) and the worker coerces the wire
form back to :class:`~repro.core.ids.NodeId` objects at construction
time (:func:`coerce_node_refs`).

Topologies are therefore built in reverse topological order — sinks
first — so every ``"@name"`` a spec mentions is already placed when the
spec itself is.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.ids import NodeId
from repro.errors import ClusterError

#: wire prefix marking a string kwarg as a placed node identity
NODE_REF_PREFIX = "noderef:"


def ref(name: str) -> str:
    """Symbolic reference to the node spec called ``name``."""
    return f"@{name}"


@dataclass
class NodeSpec:
    """One overlay node, described independently of its placement."""

    name: str
    #: importable algorithm class, ``"package.module:ClassName"``
    algorithm: str
    #: JSON-able constructor kwargs; string values ``"@name"`` (also
    #: inside lists) are placement-time references to other specs
    kwargs: dict[str, Any] = field(default_factory=dict)
    #: declared load for bin-packing (e.g. a coding node > a relay)
    weight: float = 1.0
    #: worker name this node must land on (overrides the policy)
    pin: str | None = None
    #: in a federated deployment: child-controller name this node must
    #: land under (first placement stage; ``pin`` then still applies to
    #: that controller's own worker choice)
    controller: str | None = None


@dataclass
class ControllerSpec:
    """One child controller of a federated deployment, as the root sees it.

    ``capacity`` declares how much total spec weight the controller's
    fleet is sized for, ``weight`` scales its share under weighted
    placement (a beefier machine takes proportionally more load).
    """

    name: str
    workers: int = 2
    capacity: float = 0.0
    weight: float = 1.0


@dataclass
class PlacedNode:
    """A spec bound to a worker and a final node identity."""

    spec: NodeSpec
    worker: str
    node_id: NodeId
    #: child controller hosting the worker ("" outside federation)
    controller: str = ""


def resolve_refs(kwargs: dict[str, Any], lookup: Callable[[str], NodeId]) -> dict[str, Any]:
    """Substitute every ``"@name"`` reference with its placed identity.

    ``lookup`` maps a spec name to the placed :class:`NodeId`; unknown
    names raise :class:`~repro.errors.ClusterError` (the topology was
    not built sinks-first).  Returns a new dict in wire form — node
    identities appear as ``"noderef:ip:port"`` strings.
    """

    def resolve(value: Any) -> Any:
        if isinstance(value, str) and value.startswith("@"):
            try:
                node = lookup(value[1:])
            except KeyError:
                raise ClusterError(
                    f"spec references {value!r} which is not placed yet "
                    "(build topologies sinks-first)"
                ) from None
            return f"{NODE_REF_PREFIX}{node}"
        if isinstance(value, list):
            return [resolve(item) for item in value]
        if isinstance(value, dict):
            # Keys stay verbatim (they are commodity ids / plain names);
            # only values may reference placed nodes.
            return {key: resolve(item) for key, item in value.items()}
        return value

    return {key: resolve(value) for key, value in kwargs.items()}


def coerce_node_refs(value: Any) -> Any:
    """Turn wire-form ``"noderef:ip:port"`` strings back into NodeIds."""
    if isinstance(value, str) and value.startswith(NODE_REF_PREFIX):
        return NodeId.parse(value[len(NODE_REF_PREFIX):])
    if isinstance(value, list):
        return [coerce_node_refs(item) for item in value]
    if isinstance(value, dict):
        return {key: coerce_node_refs(item) for key, item in value.items()}
    return value


def load_algorithm_class(path: str) -> type:
    """Import ``"package.module:ClassName"`` and return the class."""
    module_name, sep, class_name = path.partition(":")
    if not sep:
        raise ClusterError(f"algorithm path must be 'module:Class', got {path!r}")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ClusterError(f"cannot import algorithm module {module_name!r}: {exc}") from exc
    try:
        cls = getattr(module, class_name)
    except AttributeError:
        raise ClusterError(f"{module_name!r} has no class {class_name!r}") from None
    return cls


def build_algorithm(path: str, wire_kwargs: dict[str, Any]) -> Any:
    """Instantiate a spec's algorithm from its wire-form kwargs."""
    cls = load_algorithm_class(path)
    kwargs = {key: coerce_node_refs(value) for key, value in wire_kwargs.items()}
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ClusterError(f"cannot construct {path}: {exc}") from exc
