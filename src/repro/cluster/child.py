"""The child-controller process: one fleet shard of a federated cluster.

``python -m repro.cluster.child --join IP:PORT`` runs a full
:class:`~repro.cluster.controller.ClusterController` — worker fleet,
placement, supervision, respawn — that answers to a federation root
instead of owning the observer:

- **bootstrap**: dial the root, send ``C_JOIN`` (name, pid, declared
  worker count / capacity / weight), wait for ``C_WELCOME`` — it names
  the root observer endpoint this shard aggregates into and, on a
  respawn, the proxy port to re-bind — then boot the shard's
  aggregation proxy and worker fleet and report ``C_EVENT ready``;
- **serving**: ``C_PLACE`` / ``C_STOP_NODE`` / ``C_NODE_INFO`` /
  ``C_SHUTDOWN`` map onto the local controller's place/stop/info/stop
  verbs; each request is served in its own task so a slow worker spawn
  never stalls the heartbeat stream;
- **reporting**: periodic ``C_HEARTBEAT`` frames carry shard gauges
  (placed nodes, live workers, peak RSS); internal worker respawns
  surface as ``C_EVENT node-replaced`` so the root's global map tracks
  the new identities, and node losses as ``C_EVENT node-down``;
- **observer relay**: the local controller's observer surface is a
  :class:`RootRelayObserver` — its ``addr`` is the shard's aggregation
  proxy (workers attach there, the proxy attaches to the root observer)
  and its ``mark_down`` reports upward instead of acting locally, so
  the root observer stays the single source of liveness truth.

Root disappearance stops the shard: a headless child controller would
keep placing nobody's specs against nobody's observer.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import resource
import sys

from repro.cluster.controller import ClusterConfig, ClusterController
from repro.cluster.protocol import ControlChannel
from repro.cluster.spec import NodeSpec, PlacedNode
from repro.core.ids import AppId, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.errors import ClusterError
from repro.net.proxy import ObserverProxy
from repro.tools.signals import install_shutdown_handlers


class RootRelayObserver:
    """The observer surface a federated shard hands its controller.

    ``addr`` points worker proxies at the shard's aggregation proxy;
    liveness changes relay upward as ``C_EVENT`` frames.  The control
    verbs (deploy/control/terminate) are root-driven in a federation —
    reaching them here means a scenario bypassed the root, so they fail
    loudly instead of acting on half the picture.
    """

    def __init__(self, host: "ChildControllerHost") -> None:
        self._host = host

    @property
    def addr(self) -> NodeId:
        assert self._host.proxy is not None, "proxy not started"
        return self._host.proxy.addr

    def mark_down(self, node: NodeId) -> None:
        # The root keys its global placed map by spec name; resolve it
        # here (the local controller has already popped its own map by
        # the time mark_down fires) and carry the identity alongside.
        self._host.send_event(
            "node-down", name=self._host.node_name(node), node=str(node)
        )

    def deploy_source(self, node: NodeId, app: AppId, payload_size: int) -> None:
        raise ClusterError("deploy_source is root-driven in a federation")

    def send_control(self, node: NodeId, type_: int, *, param1: int,
                     param2: int, app: AppId) -> None:
        raise ClusterError("send_control is root-driven in a federation")

    def terminate_node(self, node: NodeId) -> None:
        raise ClusterError("terminate_node is root-driven in a federation")


class ChildControllerHost:
    """One federated shard: aggregation proxy + controller + root channel."""

    def __init__(
        self,
        name: str,
        root_addr: NodeId,
        config: ClusterConfig,
        capacity: float = 0.0,
        weight: float = 1.0,
        flush_interval: float = 0.2,
    ) -> None:
        self.name = name
        self.root_addr = root_addr
        self.config = config
        self.capacity = capacity
        self.weight = weight
        #: the shard proxy always aggregates: it is a mid-tree node of
        #: the root's observer tree (one ingress per child controller)
        self.flush_interval = flush_interval
        self.proxy: ObserverProxy | None = None
        self.controller: ClusterController | None = None
        self._chan: ControlChannel | None = None
        self._tasks: list[asyncio.Task] = []
        #: in-flight root-frame handlers; done handlers drop out, so a
        #: long-lived shard does not accumulate one task per C_PLACE
        self._handlers: set[asyncio.Task] = set()
        #: node identity (ip:port) -> spec name, for upward node-down
        #: reports after the controller has forgotten the placement
        self._node_names: dict[str, str] = {}
        self._running = False
        self.stopped = asyncio.Event()
        self.heartbeats_sent = 0

    # ------------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Join the root, boot the shard, report ready."""
        self._running = True
        reader, writer = await asyncio.open_connection(
            self.root_addr.ip, self.root_addr.port
        )
        self._chan = ControlChannel(reader, writer)
        await self._chan.send(
            MsgType.C_JOIN, name=self.name, pid=os.getpid(),
            workers=self.config.workers, capacity=self.capacity,
            weight=self.weight,
        )
        welcome = await asyncio.wait_for(self._chan.recv(), 30.0)
        if welcome.type != MsgType.C_WELCOME:
            raise ClusterError(
                f"expected C_WELCOME from root, got type {welcome.type}"
            )
        fields = welcome.fields()
        root_observer = NodeId.parse(str(fields["observer"]))
        pinned_port = int(fields.get("proxy_port", 0))
        self.proxy = ObserverProxy(
            NodeId(self.config.ip, pinned_port), root_observer,
            flush_interval=self.flush_interval, telemetry=self.config.telemetry,
        )
        await self.proxy.start()
        self.config.controller_name = self.name
        self.controller = ClusterController(RootRelayObserver(self), self.config)
        self.controller.redeploy_listener = self._on_local_redeploy
        await self.controller.start()
        self._tasks.append(asyncio.ensure_future(self._serve()))
        self._tasks.append(asyncio.ensure_future(self._heartbeat_loop()))
        self.send_event("ready", proxy=str(self.proxy.addr))

    async def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        controller, proxy, chan = self.controller, self.proxy, self._chan
        if controller is not None:
            await controller.stop()
        if proxy is not None:
            await proxy.stop()
        if chan is not None:
            chan.close()
        current = asyncio.current_task()
        for task in [*self._tasks, *self._handlers]:
            if task is not current:
                task.cancel()
        self.stopped.set()

    # ---------------------------------------------------------------- reporting

    def send_event(self, event: str, **fields: object) -> None:
        """Best-effort upward C_EVENT (ready / node-down / node-replaced)."""
        chan = self._chan
        if chan is None or chan.is_closing():
            return

        async def _send() -> None:
            try:
                await chan.send(MsgType.C_EVENT, event=event, **fields)
            except (ConnectionError, OSError):
                pass

        asyncio.ensure_future(_send())

    def _on_local_redeploy(self, name: str, placed: PlacedNode) -> None:
        self._node_names[str(placed.node_id)] = name
        self.send_event(
            "node-replaced", name=name, node=str(placed.node_id),
            worker=placed.worker,
        )

    def node_name(self, node: NodeId) -> str:
        """The spec name placed at ``node`` (empty if unknown here)."""
        return self._node_names.get(str(node), "")

    # ------------------------------------------------------------- root channel

    async def _serve(self) -> None:
        assert self._chan is not None
        while self._running:
            try:
                msg = await self._chan.recv()
            except asyncio.CancelledError:
                raise
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                # The root is gone; a headless shard is useless.
                asyncio.ensure_future(self.stop())
                return
            # Served concurrently: a C_PLACE spans a worker-side spawn
            # round trip, and heartbeats must keep flowing meanwhile.
            task = asyncio.ensure_future(self._handle(msg))
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)

    async def _handle(self, msg: Message) -> None:
        assert self._chan is not None and self.controller is not None
        fields = msg.fields()
        try:
            if msg.type == MsgType.C_PLACE:
                spec = NodeSpec(
                    name=str(fields["name"]),
                    algorithm=str(fields["algorithm"]),
                    kwargs=dict(fields.get("kwargs", {})),
                    weight=float(fields.get("weight", 1.0)),
                    pin=fields.get("pin") or None,
                )
                placed = await self.controller.place(spec)
                self._node_names[str(placed.node_id)] = spec.name
                await self._chan.send(
                    MsgType.C_PLACED, seq=msg.seq, name=spec.name,
                    node=str(placed.node_id), worker=placed.worker,
                )
            elif msg.type == MsgType.C_STOP_NODE:
                name = str(fields["name"])
                stopped = self.controller.placed.get(name)
                await self.controller.stop_node(name)
                if stopped is not None:
                    self._node_names.pop(str(stopped.node_id), None)
                await self._chan.send(MsgType.C_INFO_REPLY, seq=msg.seq, ok=True)
            elif msg.type == MsgType.C_NODE_INFO:
                info = await self.controller.node_info(str(fields["name"]))
                await self._chan.send(MsgType.C_INFO_REPLY, seq=msg.seq, **info)
            elif msg.type == MsgType.C_SHUTDOWN:
                try:
                    await self._chan.send(MsgType.C_INFO_REPLY, seq=msg.seq, ok=True)
                except (ConnectionError, OSError):
                    pass
                asyncio.ensure_future(self.stop())
            # unknown verbs are ignored, matching the worker's dispatcher
        except (ClusterError, KeyError, ValueError) as exc:
            reply = (
                MsgType.C_PLACED if msg.type == MsgType.C_PLACE
                else MsgType.C_INFO_REPLY
            )
            try:
                await self._chan.send(
                    reply, seq=msg.seq, error=f"{type(exc).__name__}: {exc}"
                )
            except (ConnectionError, OSError):
                pass

    # ---------------------------------------------------------------- heartbeats

    async def _heartbeat_loop(self) -> None:
        assert self._chan is not None
        while self._running:
            await asyncio.sleep(self.config.heartbeat_interval)
            controller = self.controller
            if controller is None:
                continue
            workers_alive = sum(
                1 for st in controller.workers.values() if st.alive
            )
            rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            try:
                await self._chan.send(
                    MsgType.C_HEARTBEAT, name=self.name,
                    nodes=len(controller.placed), workers_alive=workers_alive,
                    rss_kb=rss_kb,
                )
            except (ConnectionError, OSError):
                return
            self.heartbeats_sent += 1


# ----------------------------------------------------------------- entry point


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.child",
        description="One federated child controller (joins a root).",
    )
    parser.add_argument("--name", required=True, help="controller name in the tree")
    parser.add_argument("--join", required=True, metavar="IP:PORT",
                        help="root controller bootstrap endpoint")
    parser.add_argument("--ip", default="127.0.0.1")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker fleet size of this shard")
    parser.add_argument("--placement", default="round-robin",
                        help="stage-two policy across this shard's workers")
    parser.add_argument("--capacity", type=float, default=0.0,
                        help="declared fleet capacity (total spec weight; "
                             "0 = unbounded) for root-side placement")
    parser.add_argument("--weight", type=float, default=1.0,
                        help="share scaling under the root's weighted policy")
    parser.add_argument("--heartbeat-interval", type=float, default=0.5)
    parser.add_argument("--flush-interval", type=float, default=0.2,
                        help="aggregation flush period for this shard's proxy "
                             "and its workers' proxies")
    parser.add_argument("--respawn", action="store_true",
                        help="respawn this shard's workers when they die")
    parser.add_argument("--worker-telemetry", action="store_true",
                        help="enable metrics + tracing inside the workers")
    parser.add_argument("--shm-ring-bytes", type=int, default=1 << 20,
                        help="shared-memory ring capacity for co-machine "
                             "worker links (0 disables)")
    parser.add_argument("--uvloop", action="store_true")
    return parser


async def _amain(args: argparse.Namespace) -> int:
    config = ClusterConfig(
        workers=args.workers,
        placement=args.placement,
        ip=args.ip,
        heartbeat_interval=args.heartbeat_interval,
        respawn=args.respawn,
        observer_flush_interval=args.flush_interval,
        worker_telemetry=args.worker_telemetry,
        shm_ring_bytes=args.shm_ring_bytes,
        uvloop=args.uvloop,
        controller_name=args.name,
    )
    host = ChildControllerHost(
        name=args.name,
        root_addr=NodeId.parse(args.join),
        config=config,
        capacity=args.capacity,
        weight=args.weight,
        flush_interval=args.flush_interval,
    )
    stop = asyncio.Event()
    install_shutdown_handlers(stop)
    await host.start()
    signal_task = asyncio.ensure_future(stop.wait())
    stopped_task = asyncio.ensure_future(host.stopped.wait())
    await asyncio.wait({signal_task, stopped_task}, return_when=asyncio.FIRST_COMPLETED)
    await host.stop()
    for task in (signal_task, stopped_task):
        task.cancel()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
