"""The worker process: one event loop hosting a shard of the overlay.

A :class:`WorkerHost` is what runs inside every fleet process (``python
-m repro.cluster.worker``):

- a :class:`~repro.net.virtual.VirtualHost` carrying this worker's
  share of the nodes (co-hosted traffic stays on the zero-copy
  loopback; cross-worker traffic uses ordinary sockets),
- an :class:`~repro.net.proxy.ObserverProxy` funnelling every hosted
  node's observer link into the *one* upstream connection the observer
  sees per worker,
- one control channel to the controller: ``W_REGISTER`` on connect,
  then ``W_SPAWN``/``W_STOP_NODE``/``W_NODE_INFO``/``W_SHUTDOWN``
  served in arrival order, plus periodic ``W_HEARTBEAT`` frames
  carrying process gauges (peak RSS, event-loop lag, node count).

Shutdown — whether by ``W_SHUTDOWN``, controller disappearance, SIGTERM
or SIGINT — runs the engines' deliberate ``disconnect`` path for every
live link before stopping, so surviving peers read a clean EOF instead
of a mid-frame reset.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import resource
import sys

from repro.cluster.protocol import ControlChannel
from repro.cluster.spec import build_algorithm
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.errors import ClusterError
from repro.net.proxy import ObserverProxy
from repro.net.virtual import VirtualHost
from repro.tools.signals import install_shutdown_handlers


class WorkerHost:
    """One fleet process: virtual host + observer funnel + control channel."""

    def __init__(
        self,
        name: str,
        controller_addr: NodeId,
        observer_addr: NodeId,
        ip: str = "127.0.0.1",
        heartbeat_interval: float = 0.5,
        flush_interval: float | None = None,
        telemetry_enabled: bool = False,
        trace_sample: int = 1,
        shm_ring_bytes: int = 0,
        loop_impl: str = "asyncio",
        proxy_port: int = 0,
        controller_name: str = "",
        exit_after_register: bool = False,
    ) -> None:
        self.name = name
        #: identity of the controller shard this worker belongs to; rides
        #: every registration and heartbeat so federated telemetry can
        #: attribute process gauges to their child controller
        self.controller_name = controller_name
        #: test hook: die immediately after a successful W_REGISTER (the
        #: respawn-budget regression needs a worker that crash-loops on
        #: boot while still passing the registration handshake)
        self.exit_after_register = exit_after_register
        self.controller_addr = controller_addr
        self.observer_addr = observer_addr
        self.ip = ip
        self.heartbeat_interval = heartbeat_interval
        #: with a flush interval the proxy runs in aggregation mode: it
        #: absorbs and pre-reduces observer traffic, making this worker a
        #: node of the observer tree instead of a transparent funnel
        self.flush_interval = flush_interval
        self.telemetry_enabled = telemetry_enabled
        self.trace_sample = trace_sample
        #: ring capacity for the shared-memory fast path between co-machine
        #: workers (0 = plain TCP); see :mod:`repro.net.shm`
        self.shm_ring_bytes = shm_ring_bytes
        #: event-loop implementation this process runs ("asyncio"/"uvloop"),
        #: reported in the registration so benchmarks can attribute results
        self.loop_impl = loop_impl
        #: bind the observer proxy to this exact port (0 = ephemeral).  A
        #: respawned worker is handed its predecessor's port so children
        #: of a mid-tree aggregator redial the same endpoint instead of
        #: needing a cascading restart.
        self.proxy_port = proxy_port
        self.telemetry = None
        self.proxy: ObserverProxy | None = None
        self.host: VirtualHost | None = None
        self._chan: ControlChannel | None = None
        self._engines: dict[str, object] = {}  # spec name -> AsyncioEngine
        self._tasks: list[asyncio.Task] = []
        self._running = False
        #: set once the worker has fully stopped (main() waits on this)
        self.stopped = asyncio.Event()
        self.heartbeats_sent = 0

    # ------------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        self._running = True
        if self.telemetry_enabled:
            from repro.telemetry import Telemetry

            self.telemetry = Telemetry(trace_sample=self.trace_sample)
        self.proxy = ObserverProxy(
            NodeId(self.ip, self.proxy_port), self.observer_addr,
            flush_interval=self.flush_interval, telemetry=self.telemetry,
        )
        await self.proxy.start()
        self.host = VirtualHost(observer_addr=self.proxy.addr, ip=self.ip)
        reader, writer = await asyncio.open_connection(
            self.controller_addr.ip, self.controller_addr.port
        )
        self._chan = ControlChannel(reader, writer)
        # The proxy address rides the registration: in tree mode the
        # controller points later workers' upstreams at it.
        await self._chan.send(
            MsgType.W_REGISTER, name=self.name, pid=os.getpid(),
            proxy=str(self.proxy.addr), loop=self.loop_impl,
            controller=self.controller_name,
        )
        if self.exit_after_register:
            # Crash-on-boot test hook: vanish without a graceful drain.
            os._exit(17)
        self._tasks.append(asyncio.ensure_future(self._serve()))
        self._tasks.append(asyncio.ensure_future(self._heartbeat_loop()))

    async def stop(self) -> None:
        """Graceful drain: deliberate disconnects, then teardown."""
        if not self._running:
            return
        self._running = False
        host, proxy, chan = self.host, self.proxy, self._chan
        if host is not None:
            # The engines' graceful path: peers observe a clean close and
            # run their own teardown; no BROKEN_LINK is raised locally.
            for engine in host.nodes:
                for dest in engine.downstreams():
                    engine.disconnect(dest)
            await host.stop()
        if proxy is not None:
            await proxy.stop()
        if chan is not None:
            chan.close()
        current = asyncio.current_task()
        for task in self._tasks:
            if task is not current:
                task.cancel()
        self.stopped.set()

    # ------------------------------------------------------------- control channel

    async def _serve(self) -> None:
        assert self._chan is not None
        while self._running:
            try:
                msg = await self._chan.recv()
            except asyncio.CancelledError:
                raise
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                # The controller is gone; a headless worker is useless.
                asyncio.ensure_future(self.stop())
                return
            await self._handle(msg)

    async def _handle(self, msg: Message) -> None:
        assert self._chan is not None
        fields = msg.fields()
        if msg.type == MsgType.W_SPAWN:
            await self._spawn(msg.seq, fields)
        elif msg.type == MsgType.W_STOP_NODE:
            await self._stop_node(msg.seq, fields)
        elif msg.type == MsgType.W_NODE_INFO:
            await self._node_info(msg.seq, fields)
        elif msg.type == MsgType.W_SHUTDOWN:
            try:
                await self._chan.send(MsgType.W_NODE_INFO_REPLY, seq=msg.seq, ok=True)
            except (ConnectionError, OSError):
                pass
            asyncio.ensure_future(self.stop())
        # unknown verbs are ignored, like the observer ignores unknown types

    async def _spawn(self, seq: int, fields: dict) -> None:
        assert self._chan is not None and self.host is not None
        name = str(fields.get("name", ""))
        try:
            if name in self._engines:
                raise ClusterError(f"node {name!r} already hosted here")
            algorithm = build_algorithm(
                str(fields["algorithm"]), dict(fields.get("kwargs", {}))
            )
            from repro.net.engine import NetEngineConfig

            # All co-hosted nodes share the worker's telemetry (one
            # registry/tracer per process is what the aggregating proxy
            # flushes upward) and the worker's shm-ring policy: dials to
            # nodes on sibling co-machine workers negotiate shared-memory
            # channels, dials landing co-hosted stay on loopback.
            config = NetEngineConfig(
                telemetry=self.telemetry, shm_ring_bytes=self.shm_ring_bytes
            )
            engine = self.host.add_node(algorithm, config=config)
            await self.host.start_node(engine)
            self._engines[name] = engine
        except Exception as exc:  # reported, never fatal to the worker
            await self._chan.send(
                MsgType.W_SPAWNED, seq=seq, name=name,
                error=f"{type(exc).__name__}: {exc}",
            )
            return
        await self._chan.send(
            MsgType.W_SPAWNED, seq=seq, name=name, node=str(engine.node_id)
        )

    async def _stop_node(self, seq: int, fields: dict) -> None:
        assert self._chan is not None and self.host is not None
        name = str(fields.get("name", ""))
        engine = self._engines.pop(name, None)
        if engine is None:
            await self._chan.send(
                MsgType.W_NODE_INFO_REPLY, seq=seq, name=name,
                error=f"no node {name!r} hosted here",
            )
            return
        await self.host.stop_node(engine)
        await self._chan.send(MsgType.W_NODE_INFO_REPLY, seq=seq, name=name, ok=True)

    async def _node_info(self, seq: int, fields: dict) -> None:
        assert self._chan is not None
        name = str(fields.get("name", ""))
        engine = self._engines.get(name)
        if engine is None:
            await self._chan.send(
                MsgType.W_NODE_INFO_REPLY, seq=seq, name=name,
                error=f"no node {name!r} hosted here",
            )
            return
        algorithm = engine.algorithm
        # Duck-typed scenario hook: algorithms may expose application
        # facts (digests, counters) for cross-process verification.
        info_hook = getattr(algorithm, "cluster_info", None)
        await self._chan.send(
            MsgType.W_NODE_INFO_REPLY, seq=seq, name=name,
            node=str(engine.node_id),
            running=engine.running,
            algorithm=type(algorithm).__name__,
            downstreams=[str(peer) for peer in engine.downstreams()],
            transports=engine.transport_mix(),
            info=info_hook() if callable(info_hook) else {},
        )

    # ---------------------------------------------------------------- heartbeats

    async def _heartbeat_loop(self) -> None:
        assert self._chan is not None
        loop = asyncio.get_running_loop()
        while self._running:
            before = loop.time()
            await asyncio.sleep(self.heartbeat_interval)
            # How late the sleep woke up is a direct measure of event-loop
            # saturation on this worker — the controller's gauges surface
            # it so overload shows up before throughput collapses.
            lag_ms = max(0.0, (loop.time() - before - self.heartbeat_interval) * 1000)
            rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            try:
                await self._chan.send(
                    MsgType.W_HEARTBEAT, name=self.name,
                    nodes=len(self._engines), rss_kb=rss_kb,
                    loop_lag_ms=round(lag_ms, 3),
                    controller=self.controller_name,
                )
            except (ConnectionError, OSError):
                return
            self.heartbeats_sent += 1


# ----------------------------------------------------------------- entry point


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.worker",
        description="One cluster worker process (spawned by the controller).",
    )
    parser.add_argument("--name", required=True, help="worker name in the fleet")
    parser.add_argument("--controller", required=True, metavar="IP:PORT",
                        help="controller control-channel endpoint")
    parser.add_argument("--observer", required=True, metavar="IP:PORT",
                        help="upstream observer endpoint")
    parser.add_argument("--ip", default="127.0.0.1",
                        help="bind address for hosted nodes and the proxy")
    parser.add_argument("--heartbeat-interval", type=float, default=0.5)
    parser.add_argument("--flush-interval", type=float, default=None,
                        help="run the observer proxy as an aggregating tree "
                             "node flushing roll-ups at this interval")
    parser.add_argument("--telemetry", action="store_true",
                        help="enable metrics + lifecycle tracing for hosted nodes")
    parser.add_argument("--trace-sample", type=int, default=1,
                        help="head-sample lifecycle traces: record messages "
                             "with seq %% N == 0")
    parser.add_argument("--shm-ring-bytes", type=int, default=0,
                        help="per-direction shared-memory ring capacity for "
                             "links to co-machine peers (0 disables)")
    parser.add_argument("--uvloop", action="store_true",
                        help="run on uvloop when importable (falls back to "
                             "stock asyncio otherwise)")
    parser.add_argument("--proxy-port", type=int, default=0,
                        help="bind the observer proxy to this exact port "
                             "(a respawn reuses its predecessor's port so "
                             "downstream proxies can redial)")
    parser.add_argument("--controller-name", default="",
                        help="federated controller shard this worker belongs "
                             "to (stamped on registrations and heartbeats)")
    parser.add_argument("--exit-after-register", action="store_true",
                        help=argparse.SUPPRESS)  # crash-on-boot test hook
    return parser


async def _amain(args: argparse.Namespace, loop_impl: str) -> int:
    worker = WorkerHost(
        name=args.name,
        controller_addr=NodeId.parse(args.controller),
        observer_addr=NodeId.parse(args.observer),
        ip=args.ip,
        heartbeat_interval=args.heartbeat_interval,
        flush_interval=args.flush_interval,
        telemetry_enabled=args.telemetry,
        trace_sample=args.trace_sample,
        shm_ring_bytes=args.shm_ring_bytes,
        loop_impl=loop_impl,
        proxy_port=args.proxy_port,
        controller_name=args.controller_name,
        exit_after_register=args.exit_after_register,
    )
    stop = asyncio.Event()
    install_shutdown_handlers(stop)
    await worker.start()
    signal_task = asyncio.ensure_future(stop.wait())
    stopped_task = asyncio.ensure_future(worker.stopped.wait())
    await asyncio.wait({signal_task, stopped_task}, return_when=asyncio.FIRST_COMPLETED)
    await worker.stop()
    for task in (signal_task, stopped_task):
        task.cancel()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    from repro.net.loops import install_uvloop

    loop_impl = install_uvloop(args.uvloop)
    try:
        return asyncio.run(_amain(args, loop_impl))
    except KeyboardInterrupt:  # signal raced the handler installation
        return 0


if __name__ == "__main__":
    sys.exit(main())
