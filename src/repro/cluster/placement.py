"""Placement policies: which worker — and which controller — gets a node.

The controller consults a policy for every spec without an explicit
pin.  Policies see the fleet as an ordered mapping ``worker name ->
total placed weight`` and return the chosen worker's name; they are
deterministic so a deployment is reproducible run to run.

In a federated deployment placement is **two-stage**: the root first
picks a *child controller* through a :class:`ControllerPlacementPolicy`
(capacity- or weight-aware, over :class:`ControllerLoad` summaries),
then that controller places the spec across its own workers with the
ordinary single-stage policies above.  A spec's ``controller`` pin
short-circuits stage one exactly like ``pin`` short-circuits stage two.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Mapping, NamedTuple

from repro.errors import ClusterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.spec import NodeSpec


class PlacementPolicy(ABC):
    """Chooses a worker for one spec given the fleet's current load."""

    @abstractmethod
    def choose(self, spec: "NodeSpec", load: Mapping[str, float]) -> str:
        """Return the name of the worker ``spec`` should land on.

        ``load`` maps every *live* worker to its total placed weight, in
        spawn order.  Raises :class:`~repro.errors.ClusterError` when no
        worker is available.
        """


class RoundRobinPlacement(PlacementPolicy):
    """Deal specs out evenly, one worker after the other, in spawn order."""

    def __init__(self) -> None:
        self._next = 0

    def choose(self, spec: "NodeSpec", load: Mapping[str, float]) -> str:
        workers = list(load)
        if not workers:
            raise ClusterError("no live workers to place on")
        chosen = workers[self._next % len(workers)]
        self._next += 1
        return chosen


class BinPackPlacement(PlacementPolicy):
    """Send each spec to the least-loaded worker by declared weight.

    Ties break toward the earlier-spawned worker, keeping placements
    deterministic.  With uniform weights this degenerates to balanced
    counts; heterogeneous weights (a coding node heavier than a relay)
    even out actual work instead of node counts.
    """

    def choose(self, spec: "NodeSpec", load: Mapping[str, float]) -> str:
        if not load:
            raise ClusterError("no live workers to place on")
        return min(load, key=lambda name: (load[name], list(load).index(name)))


_POLICIES = {
    "round-robin": RoundRobinPlacement,
    "bin-pack": BinPackPlacement,
}


def make_placement(name: str) -> PlacementPolicy:
    """Instantiate a policy by its CLI name (``round-robin``/``bin-pack``)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ClusterError(
            f"unknown placement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None


# --- stage one: root -> child controller --------------------------------------


class ControllerLoad(NamedTuple):
    """One child controller's placement-relevant state, as the root sees it."""

    #: total declared weight of specs placed under this controller
    load: float
    #: declared fleet capacity (0 = undeclared, treated as unbounded)
    capacity: float
    #: share scaling under weighted placement
    weight: float


class ControllerPlacementPolicy(ABC):
    """Chooses a child controller for one spec (federation stage one)."""

    @abstractmethod
    def choose(self, spec: "NodeSpec", fleet: Mapping[str, ControllerLoad]) -> str:
        """Return the name of the controller ``spec`` should land under.

        ``fleet`` maps every *ready* child controller to its load
        summary, in join order.  Raises
        :class:`~repro.errors.ClusterError` when no controller fits.
        """


class CapacityPlacement(ControllerPlacementPolicy):
    """Send each spec to the controller with the most free capacity.

    Free capacity is ``capacity - load``; undeclared capacity counts as
    unbounded, so among unbounded (or tied) controllers the least loaded
    wins, then join order.  A controller without room for the spec's
    weight is skipped; if every controller is full the spec overflows
    onto the least loaded one rather than failing the deployment.
    """

    def choose(self, spec: "NodeSpec", fleet: Mapping[str, ControllerLoad]) -> str:
        if not fleet:
            raise ClusterError("no ready child controllers to place on")
        order = {name: i for i, name in enumerate(fleet)}

        def free(entry: ControllerLoad) -> float:
            if entry.capacity <= 0:
                return float("inf")
            return entry.capacity - entry.load

        candidates = [n for n, e in fleet.items() if free(e) >= spec.weight]
        pool = candidates or list(fleet)
        return min(pool, key=lambda n: (-free(fleet[n]), fleet[n].load, order[n]))


class WeightedControllerPlacement(ControllerPlacementPolicy):
    """Send each spec to the controller with the least load per weight.

    A controller declared twice as heavy takes twice the load before
    the policy moves on — the controller-level analog of bin-packing.
    Ties break toward join order.
    """

    def choose(self, spec: "NodeSpec", fleet: Mapping[str, ControllerLoad]) -> str:
        if not fleet:
            raise ClusterError("no ready child controllers to place on")
        order = {name: i for i, name in enumerate(fleet)}
        return min(
            fleet,
            key=lambda n: (fleet[n].load / max(fleet[n].weight, 1e-9), order[n]),
        )


_CONTROLLER_POLICIES = {
    "capacity": CapacityPlacement,
    "weighted": WeightedControllerPlacement,
}


def make_controller_placement(name: str) -> ControllerPlacementPolicy:
    """Instantiate a stage-one policy by CLI name (``capacity``/``weighted``)."""
    try:
        return _CONTROLLER_POLICIES[name]()
    except KeyError:
        raise ClusterError(
            f"unknown controller placement policy {name!r}; "
            f"choose from {sorted(_CONTROLLER_POLICIES)}"
        ) from None
