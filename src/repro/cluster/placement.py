"""Placement policies: which worker gets the next node.

The controller consults a policy for every spec without an explicit
pin.  Policies see the fleet as an ordered mapping ``worker name ->
total placed weight`` and return the chosen worker's name; they are
deterministic so a deployment is reproducible run to run.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Mapping

from repro.errors import ClusterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.spec import NodeSpec


class PlacementPolicy(ABC):
    """Chooses a worker for one spec given the fleet's current load."""

    @abstractmethod
    def choose(self, spec: "NodeSpec", load: Mapping[str, float]) -> str:
        """Return the name of the worker ``spec`` should land on.

        ``load`` maps every *live* worker to its total placed weight, in
        spawn order.  Raises :class:`~repro.errors.ClusterError` when no
        worker is available.
        """


class RoundRobinPlacement(PlacementPolicy):
    """Deal specs out evenly, one worker after the other, in spawn order."""

    def __init__(self) -> None:
        self._next = 0

    def choose(self, spec: "NodeSpec", load: Mapping[str, float]) -> str:
        workers = list(load)
        if not workers:
            raise ClusterError("no live workers to place on")
        chosen = workers[self._next % len(workers)]
        self._next += 1
        return chosen


class BinPackPlacement(PlacementPolicy):
    """Send each spec to the least-loaded worker by declared weight.

    Ties break toward the earlier-spawned worker, keeping placements
    deterministic.  With uniform weights this degenerates to balanced
    counts; heterogeneous weights (a coding node heavier than a relay)
    even out actual work instead of node counts.
    """

    def choose(self, spec: "NodeSpec", load: Mapping[str, float]) -> str:
        if not load:
            raise ClusterError("no live workers to place on")
        return min(load, key=lambda name: (load[name], list(load).index(name)))


_POLICIES = {
    "round-robin": RoundRobinPlacement,
    "bin-pack": BinPackPlacement,
}


def make_placement(name: str) -> PlacementPolicy:
    """Instantiate a policy by its CLI name (``round-robin``/``bin-pack``)."""
    try:
        return _POLICIES[name]()
    except KeyError:
        raise ClusterError(
            f"unknown placement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
