"""The control channels: controller <-> worker, root <-> controller.

Both supervision tiers speak iOverlay frames (:mod:`repro.net.framing`)
on one ordinary TCP connection.  The process tier uses the ``W_*``
verbs of :mod:`repro.core.msgtypes`:

========================  =============================================
verb                      direction and meaning
========================  =============================================
``W_REGISTER``            worker -> controller, first frame: identity
``W_SPAWN``               controller -> worker: place one node
``W_SPAWNED``             worker -> controller: spawn outcome
``W_HEARTBEAT``           worker -> controller: liveness + gauges
``W_STOP_NODE``           controller -> worker: stop one node
``W_NODE_INFO``           controller -> worker: inspect one node
``W_NODE_INFO_REPLY``     worker -> controller: reply / generic ack
``W_SHUTDOWN``            controller -> worker: drain and exit
========================  =============================================

The federation tier (:mod:`repro.cluster.federation`) extends the range
with the ``C_*`` controller-to-controller family — the same shapes one
tier up, plus the bootstrap handshake:

========================  =============================================
``C_JOIN``                child -> root, first frame: identity +
                          declared workers/capacity/weight
``C_WELCOME``             root -> child: root observer endpoint, pinned
                          proxy port on respawn
``C_PLACE``               root -> child: place one spec on your fleet
``C_PLACED``              child -> root: placement outcome
``C_HEARTBEAT``           child -> root: shard liveness + gauges
``C_STOP_NODE``           root -> child: stop one placed node
``C_NODE_INFO``           root -> child: inspect one placed node
``C_INFO_REPLY``          child -> root: reply / generic ack
``C_SHUTDOWN``            root -> child: drain the shard and exit
``C_EVENT``               child -> root: ready / node-down /
                          node-replaced notifications
========================  =============================================

Requests that expect an answer carry a supervisor-chosen token in the
header ``seq`` field; the child echoes it on the reply, so one channel
multiplexes any number of outstanding requests.  Reusing the message
codec means the control plane gets framing, JSON field payloads and
codec validation for free — no second wire format.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.core.ids import CONTROL_APP, NodeId
from repro.core.message import Message
from repro.net.framing import read_message, write_message

#: identity stamped on control-channel frames; the channel is not an
#: overlay link, so a reserved sentinel keeps it out of any node table
#: (the observer's own sentinel is 0.0.0.0:1).
CONTROL_SENDER = NodeId("0.0.0.0", 2)


def control_frame(type_: int, seq: int = 0, **fields: Any) -> Message:
    """One control-plane frame with a JSON field payload."""
    return Message.with_fields(type_, CONTROL_SENDER, CONTROL_APP, seq=seq, **fields)


class ControlChannel:
    """Frame-level send/recv on one controller<->worker stream."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer

    async def recv(self) -> Message:
        """Next frame; EOF and socket errors propagate to the caller."""
        return await read_message(self._reader)

    async def send(self, type_: int, seq: int = 0, **fields: Any) -> None:
        write_message(self._writer, control_frame(type_, seq=seq, **fields))
        await self._writer.drain()

    def close(self) -> None:
        self._writer.close()

    def is_closing(self) -> bool:
        return self._writer.is_closing()
