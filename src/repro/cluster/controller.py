"""The placement controller: spawn, place, supervise a worker fleet.

The :class:`ClusterController` is the cluster-level analog of the
paper's observer control panel.  It

- spawns ``config.workers`` worker processes (``python -m
  repro.cluster.worker``) and serves their control channels,
- owns **placement**: every :class:`~repro.cluster.spec.NodeSpec` lands
  on a worker chosen by the configured policy (round-robin or
  bin-packing by declared weight) or by an explicit per-spec pin,
- drives application deployment through the existing observer verbs
  (``deploy_source``/``send_control``/``connect`` reach nodes over
  their per-worker :class:`~repro.net.proxy.ObserverProxy` funnel),
- **supervises**: heartbeats carry per-worker gauges (peak RSS,
  event-loop lag, node count); a missed-heartbeat window, a channel
  EOF or a reaped process all confirm a worker dead.  Death marks every
  hosted node down at the observer — the node-level failure domino at
  surviving peers has already fired through their ordinary transport
  teardown — and, with ``respawn=True``, relaunches the worker and
  re-places its specs.

Every cluster lifecycle step is observable: ``worker-spawn``,
``worker-dead``, ``node-placed`` and ``node-redeployed`` each bump a
labelled counter and append a trace event when telemetry is attached.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import sys
import time
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import Any, Iterable

from repro.cluster.placement import make_placement
from repro.cluster.protocol import ControlChannel
from repro.cluster.spec import NodeSpec, PlacedNode, resolve_refs
from repro.core.ids import AppId, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.errors import ClusterError, CodecError
from repro.net.observer_server import ObserverServer
from repro.telemetry import Telemetry
from repro.telemetry.tracing import EventType


@dataclass
class ClusterConfig:
    """Tunables of one controller-led fleet."""

    workers: int = 2
    placement: str = "round-robin"
    ip: str = "127.0.0.1"
    heartbeat_interval: float = 0.5
    #: heartbeat silence confirming a worker dead (also covers channel
    #: stalls the EOF/reap paths cannot see)
    heartbeat_timeout: float = 3.0
    register_timeout: float = 20.0
    request_timeout: float = 20.0
    #: relaunch a dead worker and re-place its specs (new identities)
    respawn: bool = False
    telemetry: Telemetry | None = None
    #: wire the workers' observer proxies into an aggregation tree with
    #: this fan-out: the first ``observer_fanout`` workers attach to the
    #: root observer, worker ``i`` thereafter to worker ``i//fanout - 1``'s
    #: proxy.  ``0`` (the default) keeps the flat PR-5 funnel layout.
    observer_fanout: int = 0
    #: aggregation flush period for the workers' proxies; required when
    #: ``observer_fanout`` is set (a tree of pure relays would loop every
    #: frame through more hops for no reduction)
    observer_flush_interval: float | None = None
    #: enable metrics + lifecycle tracing inside each worker process so
    #: the aggregation tree has telemetry to roll up
    worker_telemetry: bool = False
    #: head-sampling divisor forwarded to the workers' tracers
    worker_trace_sample: int = 1
    #: per-direction shared-memory ring capacity for cross-worker links
    #: (:mod:`repro.net.shm`).  On by default: a fleet under one
    #: controller is co-machine by construction, and the HELLO-time boot
    #: cookie check falls back to TCP whenever that stops being true.
    #: ``0`` forces plain TCP everywhere.
    shm_ring_bytes: int = 1 << 20
    #: run worker processes on uvloop when importable (opt-in; silently
    #: falls back to stock asyncio, and W_REGISTER reports which one ran)
    uvloop: bool = False


@dataclass
class WorkerState:
    """Everything the controller knows about one fleet process."""

    name: str
    process: Any = None  # asyncio.subprocess.Process
    chan: ControlChannel | None = None
    pid: int = 0
    alive: bool = False
    shutting_down: bool = False
    last_heartbeat: float = 0.0
    rss_kb: float = 0.0
    loop_lag_ms: float = 0.0
    node_count: int = 0
    #: the worker's observer-proxy endpoint (from W_REGISTER); in tree
    #: mode later workers dial this instead of the root observer
    proxy_addr: str = ""
    #: event-loop implementation the worker reported ("asyncio"/"uvloop")
    loop_impl: str = ""
    #: spec name -> placement, in placement order (sinks-first order is
    #: preserved, which is what makes redeploys resolvable)
    placed: dict[str, PlacedNode] = dataclass_field(default_factory=dict)

    @property
    def load(self) -> float:
        """Total declared weight placed here (bin-packing input)."""
        return sum(p.spec.weight for p in self.placed.values())


class ClusterController:
    """Spawns worker processes, places nodes, supervises the fleet."""

    def __init__(self, observer: ObserverServer, config: ClusterConfig | None = None) -> None:
        self.observer = observer
        self.config = config or ClusterConfig()
        self.policy = make_placement(self.config.placement)
        self.workers: dict[str, WorkerState] = {}
        #: spec name -> current placement, across all workers
        self.placed: dict[str, PlacedNode] = {}
        self.addr: NodeId | None = None
        self._server: asyncio.AbstractServer | None = None
        self._seq = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._register_waiters: dict[str, asyncio.Future] = {}
        #: worker name -> observer endpoint its proxy dials (tree wiring)
        self._upstreams: dict[str, str] = {}
        #: worker name -> the proxy port its first incarnation bound; a
        #: respawn re-binds it so downstream proxies redial the same
        #: endpoint instead of needing their own restart
        self._proxy_ports: dict[str, int] = {}
        self._tasks: list[asyncio.Task] = []
        self._running = False
        self.worker_deaths = 0
        self.nodes_redeployed = 0
        tel = self.config.telemetry
        if tel is not None:
            reg = tel.registry
            self._c_spawn = reg.counter(
                "ioverlay_cluster_worker_spawn_total", "Worker processes launched", ("worker",))
            self._c_dead = reg.counter(
                "ioverlay_cluster_worker_dead_total", "Worker deaths confirmed", ("worker",))
            self._c_placed = reg.counter(
                "ioverlay_cluster_node_placed_total", "Nodes placed on workers", ("worker",))
            self._c_redeployed = reg.counter(
                "ioverlay_cluster_node_redeployed_total",
                "Nodes re-placed after their worker died", ("worker",))
            self._g_rss = reg.gauge(
                "ioverlay_cluster_worker_rss_kb", "Worker peak RSS (KiB)", ("worker",))
            self._g_lag = reg.gauge(
                "ioverlay_cluster_worker_loop_lag_ms", "Worker event-loop lag (ms)", ("worker",))
            self._g_nodes = reg.gauge(
                "ioverlay_cluster_worker_nodes", "Nodes hosted per worker", ("worker",))
        else:
            self._c_spawn = self._c_dead = self._c_placed = self._c_redeployed = None
            self._g_rss = self._g_lag = self._g_nodes = None

    # ------------------------------------------------------------------ telemetry

    def _trace(self, event: str, **detail: Any) -> None:
        tel = self.config.telemetry
        if tel is not None and tel.tracer.enabled:
            tel.tracer.append_raw(time.monotonic(), "controller", event, "", 0, detail)

    # ------------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind the control server, then launch and await the fleet."""
        if self._running:
            raise RuntimeError("controller already started")
        self._running = True
        self._server = await asyncio.start_server(
            self._accept, host=self.config.ip, port=0
        )
        self.addr = NodeId(self.config.ip, self._server.sockets[0].getsockname()[1])
        fanout = self.config.observer_fanout
        if fanout > 0:
            # Tree mode must spawn sequentially: worker i's upstream is a
            # parent worker's proxy port, which is only known once that
            # parent has registered.
            for i in range(self.config.workers):
                if i < fanout:
                    upstream = str(self.observer.addr)
                else:
                    parent = self.workers[f"w{i // fanout - 1}"]
                    upstream = parent.proxy_addr or str(self.observer.addr)
                await self.spawn_worker(f"w{i}", upstream=upstream)
        else:
            await asyncio.gather(
                *(self.spawn_worker(f"w{i}") for i in range(self.config.workers))
            )
        self._tasks.append(asyncio.ensure_future(self._sweep_loop()))

    async def stop(self) -> None:
        """Drain the fleet: W_SHUTDOWN everywhere, then reap with escalation."""
        if not self._running:
            return
        self._running = False
        for task in self._tasks:
            task.cancel()
        self._tasks.clear()
        for state in self.workers.values():
            state.shutting_down = True
            if state.alive and state.chan is not None and not state.chan.is_closing():
                try:
                    await state.chan.send(MsgType.W_SHUTDOWN)
                except (ConnectionError, OSError):
                    pass
        for state in self.workers.values():
            await self._reap_with_escalation(state)
            state.alive = False
            if state.chan is not None:
                state.chan.close()
                state.chan = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for fut in self._pending.values():
            if not fut.done():
                fut.cancel()
        self._pending.clear()

    async def _reap_with_escalation(self, state: WorkerState) -> None:
        proc = state.process
        if proc is None or proc.returncode is not None:
            return
        try:
            await asyncio.wait_for(proc.wait(), 5.0)
            return
        except asyncio.TimeoutError:
            proc.terminate()
        try:
            await asyncio.wait_for(proc.wait(), 2.0)
        except asyncio.TimeoutError:
            proc.kill()
            await proc.wait()

    # ------------------------------------------------------------------- spawning

    async def spawn_worker(self, name: str, upstream: str | None = None) -> WorkerState:
        """Launch one worker process and wait for its W_REGISTER.

        ``upstream`` overrides the observer endpoint the worker's proxy
        dials (tree mode points it at a parent worker's proxy).  Both
        the upstream choice and the proxy port the first incarnation
        bound are remembered per name: a respawned *mid-tree* worker
        re-binds its predecessor's proxy port, so surviving children —
        whose proxies already redial a lost upstream under backoff and
        replay their BOOT frames — reattach to the same endpoint
        without being restarted themselves.
        """
        assert self.addr is not None, "start() first"
        existing = self.workers.get(name)
        if existing is not None and existing.alive:
            raise ClusterError(f"worker {name!r} is already running")
        if upstream is not None:
            self._upstreams[name] = upstream
        upstream = self._upstreams.get(name, str(self.observer.addr))
        state = WorkerState(name=name)
        self.workers[name] = state
        waiter: asyncio.Future = asyncio.get_running_loop().create_future()
        self._register_waiters[name] = waiter
        env = os.environ.copy()
        # The worker must import this very source tree, wherever the
        # controller was launched from.
        src_root = str(Path(__file__).resolve().parents[2])
        existing_path = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing_path if existing_path else src_root
        )
        argv = [
            sys.executable, "-m", "repro.cluster.worker",
            "--name", name,
            "--controller", str(self.addr),
            "--observer", upstream,
            "--ip", self.config.ip,
            "--heartbeat-interval", str(self.config.heartbeat_interval),
        ]
        if self.config.observer_flush_interval is not None:
            argv += ["--flush-interval", str(self.config.observer_flush_interval)]
        if self.config.worker_telemetry:
            argv += ["--telemetry", "--trace-sample",
                     str(self.config.worker_trace_sample)]
        if self.config.shm_ring_bytes > 0:
            argv += ["--shm-ring-bytes", str(self.config.shm_ring_bytes)]
        if self.config.uvloop:
            argv += ["--uvloop"]
        pinned_port = self._proxy_ports.get(name, 0)
        if pinned_port:
            argv += ["--proxy-port", str(pinned_port)]
        state.process = await asyncio.create_subprocess_exec(*argv, env=env)
        try:
            await asyncio.wait_for(waiter, self.config.register_timeout)
        except asyncio.TimeoutError:
            self._register_waiters.pop(name, None)
            raise ClusterError(
                f"worker {name!r} (pid {state.process.pid}) did not register "
                f"within {self.config.register_timeout}s"
            ) from None
        state.alive = True
        state.last_heartbeat = time.monotonic()
        if self._c_spawn is not None:
            self._c_spawn.labels(worker=name).inc()
        self._trace(EventType.WORKER_SPAWN, worker=name, pid=state.pid)
        self._tasks.append(asyncio.ensure_future(self._reap(state)))
        return state

    async def _reap(self, state: WorkerState) -> None:
        """Fast crash detection: the OS tells us the moment a worker exits."""
        proc = state.process
        if proc is None:
            return
        returncode = await proc.wait()
        await self._worker_dead(state, reason=f"exit={returncode}")

    # ------------------------------------------------------------ control channels

    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        chan = ControlChannel(reader, writer)
        try:
            first = await asyncio.wait_for(chan.recv(), self.config.register_timeout)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError, OSError):
            chan.close()
            return
        if first.type != MsgType.W_REGISTER:
            chan.close()
            return
        fields = first.fields()
        name = str(fields.get("name", ""))
        state = self.workers.get(name)
        if state is None:
            chan.close()  # not a worker we launched
            return
        state.chan = chan
        state.pid = int(fields.get("pid", 0))
        state.proxy_addr = str(fields.get("proxy", ""))
        state.loop_impl = str(fields.get("loop", ""))
        if state.proxy_addr:
            try:
                self._proxy_ports.setdefault(
                    name, NodeId.parse(state.proxy_addr).port
                )
            except CodecError:
                pass
        waiter = self._register_waiters.pop(name, None)
        if waiter is not None and not waiter.done():
            waiter.set_result(state)
        while self._running:
            try:
                msg = await chan.recv()
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                break
            except asyncio.CancelledError:
                return
            self._on_frame(state, msg)
        await self._worker_dead(state, reason="channel-eof")

    def _on_frame(self, state: WorkerState, msg: Message) -> None:
        if msg.type == MsgType.W_HEARTBEAT:
            fields = msg.fields()
            state.last_heartbeat = time.monotonic()
            state.rss_kb = float(fields.get("rss_kb", 0.0))
            state.loop_lag_ms = float(fields.get("loop_lag_ms", 0.0))
            state.node_count = int(fields.get("nodes", 0))
            if self._g_rss is not None:
                self._g_rss.labels(worker=state.name).set(state.rss_kb)
                self._g_lag.labels(worker=state.name).set(state.loop_lag_ms)
                self._g_nodes.labels(worker=state.name).set(state.node_count)
        elif msg.type in (MsgType.W_SPAWNED, MsgType.W_NODE_INFO_REPLY):
            future = self._pending.pop(msg.seq, None)
            if future is not None and not future.done():
                future.set_result(msg)

    async def _request(self, state: WorkerState, type_: int, **fields: Any) -> dict:
        """One correlated request/reply round trip on a worker's channel."""
        if not state.alive or state.chan is None or state.chan.is_closing():
            raise ClusterError(f"worker {state.name!r} is not live")
        seq = next(self._seq)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[seq] = future
        try:
            await state.chan.send(type_, seq=seq, **fields)
        except (ConnectionError, OSError) as exc:
            self._pending.pop(seq, None)
            raise ClusterError(f"worker {state.name!r} channel failed: {exc}") from exc
        try:
            reply = await asyncio.wait_for(future, self.config.request_timeout)
        except (asyncio.TimeoutError, asyncio.CancelledError):
            self._pending.pop(seq, None)
            raise ClusterError(
                f"worker {state.name!r} did not answer request type {type_} "
                f"within {self.config.request_timeout}s"
            ) from None
        result = reply.fields()
        if "error" in result:
            raise ClusterError(f"worker {state.name!r}: {result['error']}")
        return result

    # ------------------------------------------------------------------ placement

    def _choose_worker(self, spec: NodeSpec) -> str:
        live = {name: st.load for name, st in self.workers.items() if st.alive}
        if spec.pin is not None:
            if spec.pin not in live:
                raise ClusterError(
                    f"spec {spec.name!r} pins worker {spec.pin!r}, which is not live"
                )
            return spec.pin
        return self.policy.choose(spec, live)

    async def place(self, spec: NodeSpec, *, redeploy: bool = False) -> PlacedNode:
        """Place one spec: choose a worker, spawn the node, record it."""
        if spec.name in self.placed:
            raise ClusterError(f"node {spec.name!r} is already placed")
        worker = self._choose_worker(spec)
        state = self.workers[worker]
        wire_kwargs = resolve_refs(
            spec.kwargs, lambda name: self.placed[name].node_id
        )
        reply = await self._request(
            state, MsgType.W_SPAWN,
            name=spec.name, algorithm=spec.algorithm, kwargs=wire_kwargs,
        )
        node_id = NodeId.parse(str(reply["node"]))
        placed = PlacedNode(spec=spec, worker=worker, node_id=node_id)
        state.placed[spec.name] = placed
        self.placed[spec.name] = placed
        if self._c_placed is not None:
            self._c_placed.labels(worker=worker).inc()
        self._trace(
            EventType.NODE_PLACED, worker=worker, name=spec.name, node=str(node_id)
        )
        if redeploy:
            self.nodes_redeployed += 1
            if self._c_redeployed is not None:
                self._c_redeployed.labels(worker=worker).inc()
            self._trace(
                EventType.NODE_REDEPLOYED, worker=worker, name=spec.name,
                node=str(node_id),
            )
        return placed

    async def deploy(self, specs: Iterable[NodeSpec]) -> dict[str, PlacedNode]:
        """Place a whole topology (specs ordered sinks-first)."""
        return {spec.name: await self.place(spec) for spec in specs}

    async def stop_node(self, name: str) -> None:
        """Gracefully stop one placed node and forget it everywhere."""
        placed = self._lookup(name)
        state = self.workers[placed.worker]
        await self._request(state, MsgType.W_STOP_NODE, name=name)
        state.placed.pop(name, None)
        self.placed.pop(name, None)
        self.observer.observer.mark_down(placed.node_id)

    async def node_info(self, name: str) -> dict:
        """Engine and algorithm facts for one placed node, live."""
        placed = self._lookup(name)
        return await self._request(
            self.workers[placed.worker], MsgType.W_NODE_INFO, name=name
        )

    def _lookup(self, name: str) -> PlacedNode:
        try:
            return self.placed[name]
        except KeyError:
            raise ClusterError(f"no placed node named {name!r}") from None

    def node_id(self, name: str) -> NodeId:
        """The placed identity of spec ``name``."""
        return self._lookup(name).node_id

    # ---------------------------------------------- observer-driven deployment

    def deploy_source(self, name: str, app: AppId, payload_size: int = 5120) -> None:
        """Start a paced application source on a placed node (``sDeploy``)."""
        self.observer.observer.deploy_source(self.node_id(name), app, payload_size)

    def send_control(
        self, name: str, type_: int, param1: int = 0, param2: int = 0, app: AppId = 0
    ) -> None:
        """Algorithm-specific control verb, routed via the worker's proxy."""
        self.observer.observer.send_control(
            self.node_id(name), type_, param1=param1, param2=param2, app=app
        )

    def terminate_node(self, name: str) -> None:
        self.observer.observer.terminate_node(self.node_id(name))

    # ---------------------------------------------------------------- supervision

    async def _sweep_loop(self) -> None:
        """Confirm silent worker deaths the EOF/reap paths cannot see."""
        interval = max(0.05, self.config.heartbeat_interval / 2)
        while self._running:
            await asyncio.sleep(interval)
            if not self._running:
                return
            now = time.monotonic()
            for state in list(self.workers.values()):
                if (
                    state.alive
                    and not state.shutting_down
                    and now - state.last_heartbeat > self.config.heartbeat_timeout
                ):
                    await self._worker_dead(state, reason="heartbeat-timeout")

    async def _worker_dead(self, state: WorkerState, reason: str) -> None:
        """Confirm one worker dead (idempotent across detection paths)."""
        if not self._running or not state.alive or state.shutting_down:
            return
        state.alive = False  # before any await: later detections no-op
        self.worker_deaths += 1
        if state.chan is not None:
            state.chan.close()
            state.chan = None
        orphans = list(state.placed.values())
        state.placed.clear()
        for placed in orphans:
            # The hosted nodes died with the process.  Surviving peers
            # already ran the node-level failure domino through their own
            # transports (EOF -> BROKEN_LINK -> BROKEN_SOURCE cascade);
            # here the *observer's* view is reconciled.
            self.placed.pop(placed.spec.name, None)
            self.observer.observer.mark_down(placed.node_id)
        if self._c_dead is not None:
            self._c_dead.labels(worker=state.name).inc()
        self._trace(
            EventType.WORKER_DEAD, worker=state.name, reason=reason,
            nodes=[str(p.node_id) for p in orphans],
        )
        if self.config.respawn:
            await self._respawn(state.name, orphans)

    async def _respawn(self, name: str, orphans: list[PlacedNode]) -> None:
        """Relaunch a dead worker and re-place its specs.

        Specs re-place in their original (sinks-first) order, so
        references among the orphans resolve to the *new* identities
        while references to surviving nodes keep the old ones.  The
        redeployed nodes bind fresh ports: upstream nodes on other
        workers are not rewired automatically — that is an algorithm
        decision (rejoin via bootstrap), not a fabric one.
        """
        try:
            await self.spawn_worker(name)
        except ClusterError:
            return  # respawn is best-effort; the death was already recorded
        for placed in orphans:
            try:
                await self.place(placed.spec, redeploy=True)
            except ClusterError:
                continue
