"""The placement controller: spawn, place, supervise a worker fleet.

The :class:`ClusterController` is the cluster-level analog of the
paper's observer control panel.  It

- spawns ``config.workers`` worker processes (``python -m
  repro.cluster.worker``) and serves their control channels,
- owns **placement**: every :class:`~repro.cluster.spec.NodeSpec` lands
  on a worker chosen by the configured policy (round-robin or
  bin-packing by declared weight) or by an explicit per-spec pin,
- drives application deployment through the existing observer verbs
  (``deploy_source``/``send_control``/``connect`` reach nodes over
  their per-worker :class:`~repro.net.proxy.ObserverProxy` funnel),
- **supervises** through the shared supervision core
  (:mod:`repro.cluster.supervise`): heartbeats carry per-worker gauges
  (peak RSS, event-loop lag, node count); a missed-heartbeat window, a
  channel EOF or a reaped process all confirm a worker dead.  Death
  marks every hosted node down at the observer — the node-level failure
  domino at surviving peers has already fired through their ordinary
  transport teardown — and, with ``respawn=True``, relaunches the
  worker under the core's consecutive-respawn budget and re-places its
  specs.

The :class:`WorkerSupervisor` is the process-level frontend of the
supervision core; the federation tier (:mod:`repro.cluster.federation`)
runs a second frontend over whole child controllers.  In a federated
deployment the controller answers to a root instead of owning the
observer: the ``observer`` argument then is a relay shim rather than an
:class:`~repro.net.observer_server.ObserverServer` (see
:class:`ObserverControl`).

Every cluster lifecycle step is observable: ``worker-spawn``,
``worker-dead``, ``node-placed`` and ``node-redeployed`` each bump a
labelled counter and append a trace event when telemetry is attached.
"""

from __future__ import annotations

import asyncio
import os
import sys
import time
from dataclasses import dataclass, field as dataclass_field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.cluster.placement import make_placement
from repro.cluster.spec import NodeSpec, PlacedNode, resolve_refs
from repro.cluster.supervise import (
    WORKER_FAMILY,
    ChildState,
    RespawnPolicy,
    SupervisorCore,
)
from repro.core.ids import AppId, NodeId
from repro.core.msgtypes import MsgType
from repro.errors import ClusterError, CodecError
from repro.telemetry import Telemetry
from repro.telemetry.tracing import EventType


@dataclass
class ClusterConfig:
    """Tunables of one controller-led fleet."""

    workers: int = 2
    placement: str = "round-robin"
    ip: str = "127.0.0.1"
    heartbeat_interval: float = 0.5
    #: heartbeat silence confirming a worker dead (also covers channel
    #: stalls the EOF/reap paths cannot see)
    heartbeat_timeout: float = 3.0
    register_timeout: float = 20.0
    request_timeout: float = 20.0
    #: relaunch a dead worker and re-place its specs (new identities)
    respawn: bool = False
    #: consecutive early-death respawns tolerated before abandoning the
    #: worker (exponential backoff between attempts; see RespawnPolicy)
    respawn_max: int = 5
    respawn_backoff: float = 0.25
    respawn_backoff_max: float = 5.0
    #: surviving this long resets a worker's respawn streak
    respawn_min_uptime: float = 5.0
    telemetry: Telemetry | None = None
    #: wire the workers' observer proxies into an aggregation tree with
    #: this fan-out: the first ``observer_fanout`` workers attach to the
    #: root observer, worker ``i`` thereafter to worker ``i//fanout - 1``'s
    #: proxy.  ``0`` (the default) keeps the flat PR-5 funnel layout.
    observer_fanout: int = 0
    #: aggregation flush period for the workers' proxies; required when
    #: ``observer_fanout`` is set (a tree of pure relays would loop every
    #: frame through more hops for no reduction)
    observer_flush_interval: float | None = None
    #: enable metrics + lifecycle tracing inside each worker process so
    #: the aggregation tree has telemetry to roll up
    worker_telemetry: bool = False
    #: head-sampling divisor forwarded to the workers' tracers
    worker_trace_sample: int = 1
    #: per-direction shared-memory ring capacity for cross-worker links
    #: (:mod:`repro.net.shm`).  On by default: a fleet under one
    #: controller is co-machine by construction, and the HELLO-time boot
    #: cookie check falls back to TCP whenever that stops being true.
    #: ``0`` forces plain TCP everywhere.
    shm_ring_bytes: int = 1 << 20
    #: run worker processes on uvloop when importable (opt-in; silently
    #: falls back to stock asyncio, and W_REGISTER reports which one ran)
    uvloop: bool = False
    #: identity of the controller this fleet answers to; workers stamp it
    #: on their registrations and heartbeats so a federated deployment
    #: can attribute every process gauge to its controller shard
    controller_name: str = ""


@dataclass
class WorkerState(ChildState):
    """Everything the controller knows about one fleet process."""

    rss_kb: float = 0.0
    loop_lag_ms: float = 0.0
    node_count: int = 0
    #: the worker's observer-proxy endpoint (from W_REGISTER); in tree
    #: mode later workers dial this instead of the root observer
    proxy_addr: str = ""
    #: event-loop implementation the worker reported ("asyncio"/"uvloop")
    loop_impl: str = ""
    #: spec name -> placement, in placement order (sinks-first order is
    #: preserved, which is what makes redeploys resolvable)
    placed: dict[str, PlacedNode] = dataclass_field(default_factory=dict)

    @property
    def load(self) -> float:
        """Total declared weight placed here (bin-packing input)."""
        return sum(p.spec.weight for p in self.placed.values())


class ObserverControl:
    """The observer surface the controller drives, over a local server.

    A standalone fleet wraps its own
    :class:`~repro.net.observer_server.ObserverServer` in this adapter;
    a federated child controller substitutes a relay shim with the same
    four methods (``addr`` then points at the child's aggregation proxy
    and ``mark_down`` reports to the root instead of acting locally).
    """

    def __init__(self, server: Any) -> None:
        self._server = server

    @property
    def addr(self) -> NodeId:
        return self._server.addr

    def mark_down(self, node: NodeId) -> None:
        self._server.observer.mark_down(node)

    def deploy_source(self, node: NodeId, app: AppId, payload_size: int) -> None:
        self._server.observer.deploy_source(node, app, payload_size)

    def send_control(self, node: NodeId, type_: int, *, param1: int,
                     param2: int, app: AppId) -> None:
        self._server.observer.send_control(
            node, type_, param1=param1, param2=param2, app=app
        )

    def terminate_node(self, node: NodeId) -> None:
        self._server.observer.terminate_node(node)


class WorkerSupervisor(SupervisorCore):
    """Process-level frontend of the supervision core.

    Children are ``repro.cluster.worker`` subprocesses; registration
    carries the worker's observer-proxy endpoint (pinned across
    respawns so mid-tree children reattach on their own redial), and
    death hands the hosted specs back to the controller for
    re-placement.
    """

    state_class = WorkerState

    def __init__(self, controller: "ClusterController") -> None:
        config = controller.config
        super().__init__(
            WORKER_FAMILY,
            ip=config.ip,
            heartbeat_interval=config.heartbeat_interval,
            heartbeat_timeout=config.heartbeat_timeout,
            register_timeout=config.register_timeout,
            request_timeout=config.request_timeout,
            respawn=config.respawn,
            respawn_policy=RespawnPolicy(
                max_consecutive=config.respawn_max,
                backoff_base=config.respawn_backoff,
                backoff_max=config.respawn_backoff_max,
                min_uptime=config.respawn_min_uptime,
            ),
        )
        self.controller = controller

    # ------------------------------------------------------------------- hooks

    def child_argv(self, state: ChildState) -> list[str]:
        return self.controller._worker_argv(state.name)

    def child_env(self, state: ChildState) -> dict[str, str]:
        env = os.environ.copy()
        # The worker must import this very source tree, wherever the
        # controller was launched from.
        src_root = str(Path(__file__).resolve().parents[2])
        existing_path = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing_path if existing_path else src_root
        )
        return env

    def on_registered(self, state: ChildState, fields: dict) -> None:
        assert isinstance(state, WorkerState)
        state.proxy_addr = str(fields.get("proxy", ""))
        state.loop_impl = str(fields.get("loop", ""))
        if state.proxy_addr:
            try:
                self.controller._proxy_ports.setdefault(
                    state.name, NodeId.parse(state.proxy_addr).port
                )
            except CodecError:
                pass

    def on_heartbeat(self, state: ChildState, fields: dict) -> None:
        assert isinstance(state, WorkerState)
        state.rss_kb = float(fields.get("rss_kb", 0.0))
        state.loop_lag_ms = float(fields.get("loop_lag_ms", 0.0))
        state.node_count = int(fields.get("nodes", 0))
        ctl = self.controller
        if ctl._g_rss is not None:
            ctl._g_rss.labels(worker=state.name).set(state.rss_kb)
            ctl._g_lag.labels(worker=state.name).set(state.loop_lag_ms)
            ctl._g_nodes.labels(worker=state.name).set(state.node_count)

    async def on_child_dead(self, state: ChildState, reason: str) -> list[PlacedNode]:
        assert isinstance(state, WorkerState)
        return self.controller._note_worker_dead(state, reason)

    async def replace_orphans(self, state: ChildState, orphans: list[PlacedNode]) -> None:
        for placed in orphans:
            try:
                await self.controller.place(placed.spec, redeploy=True)
            except ClusterError:
                continue

    def trace(self, event: str, **detail: Any) -> None:
        self.controller._trace(event, **detail)


class ClusterController:
    """Spawns worker processes, places nodes, supervises the fleet."""

    def __init__(self, observer: Any, config: ClusterConfig | None = None) -> None:
        self.observer = observer
        #: the observer control surface (adapter over a local server, or
        #: a federation relay shim already exposing the four methods)
        self._obs: Any = (
            observer if hasattr(observer, "mark_down") else ObserverControl(observer)
        )
        self.config = config or ClusterConfig()
        self.policy = make_placement(self.config.placement)
        self.supervisor = WorkerSupervisor(self)
        #: spec name -> current placement, across all workers
        self.placed: dict[str, PlacedNode] = {}
        self.addr: NodeId | None = None
        #: called as (spec_name, placed) after every redeploy — a
        #: federated child uses this to report replacements to its root
        self.redeploy_listener: Callable[[str, PlacedNode], None] | None = None
        #: worker name -> observer endpoint its proxy dials (tree wiring)
        self._upstreams: dict[str, str] = {}
        #: worker name -> the proxy port its first incarnation bound; a
        #: respawn re-binds it so downstream proxies redial the same
        #: endpoint instead of needing their own restart
        self._proxy_ports: dict[str, int] = {}
        self.nodes_redeployed = 0
        tel = self.config.telemetry
        if tel is not None:
            reg = tel.registry
            self._c_spawn = reg.counter(
                "ioverlay_cluster_worker_spawn_total", "Worker processes launched", ("worker",))
            self._c_dead = reg.counter(
                "ioverlay_cluster_worker_dead_total", "Worker deaths confirmed", ("worker",))
            self._c_placed = reg.counter(
                "ioverlay_cluster_node_placed_total", "Nodes placed on workers", ("worker",))
            self._c_redeployed = reg.counter(
                "ioverlay_cluster_node_redeployed_total",
                "Nodes re-placed after their worker died", ("worker",))
            self._g_rss = reg.gauge(
                "ioverlay_cluster_worker_rss_kb", "Worker peak RSS (KiB)", ("worker",))
            self._g_lag = reg.gauge(
                "ioverlay_cluster_worker_loop_lag_ms", "Worker event-loop lag (ms)", ("worker",))
            self._g_nodes = reg.gauge(
                "ioverlay_cluster_worker_nodes", "Nodes hosted per worker", ("worker",))
        else:
            self._c_spawn = self._c_dead = self._c_placed = self._c_redeployed = None
            self._g_rss = self._g_lag = self._g_nodes = None

    # ----------------------------------------------------- supervision facade

    @property
    def workers(self) -> dict[str, WorkerState]:
        """The fleet as the supervision core tracks it."""
        return self.supervisor.children  # type: ignore[return-value]

    @property
    def worker_deaths(self) -> int:
        return self.supervisor.deaths

    # ------------------------------------------------------------------ telemetry

    def _trace(self, event: str, **detail: Any) -> None:
        tel = self.config.telemetry
        if tel is not None and tel.tracer.enabled:
            tel.tracer.append_raw(time.monotonic(), "controller", event, "", 0, detail)

    # ------------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind the control server, then launch and await the fleet."""
        await self.supervisor.start_server()
        self.addr = NodeId(self.config.ip, self.supervisor.port)
        fanout = self.config.observer_fanout
        if fanout > 0:
            # Tree mode must spawn sequentially: worker i's upstream is a
            # parent worker's proxy port, which is only known once that
            # parent has registered.
            for i in range(self.config.workers):
                if i < fanout:
                    upstream = str(self._obs.addr)
                else:
                    parent = self.workers[f"w{i // fanout - 1}"]
                    upstream = parent.proxy_addr or str(self._obs.addr)
                await self.spawn_worker(f"w{i}", upstream=upstream)
        else:
            await asyncio.gather(
                *(self.spawn_worker(f"w{i}") for i in range(self.config.workers))
            )

    async def stop(self) -> None:
        """Drain the fleet: W_SHUTDOWN everywhere, then reap with escalation.

        Idempotent: nested or concurrent calls (a signal racing a normal
        teardown, a stop during an in-flight respawn) all resolve to one
        teardown — see :meth:`SupervisorCore.stop`.
        """
        await self.supervisor.stop()

    # ------------------------------------------------------------------- spawning

    def _worker_argv(self, name: str) -> list[str]:
        assert self.addr is not None, "start() first"
        upstream = self._upstreams.get(name, str(self._obs.addr))
        argv = [
            sys.executable, "-m", "repro.cluster.worker",
            "--name", name,
            "--controller", str(self.addr),
            "--observer", upstream,
            "--ip", self.config.ip,
            "--heartbeat-interval", str(self.config.heartbeat_interval),
        ]
        if self.config.controller_name:
            argv += ["--controller-name", self.config.controller_name]
        if self.config.observer_flush_interval is not None:
            argv += ["--flush-interval", str(self.config.observer_flush_interval)]
        if self.config.worker_telemetry:
            argv += ["--telemetry", "--trace-sample",
                     str(self.config.worker_trace_sample)]
        if self.config.shm_ring_bytes > 0:
            argv += ["--shm-ring-bytes", str(self.config.shm_ring_bytes)]
        if self.config.uvloop:
            argv += ["--uvloop"]
        pinned_port = self._proxy_ports.get(name, 0)
        if pinned_port:
            argv += ["--proxy-port", str(pinned_port)]
        return argv

    async def spawn_worker(self, name: str, upstream: str | None = None) -> WorkerState:
        """Launch one worker process and wait for its W_REGISTER.

        ``upstream`` overrides the observer endpoint the worker's proxy
        dials (tree mode points it at a parent worker's proxy).  Both
        the upstream choice and the proxy port the first incarnation
        bound are remembered per name: a respawned *mid-tree* worker
        re-binds its predecessor's proxy port, so surviving children —
        whose proxies already redial a lost upstream under backoff and
        replay their BOOT frames — reattach to the same endpoint
        without being restarted themselves.
        """
        if upstream is not None:
            self._upstreams[name] = upstream
        state = await self.supervisor.spawn_child(name)
        assert isinstance(state, WorkerState)
        if self._c_spawn is not None:
            self._c_spawn.labels(worker=name).inc()
        self._trace(EventType.WORKER_SPAWN, worker=name, pid=state.pid)
        return state

    def _note_worker_dead(self, state: WorkerState, reason: str) -> list[PlacedNode]:
        """Death bookkeeping: reconcile the observer, free the shard."""
        orphans = list(state.placed.values())
        state.placed.clear()
        for placed in orphans:
            # The hosted nodes died with the process.  Surviving peers
            # already ran the node-level failure domino through their own
            # transports (EOF -> BROKEN_LINK -> BROKEN_SOURCE cascade);
            # here the *observer's* view is reconciled.
            self.placed.pop(placed.spec.name, None)
            self._obs.mark_down(placed.node_id)
        if self._c_dead is not None:
            self._c_dead.labels(worker=state.name).inc()
        self._trace(
            EventType.WORKER_DEAD, worker=state.name, reason=reason,
            nodes=[str(p.node_id) for p in orphans],
        )
        return orphans

    # ------------------------------------------------------------------ placement

    def _choose_worker(self, spec: NodeSpec) -> str:
        live = {name: st.load for name, st in self.workers.items() if st.alive}
        if spec.pin is not None:
            if spec.pin not in live:
                raise ClusterError(
                    f"spec {spec.name!r} pins worker {spec.pin!r}, which is not live"
                )
            return spec.pin
        return self.policy.choose(spec, live)

    async def place(self, spec: NodeSpec, *, redeploy: bool = False) -> PlacedNode:
        """Place one spec: choose a worker, spawn the node, record it."""
        if spec.name in self.placed:
            raise ClusterError(f"node {spec.name!r} is already placed")
        worker = self._choose_worker(spec)
        state = self.workers[worker]
        wire_kwargs = resolve_refs(
            spec.kwargs, lambda name: self.placed[name].node_id
        )
        reply = await self.supervisor.request(
            state, MsgType.W_SPAWN,
            name=spec.name, algorithm=spec.algorithm, kwargs=wire_kwargs,
        )
        node_id = NodeId.parse(str(reply["node"]))
        placed = PlacedNode(
            spec=spec, worker=worker, node_id=node_id,
            controller=self.config.controller_name,
        )
        state.placed[spec.name] = placed
        self.placed[spec.name] = placed
        if self._c_placed is not None:
            self._c_placed.labels(worker=worker).inc()
        self._trace(
            EventType.NODE_PLACED, worker=worker, name=spec.name, node=str(node_id)
        )
        if redeploy:
            self.nodes_redeployed += 1
            if self._c_redeployed is not None:
                self._c_redeployed.labels(worker=worker).inc()
            self._trace(
                EventType.NODE_REDEPLOYED, worker=worker, name=spec.name,
                node=str(node_id),
            )
            if self.redeploy_listener is not None:
                self.redeploy_listener(spec.name, placed)
        return placed

    async def deploy(self, specs: Iterable[NodeSpec]) -> dict[str, PlacedNode]:
        """Place a whole topology (specs ordered sinks-first)."""
        return {spec.name: await self.place(spec) for spec in specs}

    async def stop_node(self, name: str) -> None:
        """Gracefully stop one placed node and forget it everywhere."""
        placed = self._lookup(name)
        state = self.workers[placed.worker]
        await self.supervisor.request(state, MsgType.W_STOP_NODE, name=name)
        state.placed.pop(name, None)
        self.placed.pop(name, None)
        self._obs.mark_down(placed.node_id)

    async def node_info(self, name: str) -> dict:
        """Engine and algorithm facts for one placed node, live."""
        placed = self._lookup(name)
        return await self.supervisor.request(
            self.workers[placed.worker], MsgType.W_NODE_INFO, name=name
        )

    def _lookup(self, name: str) -> PlacedNode:
        try:
            return self.placed[name]
        except KeyError:
            raise ClusterError(f"no placed node named {name!r}") from None

    def node_id(self, name: str) -> NodeId:
        """The placed identity of spec ``name``."""
        return self._lookup(name).node_id

    # ---------------------------------------------- observer-driven deployment

    def deploy_source(self, name: str, app: AppId, payload_size: int = 5120) -> None:
        """Start a paced application source on a placed node (``sDeploy``)."""
        self._obs.deploy_source(self.node_id(name), app, payload_size)

    def send_control(
        self, name: str, type_: int, param1: int = 0, param2: int = 0, app: AppId = 0
    ) -> None:
        """Algorithm-specific control verb, routed via the worker's proxy."""
        self._obs.send_control(
            self.node_id(name), type_, param1=param1, param2=param2, app=app
        )

    def terminate_node(self, name: str) -> None:
        self._obs.terminate_node(self.node_id(name))
