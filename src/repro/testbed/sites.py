"""A synthetic catalog of wide-area testbed sites.

The paper deploys on PlanetLab.  We cannot reach PlanetLab (and it no
longer exists in its 2004 form), so the testbed substrate draws nodes
from a catalog of real university/lab locations of the era — names and
coordinates only, used to derive plausible wide-area latencies from
great-circle distances.  Multiple overlay nodes may be virtualized per
site, mirroring iOverlay's virtualized deployment.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Site:
    """One hosting site: a name, a region tag, and coordinates."""

    name: str
    region: str
    lat: float
    lon: float


#: ~40 sites spread like the 2004 PlanetLab footprint (heavily North
#: American, some European/Asian/other sites).
SITES: list[Site] = [
    Site("mit", "na-east", 42.3601, -71.0942),
    Site("harvard", "na-east", 42.3770, -71.1167),
    Site("columbia", "na-east", 40.8075, -73.9626),
    Site("nyu", "na-east", 40.7295, -73.9965),
    Site("princeton", "na-east", 40.3431, -74.6551),
    Site("upenn", "na-east", 39.9522, -75.1932),
    Site("cornell", "na-east", 42.4534, -76.4735),
    Site("rochester", "na-east", 43.1306, -77.6260),
    Site("umd", "na-east", 38.9869, -76.9426),
    Site("virginia", "na-east", 38.0336, -78.5080),
    Site("duke", "na-east", 36.0014, -78.9382),
    Site("unc", "na-east", 35.9049, -79.0469),
    Site("gatech", "na-east", 33.7756, -84.3963),
    Site("cmu", "na-east", 40.4433, -79.9436),
    Site("utoronto", "na-east", 43.6629, -79.3957),
    Site("mcgill", "na-east", 45.5048, -73.5772),
    Site("umich", "na-central", 42.2780, -83.7382),
    Site("uiuc", "na-central", 40.1020, -88.2272),
    Site("wisc", "na-central", 43.0766, -89.4125),
    Site("uchicago", "na-central", 41.7886, -87.5987),
    Site("utexas", "na-central", 30.2849, -97.7341),
    Site("tamu", "na-central", 30.6187, -96.3365),
    Site("rice", "na-central", 29.7174, -95.4018),
    Site("utk", "na-central", 35.9544, -83.9295),
    Site("utah", "na-west", 40.7649, -111.8421),
    Site("arizona", "na-west", 32.2319, -110.9501),
    Site("ucsd", "na-west", 32.8801, -117.2340),
    Site("ucla", "na-west", 34.0689, -118.4452),
    Site("caltech", "na-west", 34.1377, -118.1253),
    Site("berkeley", "na-west", 37.8719, -122.2585),
    Site("stanford", "na-west", 37.4275, -122.1697),
    Site("ucsb", "na-west", 34.4140, -119.8489),
    Site("uw", "na-west", 47.6553, -122.3035),
    Site("ubc", "na-west", 49.2606, -123.2460),
    Site("cambridge", "eu", 52.2053, 0.1218),
    Site("inria", "eu", 43.6165, 7.0715),
    Site("tu-berlin", "eu", 52.5125, 13.3269),
    Site("vu-amsterdam", "eu", 52.3340, 4.8658),
    Site("epfl", "eu", 46.5191, 6.5668),
    Site("huji", "asia", 31.7767, 35.1978),
    Site("tsinghua", "asia", 40.0000, 116.3265),
    Site("kaist", "asia", 36.3721, 127.3604),
    Site("titech", "asia", 35.6051, 139.6835),
    Site("unimelb", "oceania", -37.7964, 144.9612),
    Site("usp-br", "sa", -23.5617, -46.7308),
    Site("ufmg-br", "sa", -19.8690, -43.9662),
]


def sites_by_region(region: str) -> list[Site]:
    """All catalog sites in ``region`` (e.g. ``"na-east"``, ``"eu"``)."""
    return [site for site in SITES if site.region == region]


def north_american_sites() -> list[Site]:
    return [site for site in SITES if site.region.startswith("na-")]
