"""Great-circle latency model for the synthetic wide-area testbed.

One-way latency between two sites is modelled as

    propagation (distance / c_fiber) + per-hop processing + jitter

with light in fiber at ~2/3 c and a routing inflation factor, matching
the common observation that Internet RTTs run ~1.5-2x the geodesic
bound.  The model is deterministic given the seed, so simulated runs
are exactly reproducible.
"""

from __future__ import annotations

import math
import random

from repro.testbed.sites import Site

EARTH_RADIUS_KM = 6371.0
#: speed of light in fiber, km per second (approximately 2/3 of c)
FIBER_KM_PER_S = 200_000.0
#: multiplier for circuitous routing relative to the great circle
ROUTE_INFLATION = 1.8
#: fixed per-path processing/queueing floor, seconds
PROCESSING_FLOOR = 0.002


def great_circle_km(a: Site, b: Site) -> float:
    """Haversine distance between two sites in kilometres."""
    lat1, lon1, lat2, lon2 = map(math.radians, (a.lat, a.lon, b.lat, b.lon))
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def one_way_latency(a: Site, b: Site, jitter: float = 0.0, rng: random.Random | None = None) -> float:
    """One-way latency in seconds between two sites.

    ``jitter`` adds a uniform random component of up to that fraction of
    the deterministic latency (requires ``rng``).
    """
    if a is b or (a.lat == b.lat and a.lon == b.lon):
        base = 0.0005  # same site: LAN latency
    else:
        distance = great_circle_km(a, b) * ROUTE_INFLATION
        base = PROCESSING_FLOOR + distance / FIBER_KM_PER_S
    if jitter > 0.0:
        if rng is None:
            raise ValueError("jitter requires an rng")
        base *= 1.0 + rng.uniform(0.0, jitter)
    return base


class LatencyMatrix:
    """Precomputed pairwise one-way latencies for a list of sites."""

    def __init__(self, sites: list[Site], jitter: float = 0.2, seed: int = 0) -> None:
        self.sites = list(sites)
        rng = random.Random(seed)
        self._latency: dict[tuple[int, int], float] = {}
        for i, site_a in enumerate(self.sites):
            for j, site_b in enumerate(self.sites):
                if j < i:
                    continue
                value = one_way_latency(site_a, site_b, jitter=jitter, rng=rng)
                self._latency[(i, j)] = value
                self._latency[(j, i)] = value

    def latency(self, i: int, j: int) -> float:
        return self._latency[(i, j) if i <= j else (j, i)]
