"""Synthetic PlanetLab: sites, latency model, one-call deployments."""

from repro.testbed.latency import LatencyMatrix, great_circle_km, one_way_latency
from repro.testbed.planetlab import PlanetLabTestbed, TestbedNode
from repro.testbed.sites import SITES, Site, north_american_sites, sites_by_region

__all__ = [
    "LatencyMatrix",
    "PlanetLabTestbed",
    "SITES",
    "Site",
    "TestbedNode",
    "great_circle_km",
    "north_american_sites",
    "one_way_latency",
    "sites_by_region",
]
