"""Build a SimNetwork shaped like a PlanetLab deployment.

``PlanetLabTestbed`` assigns overlay nodes to catalog sites (round
robin, several virtualized nodes per site when the deployment is larger
than the catalog), installs a great-circle latency model, and draws
per-node last-mile bandwidth from a configurable distribution — the
wide-area substrate under the Figs. 10-19 experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.core.algorithm import Algorithm
from repro.core.bandwidth import BandwidthSpec
from repro.core.ids import NodeId
from repro.sim.engine import EngineConfig
from repro.sim.network import NetworkConfig, SimNetwork
from repro.testbed.latency import LatencyMatrix
from repro.testbed.sites import SITES, Site

AlgorithmFactory = Callable[[int, float], Algorithm]
"""Called as ``factory(index, last_mile_bytes_per_s)`` per node."""


@dataclass
class TestbedNode:
    """One deployed overlay node: identity, site and drawn bandwidth."""

    index: int
    node_id: NodeId
    site: Site
    last_mile: float
    algorithm: Algorithm


class PlanetLabTestbed:
    """A wide-area overlay deployment on the synthetic site catalog."""

    def __init__(
        self,
        n_nodes: int,
        algorithm_factory: AlgorithmFactory,
        last_mile_range: tuple[float, float] = (50_000.0, 200_000.0),
        source_last_mile: float = 100_000.0,
        sites: list[Site] | None = None,
        seed: int = 0,
        buffer_capacity: int = 16,
        jitter: float = 0.2,
    ) -> None:
        if n_nodes < 2:
            raise ValueError("a testbed needs at least two nodes")
        self.seed = seed
        self.rng = random.Random(seed)
        self.sites = list(sites or SITES)
        self._matrix = LatencyMatrix(self.sites, jitter=jitter, seed=seed)
        self.net = SimNetwork(NetworkConfig(
            engine=EngineConfig(buffer_capacity=buffer_capacity),
            seed=seed,
        ))
        self.nodes: list[TestbedNode] = []
        self._site_of: dict[NodeId, int] = {}

        low, high = last_mile_range
        for index in range(n_nodes):
            site_index = index % len(self.sites)
            # Node 0 is the conventional source position with a fixed
            # last-mile (the paper pins the source at 100 KB/s).
            last_mile = source_last_mile if index == 0 else self.rng.uniform(low, high)
            algorithm = algorithm_factory(index, last_mile)
            node_id = self.net.add_node(
                algorithm,
                name=f"n{index}",
                bandwidth=BandwidthSpec(up=last_mile),
            )
            self.nodes.append(TestbedNode(
                index=index, node_id=node_id, site=self.sites[site_index],
                last_mile=last_mile, algorithm=algorithm,
            ))
            self._site_of[node_id] = site_index
        self.net.set_latency_model(self._latency)

    def _latency(self, src: NodeId, dst: NodeId) -> float:
        i = self._site_of.get(src)
        j = self._site_of.get(dst)
        if i is None or j is None:
            return self.net.config.default_latency
        return max(self._matrix.latency(i, j), 0.0005)

    # ------------------------------------------------------- one-call operations

    def deploy(self) -> None:
        """Start every node (the paper's one-command deployment script)."""
        self.net.start()

    def run(self, duration: float) -> float:
        return self.net.run(duration)

    def terminate(self) -> None:
        """Terminate every node (the one-command teardown)."""
        for node in self.nodes:
            engine = self.net.engines.get(node.node_id)
            if engine is not None and engine.running:
                engine.terminate()

    def collect(self) -> dict[str, object]:
        """Gather per-node results (the one-command data collection)."""
        return {
            "statuses": dict(self.net.observer.statuses),
            "traces": list(self.net.observer.traces),
            "nodes": [
                {
                    "index": node.index,
                    "node_id": str(node.node_id),
                    "site": node.site.name,
                    "last_mile": node.last_mile,
                }
                for node in self.nodes
            ],
        }

    @property
    def source(self) -> TestbedNode:
        return self.nodes[0]
