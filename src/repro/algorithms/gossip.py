"""Probabilistic (gossip) dissemination on top of ``disseminate``.

The paper's ``iAlgorithm`` base class ships a ``disseminate`` function
that sends a message to a list of overlay nodes with probability ``p``,
"resembling the gossiping behavior in distributed systems".  This module
is the canonical algorithm built on it: epidemic rumour spreading with
duplicate suppression.
"""

from __future__ import annotations

from repro.core.algorithm import Algorithm, Disposition
from repro.core.ids import AppId
from repro.core.message import Message
from repro.core.msgtypes import MsgType


class GossipAlgorithm(Algorithm):
    """Relay each gossip message to known hosts with probability ``p``."""

    def __init__(self, probability: float = 0.5, seed: int | None = None) -> None:
        super().__init__(seed=seed)
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.probability = probability
        self.heard: dict[bytes, float] = {}  # payload -> first-heard time
        self.relayed = 0
        self.duplicates = 0
        self.register(MsgType.GOSSIP, self._on_gossip)

    def rumour(self, payload: bytes, app: AppId = 0) -> int:
        """Inject a new rumour originating at this node."""
        self.heard[payload] = self.engine.now()
        msg = Message(MsgType.GOSSIP, self.node_id, app, payload)
        sent = self.disseminate(msg, self.known_hosts, p=1.0)
        self.relayed += sent
        return sent

    def _on_gossip(self, msg: Message) -> Disposition:
        if msg.payload in self.heard:
            self.duplicates += 1
            return Disposition.DONE
        self.heard[msg.payload] = self.engine.now()
        relay = Message(MsgType.GOSSIP, self.node_id, msg.app, msg.payload)
        self.relayed += self.disseminate(relay, self.known_hosts, p=self.probability)
        return Disposition.DONE
