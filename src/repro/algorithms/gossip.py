"""Probabilistic (gossip) dissemination on top of ``disseminate``.

The paper's ``iAlgorithm`` base class ships a ``disseminate`` function
that sends a message to a list of overlay nodes with probability ``p``,
"resembling the gossiping behavior in distributed systems".  This module
is the canonical algorithm built on it: epidemic rumour spreading with
duplicate suppression.
"""

from __future__ import annotations

from repro.core.algorithm import Algorithm, Disposition
from repro.core.ids import AppId
from repro.core.message import Message
from repro.core.msgtypes import MsgType


class GossipAlgorithm(Algorithm):
    """Relay each gossip message to known hosts with probability ``p``.

    The duplicate-suppression memory ``heard`` is bounded: entries
    older than ``heard_ttl`` engine-clock seconds are pruned, and the
    oldest entries are evicted once ``heard_capacity`` is exceeded, so
    a long-lived node under a sustained rumour stream holds O(capacity)
    state instead of growing forever.  Eviction trades perfect
    suppression for boundedness — a rumour re-heard after falling out
    of the window is treated as new, the standard bounded-dedup-cache
    tradeoff.  Both policies read only the engine clock, so pruning is
    deterministic under the virtual-time simulator.
    """

    def __init__(
        self,
        probability: float = 0.5,
        seed: int | None = None,
        heard_ttl: float = 120.0,
        heard_capacity: int = 4096,
    ) -> None:
        super().__init__(seed=seed)
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if heard_ttl <= 0 or heard_capacity < 1:
            raise ValueError("heard_ttl and heard_capacity must be positive")
        self.probability = probability
        self.heard_ttl = heard_ttl
        self.heard_capacity = heard_capacity
        self.heard: dict[bytes, float] = {}  # payload -> first-heard time
        self.relayed = 0
        self.duplicates = 0
        self.evicted = 0
        self.register(MsgType.GOSSIP, self._on_gossip)

    def rumour(self, payload: bytes, app: AppId = 0) -> int:
        """Inject a new rumour originating at this node."""
        self._record(payload)
        msg = Message(MsgType.GOSSIP, self.node_id, app, payload)
        sent = self.disseminate(msg, self.known_hosts, p=1.0)
        self.relayed += sent
        return sent

    def _on_gossip(self, msg: Message) -> Disposition:
        if msg.payload in self.heard:
            self.duplicates += 1
            return Disposition.DONE
        self._record(msg.payload)
        relay = Message(MsgType.GOSSIP, self.node_id, msg.app, msg.payload)
        self.relayed += self.disseminate(relay, self.known_hosts, p=self.probability)
        return Disposition.DONE

    def _record(self, payload: bytes) -> None:
        now = self.engine.now()
        # ``heard`` is insertion-ordered and first-heard times are
        # monotone, so expired entries are exactly a front prefix.
        horizon = now - self.heard_ttl
        while self.heard:
            oldest = next(iter(self.heard))
            if self.heard[oldest] > horizon:
                break
            del self.heard[oldest]
            self.evicted += 1
        while len(self.heard) >= self.heard_capacity:
            del self.heard[next(iter(self.heard))]
            self.evicted += 1
        self.heard[payload] = now
