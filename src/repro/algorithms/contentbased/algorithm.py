"""Content-based networking on iOverlay (the Section 3.1 sketch, realized).

"Any algorithm in content-based networks boils down to one that makes
decisions on which nodes should a message be forwarded to, and this may
be implemented as a derived class from iAlgorithm" — this module is that
derived class.

The design is a classic subscription-forwarding broker mesh:

- clients *subscribe* by sending their predicate to their broker;
- brokers propagate (possibly covered) subscriptions to their broker
  neighbours, building per-neighbour routing predicates;
- a published event enters at any broker and is forwarded along exactly
  the links whose routing predicate matches it, then delivered to
  matching local clients.

Covering optimization: a broker does not re-propagate a subscription
that an already-forwarded predicate covers, which is what keeps
advertisement traffic sublinear in subscriber count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.contentbased.predicates import (
    AttributeValue,
    Predicate,
    event_from_wire,
    event_to_wire,
)
from repro.core.algorithm import Algorithm, Disposition
from repro.core.ids import AppId, NodeId
from repro.core.message import Message
from repro.core.msgtypes import ALGORITHM_TYPE_BASE

#: algorithm-specific message types (above the reserved range)
SUBSCRIBE = ALGORITHM_TYPE_BASE + 10
UNSUBSCRIBE = ALGORITHM_TYPE_BASE + 11
PUBLISH = ALGORITHM_TYPE_BASE + 12


@dataclass
class _Subscription:
    """One predicate a peer (client or broker) asked us to serve."""

    subscriber: NodeId
    predicate: Predicate
    seq: int = 0


@dataclass
class DeliveryLog:
    """What a subscriber actually received (for experiment assertions)."""

    events: list[dict[str, AttributeValue]] = field(default_factory=list)

    def count(self) -> int:
        return len(self.events)


class ContentBasedBroker(Algorithm):
    """A broker node of the content-based overlay."""

    def __init__(self, neighbors: list[NodeId] | None = None, seed: int | None = None) -> None:
        super().__init__(seed=seed)
        self._neighbors = list(neighbors or [])  # broker mesh links
        self._subscriptions: list[_Subscription] = []
        self._forwarded: dict[NodeId, list[Predicate]] = {}
        self.published = 0
        self.forwarded_events = 0
        self.dropped_events = 0
        self.suppressed_subscriptions = 0
        self.register(SUBSCRIBE, self._on_subscribe)
        self.register(UNSUBSCRIBE, self._on_unsubscribe)
        self.register(PUBLISH, self._on_publish)

    def set_neighbors(self, neighbors: list[NodeId]) -> None:
        self._neighbors = list(neighbors)

    # ----------------------------------------------------------------- routing state

    def routing_predicates(self, peer: NodeId) -> list[Predicate]:
        """The predicates we currently owe to ``peer``."""
        return [sub.predicate for sub in self._subscriptions if sub.subscriber == peer]

    def _interest_of(self, peer: NodeId) -> list[Predicate]:
        return self.routing_predicates(peer)

    # ------------------------------------------------------------------- subscribe

    def _on_subscribe(self, msg: Message) -> Disposition:
        fields = msg.fields()
        subscriber = NodeId.parse(fields["subscriber"])
        predicate = Predicate.from_wire(fields["predicate"])
        self._subscriptions.append(_Subscription(subscriber, predicate, msg.seq))
        self._propagate(predicate, arrived_from=subscriber)
        return Disposition.DONE

    def _on_unsubscribe(self, msg: Message) -> Disposition:
        fields = msg.fields()
        subscriber = NodeId.parse(fields["subscriber"])
        predicate = Predicate.from_wire(fields["predicate"])
        self._subscriptions = [
            sub for sub in self._subscriptions
            if not (sub.subscriber == subscriber and sub.predicate == predicate)
        ]
        return Disposition.DONE

    def _propagate(self, predicate: Predicate, arrived_from: NodeId) -> None:
        """Forward the subscription to broker neighbours, unless covered."""
        for neighbor in self._neighbors:
            if neighbor == arrived_from:
                continue
            already = self._forwarded.setdefault(neighbor, [])
            if any(existing.covers(predicate) for existing in already):
                self.suppressed_subscriptions += 1
                continue
            already.append(predicate)
            forward = Message.with_fields(
                SUBSCRIBE, self.node_id, 0,
                subscriber=str(self.node_id),  # we aggregate for our subtree
                predicate=predicate.to_wire(),
            )
            self.send(forward, neighbor)

    # --------------------------------------------------------------------- publish

    def publish(self, event: dict[str, AttributeValue], app: AppId = 0) -> None:
        """Inject an event at this broker (the publisher's entry point)."""
        msg = Message(PUBLISH, self.node_id, app, event_to_wire(event))
        self.published += 1
        self._route(event, msg, arrived_from=self.node_id)

    def _on_publish(self, msg: Message) -> Disposition:
        event = event_from_wire(msg.payload)
        self._route(event, msg, arrived_from=msg.sender)
        return Disposition.DONE

    def _route(self, event: dict[str, AttributeValue], msg: Message,
               arrived_from: NodeId) -> None:
        targets = []
        for sub in self._subscriptions:
            if sub.subscriber == arrived_from or sub.subscriber == self.node_id:
                continue
            if sub.predicate.matches(event):
                targets.append(sub.subscriber)
        unique_targets = list(dict.fromkeys(targets))
        if not unique_targets:
            self.dropped_events += 1
            return
        # Content-based messages are small protocol messages in the engine's
        # eyes, but semantically they are data: clone before re-sending a
        # received message, per the Section 2.3 ownership rule.
        outgoing = Message(PUBLISH, self.node_id, msg.app, msg.payload)
        for target in unique_targets:
            self.send(outgoing.clone(), target)
            self.forwarded_events += 1


class ContentBasedClient(Algorithm):
    """A client node: subscribes at a broker, records deliveries."""

    def __init__(self, broker: NodeId | None = None, seed: int | None = None) -> None:
        super().__init__(seed=seed)
        self.broker = broker
        self.delivered = DeliveryLog()
        self.register(PUBLISH, self._on_delivery)
        self._subscription_seq = 0

    def set_broker(self, broker: NodeId) -> None:
        self.broker = broker

    def subscribe(self, predicate: Predicate) -> None:
        if self.broker is None:
            raise RuntimeError("client has no broker configured")
        self._subscription_seq += 1
        msg = Message.with_fields(
            SUBSCRIBE, self.node_id, 0,
            seq=self._subscription_seq,
            subscriber=str(self.node_id),
            predicate=predicate.to_wire(),
        )
        self.send(msg, self.broker)

    def unsubscribe(self, predicate: Predicate) -> None:
        if self.broker is None:
            raise RuntimeError("client has no broker configured")
        msg = Message.with_fields(
            UNSUBSCRIBE, self.node_id, 0,
            subscriber=str(self.node_id),
            predicate=predicate.to_wire(),
        )
        self.send(msg, self.broker)

    def _on_delivery(self, msg: Message) -> Disposition:
        self.delivered.events.append(event_from_wire(msg.payload))
        return Disposition.DONE
