"""Predicates and matching for content-based networking.

Section 3.1 of the paper singles out content-based networks as "a
natural fit to be supported by iOverlay": messages are not addressed to
nodes; instead "a node advertises predicates that define messages of
interest", and the network delivers each message to every client whose
predicate matches.

This module is the data model: typed attribute values, per-attribute
constraints, conjunctive filters, and predicates as disjunctions of
filters (the classic Siena/Gryphon structure).  Matching and *covering*
(does predicate P subsume filter F?) are what the routing algorithm in
:mod:`repro.algorithms.contentbased.algorithm` builds on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Mapping

from repro.errors import CodecError

AttributeValue = int | float | str

#: the supported constraint operators
OPERATORS = ("=", "!=", "<", "<=", ">", ">=", "prefix", "contains")


@dataclass(frozen=True)
class Constraint:
    """One condition on one message attribute, e.g. ``price < 100``."""

    attribute: str
    op: str
    value: AttributeValue

    def __post_init__(self) -> None:
        if self.op not in OPERATORS:
            raise ValueError(f"unknown operator {self.op!r}")
        if self.op in ("prefix", "contains") and not isinstance(self.value, str):
            raise ValueError(f"operator {self.op!r} needs a string operand")

    def matches(self, event: Mapping[str, AttributeValue]) -> bool:
        if self.attribute not in event:
            return False
        actual = event[self.attribute]
        expected = self.value
        try:
            if self.op == "=":
                return actual == expected
            if self.op == "!=":
                return actual != expected
            if self.op == "<":
                return actual < expected  # type: ignore[operator]
            if self.op == "<=":
                return actual <= expected  # type: ignore[operator]
            if self.op == ">":
                return actual > expected  # type: ignore[operator]
            if self.op == ">=":
                return actual >= expected  # type: ignore[operator]
            if self.op == "prefix":
                return isinstance(actual, str) and actual.startswith(str(expected))
            if self.op == "contains":
                return isinstance(actual, str) and str(expected) in actual
        except TypeError:
            return False  # int < "string" and friends: no match, no crash
        raise AssertionError(f"unhandled operator {self.op}")

    def covers(self, other: "Constraint") -> bool:
        """Conservative subsumption: every event matching ``other`` also
        matches ``self``.  Only comparable numeric/equality cases are
        decided; anything uncertain returns False (safe for routing —
        false negatives only cost extra advertisement traffic)."""
        if self.attribute != other.attribute:
            return False
        if self == other:
            return True
        if self.op == "=" or other.op in ("!=", "prefix", "contains"):
            # Equality only covers itself; the string operators are only
            # compared for identity (decided above).
            return False
        if other.op == "=":
            return self.matches({self.attribute: other.value})
        if not isinstance(self.value, (int, float)) or not isinstance(other.value, (int, float)):
            return False
        # Interval containment for one-sided numeric bounds.  "x < w" is
        # inside "x < v" iff w <= v; strict-vs-inclusive needs one epsilon
        # case: "x <= w" inside "x < v" requires w < v.
        if self.op in ("<", "<=") and other.op in ("<", "<="):
            if self.op == "<" and other.op == "<=":
                return other.value < self.value
            return other.value <= self.value
        if self.op in (">", ">=") and other.op in (">", ">="):
            if self.op == ">" and other.op == ">=":
                return other.value > self.value
            return other.value >= self.value
        return False


@dataclass(frozen=True)
class Filter:
    """A conjunction of constraints — all must match."""

    constraints: tuple[Constraint, ...]

    def __post_init__(self) -> None:
        if not self.constraints:
            raise ValueError("a filter needs at least one constraint")

    def matches(self, event: Mapping[str, AttributeValue]) -> bool:
        return all(constraint.matches(event) for constraint in self.constraints)

    def covers(self, other: "Filter") -> bool:
        """True if every event matching ``other`` matches ``self``:
        each of our constraints must be implied by one of theirs."""
        return all(
            any(mine.covers(theirs) for theirs in other.constraints)
            for mine in self.constraints
        )


@dataclass(frozen=True)
class Predicate:
    """A disjunction of filters — a subscriber's full interest."""

    filters: tuple[Filter, ...]

    def __post_init__(self) -> None:
        if not self.filters:
            raise ValueError("a predicate needs at least one filter")

    def matches(self, event: Mapping[str, AttributeValue]) -> bool:
        return any(filter_.matches(event) for filter_ in self.filters)

    def covers(self, other: "Predicate") -> bool:
        return all(
            any(mine.covers(theirs) for mine in self.filters)
            for theirs in other.filters
        )

    # --- convenience construction ---------------------------------------------

    @classmethod
    def of(cls, *clauses: dict[str, tuple[str, AttributeValue]]) -> "Predicate":
        """Build from dicts like ``{"price": ("<", 100), "sym": ("=", "X")}``
        (one dict per disjunct)."""
        filters = tuple(
            Filter(tuple(Constraint(attr, op, value) for attr, (op, value) in clause.items()))
            for clause in clauses
        )
        return cls(filters)

    # --- wire form ----------------------------------------------------------------

    def to_wire(self) -> str:
        return json.dumps(
            [
                [[c.attribute, c.op, c.value] for c in filter_.constraints]
                for filter_ in self.filters
            ],
            separators=(",", ":"),
        )

    @classmethod
    def from_wire(cls, text: str) -> "Predicate":
        try:
            raw = json.loads(text)
            filters = tuple(
                Filter(tuple(Constraint(attr, op, value) for attr, op, value in clause))
                for clause in raw
            )
            return cls(filters)
        except (TypeError, ValueError, json.JSONDecodeError) as exc:
            raise CodecError(f"malformed predicate: {exc}") from exc


def event_to_wire(event: Mapping[str, AttributeValue]) -> bytes:
    return json.dumps(dict(event), sort_keys=True, separators=(",", ":")).encode()


def event_from_wire(payload: bytes) -> dict[str, AttributeValue]:
    try:
        decoded = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed event: {exc}") from exc
    if not isinstance(decoded, dict):
        raise CodecError("event must be a JSON object")
    return decoded
