"""Content-based networking on iOverlay (Section 3.1's sketched fit)."""

from repro.algorithms.contentbased.algorithm import (
    PUBLISH,
    SUBSCRIBE,
    UNSUBSCRIBE,
    ContentBasedBroker,
    ContentBasedClient,
)
from repro.algorithms.contentbased.predicates import (
    Constraint,
    Filter,
    Predicate,
    event_from_wire,
    event_to_wire,
)

__all__ = [
    "Constraint",
    "ContentBasedBroker",
    "ContentBasedClient",
    "Filter",
    "PUBLISH",
    "Predicate",
    "SUBSCRIBE",
    "UNSUBSCRIBE",
    "event_from_wire",
    "event_to_wire",
]
