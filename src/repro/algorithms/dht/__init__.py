"""Structured key lookup (Chord) as a prefabricated iOverlay algorithm."""

from repro.algorithms.dht import ring
from repro.algorithms.dht.chord import ChordAlgorithm, LookupResult

__all__ = ["ChordAlgorithm", "LookupResult", "ring"]
