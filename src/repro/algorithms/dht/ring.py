"""Identifier-circle arithmetic for the Chord case study.

Chord [Stoica et al., SIGCOMM 2001] — one of the structured search
protocols the paper's introduction names as the target class for
overlay middleware — places nodes and keys on a circle of 2^m
identifiers.  This module holds the pure arithmetic: hashing to the
circle and the half-open/closed interval tests that all routing
decisions reduce to.
"""

from __future__ import annotations

import hashlib

from repro.core.ids import NodeId

#: bits of the identifier circle (2^16 ids: plenty for simulated rings,
#: small enough that fingers are readable in tests)
M = 16
CIRCLE = 1 << M


def hash_to_id(data: bytes | str) -> int:
    """Map arbitrary data onto the identifier circle (SHA-1, truncated)."""
    if isinstance(data, str):
        data = data.encode()
    return int.from_bytes(hashlib.sha1(data).digest()[:8], "big") % CIRCLE


def node_to_id(node: NodeId) -> int:
    """A node's identifier: the hash of its ip:port (as in Chord)."""
    return hash_to_id(str(node))


def in_open(x: int, a: int, b: int) -> bool:
    """x ∈ (a, b) on the circle.  Empty when a == b... except that in
    Chord the degenerate single-node case treats the full circle as the
    interval, which callers opt into explicitly via ``full_when_equal``
    helpers below — this primitive stays strict."""
    if a < b:
        return a < x < b
    if a > b:
        return x > a or x < b
    return False


def in_open_closed(x: int, a: int, b: int) -> bool:
    """x ∈ (a, b] on the circle; when a == b the interval is the whole
    circle (the single-node ring owns everything)."""
    if a < b:
        return a < x <= b
    if a > b:
        return x > a or x <= b
    return True


def distance(a: int, b: int) -> int:
    """Clockwise distance from a to b."""
    return (b - a) % CIRCLE


def finger_start(node_id: int, index: int) -> int:
    """The start of finger ``index`` (0-based): node_id + 2^index."""
    if not 0 <= index < M:
        raise ValueError(f"finger index out of range: {index}")
    return (node_id + (1 << index)) % CIRCLE
