"""Chord on iOverlay: structured key lookup as an ``iAlgorithm``.

The protocol is the classic one: every node keeps a successor, a
predecessor and a finger table; ``find_successor`` requests are routed
greedily through the closest preceding finger; periodic *stabilization*
repairs the ring after joins and failures; keys live at their
identifier's successor and are handed over when responsibility shifts.

Everything below is ordinary message-driven algorithm code — the engine
supplies connections, timers, failure notifications and delivery, which
is precisely the division of labour the paper advertises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.dht import ring
from repro.core.algorithm import Algorithm, Disposition
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import ALGORITHM_TYPE_BASE

FIND_SUCC = ALGORITHM_TYPE_BASE + 30
FIND_SUCC_REPLY = ALGORITHM_TYPE_BASE + 31
GET_PRED = ALGORITHM_TYPE_BASE + 32
GET_PRED_REPLY = ALGORITHM_TYPE_BASE + 33
NOTIFY = ALGORITHM_TYPE_BASE + 34
STORE = ALGORITHM_TYPE_BASE + 35
FETCH = ALGORITHM_TYPE_BASE + 36
FETCH_REPLY = ALGORITHM_TYPE_BASE + 37
HANDOFF = ALGORITHM_TYPE_BASE + 38

_TIMER_STABILIZE = 31
_TIMER_FIX_FINGERS = 32
_TIMER_JOIN_RETRY = 33


@dataclass
class LookupResult:
    """Outcome of one resolved lookup request."""

    key_id: int
    owner: NodeId
    hops: int
    value: str | None = None
    found: bool = False


@dataclass
class _PendingRequest:
    purpose: str  # "join" | "finger" | "lookup" | "get" | "put"
    extra: dict = field(default_factory=dict)


class ChordAlgorithm(Algorithm):
    """One Chord node."""

    def __init__(
        self,
        stabilize_interval: float = 1.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        self.stabilize_interval = stabilize_interval
        self.node_hash: int | None = None  # set on bind (needs node_id)
        self.successor: NodeId | None = None
        self.predecessor: NodeId | None = None
        self.fingers: list[NodeId | None] = [None] * ring.M
        self.store: dict[int, str] = {}
        self.results: dict[int, LookupResult] = {}  # request id -> result
        self.lookup_hops: list[int] = []
        self._pending: dict[int, _PendingRequest] = {}
        self._next_request = 1
        self._next_finger = 0
        self._joined = False

        self.register(FIND_SUCC, self._on_find_succ)
        self.register(FIND_SUCC_REPLY, self._on_find_succ_reply)
        self.register(GET_PRED, self._on_get_pred)
        self.register(GET_PRED_REPLY, self._on_get_pred_reply)
        self.register(NOTIFY, self._on_notify)
        self.register(STORE, self._on_store)
        self.register(FETCH, self._on_fetch)
        self.register(FETCH_REPLY, self._on_fetch_reply)
        self.register(HANDOFF, self._on_handoff)

    # ------------------------------------------------------------------ lifecycle

    def on_start(self) -> None:
        self.node_hash = ring.node_to_id(self.node_id)
        self.engine.set_timer(self.stabilize_interval, _TIMER_STABILIZE)
        self.engine.set_timer(self.stabilize_interval * 1.5, _TIMER_FIX_FINGERS)
        self.engine.set_timer(self.stabilize_interval * 2, _TIMER_JOIN_RETRY)

    def on_bootstrapped(self) -> None:
        if self._joined:
            return
        hosts = self.known_hosts.as_list()
        if not hosts:
            # First node: a ring of one.
            self.successor = self.node_id
            self._joined = True
            return
        self._attempt_join()

    def _attempt_join(self) -> None:
        """(Re)try joining: a join attempt may land on a node that is not
        in any ring yet and evaporate, so retries run until a successor
        is learned (the _TIMER_JOIN_RETRY path)."""
        hosts = self.known_hosts.as_list()
        if not hosts or self.node_hash is None:
            return
        self._joined = True
        request = self._new_request(_PendingRequest("join"))
        self._route_find_succ(self.node_hash, request, origin=self.node_id,
                              first_hop=self.rng.choice(hosts))

    # --------------------------------------------------------------------- client API

    def put(self, key: str, value: str) -> int:
        """Store ``key -> value`` at the responsible node; returns request id."""
        key_id = ring.hash_to_id(key)
        request = self._new_request(_PendingRequest("put", {"key_id": key_id, "value": value}))
        self._lookup_owner(key_id, request)
        return request

    def get(self, key: str) -> int:
        """Resolve ``key``; the value lands in :attr:`results`."""
        key_id = ring.hash_to_id(key)
        request = self._new_request(_PendingRequest("get", {"key_id": key_id}))
        self._lookup_owner(key_id, request)
        return request

    def lookup(self, key: str) -> int:
        """Pure routing lookup (no storage side effects)."""
        key_id = ring.hash_to_id(key)
        request = self._new_request(_PendingRequest("lookup", {"key_id": key_id}))
        self._lookup_owner(key_id, request)
        return request

    def _lookup_owner(self, key_id: int, request: int) -> None:
        assert self.node_hash is not None and self.successor is not None
        if ring.in_open_closed(key_id, self.node_hash, ring.node_to_id(self.successor)):
            self._resolve(request, owner=self.successor, hops=0)
        else:
            self._route_find_succ(key_id, request, origin=self.node_id,
                                  first_hop=self._closest_preceding(key_id))

    # ------------------------------------------------------------------- routing

    def _route_find_succ(self, target: int, request: int, origin: NodeId,
                         first_hop: NodeId, hops: int = 0) -> None:
        msg = Message.with_fields(
            FIND_SUCC, self.node_id, 0,
            target=target, request=request, origin=str(origin), hops=hops,
        )
        self.send(msg, first_hop)

    def _on_find_succ(self, msg: Message) -> Disposition:
        fields = msg.fields()
        target = int(fields["target"])
        origin = NodeId.parse(fields["origin"])
        hops = int(fields["hops"]) + 1
        assert self.node_hash is not None
        if self.successor is None:
            # Not in a ring yet: relay toward someone who might be, so
            # early joins during simultaneous bootstrap still resolve.
            candidates = [n for n in self.known_hosts if n not in (origin, self.node_id)]
            if candidates and hops < ring.M * 2:
                relay = Message.with_fields(
                    FIND_SUCC, self.node_id, 0,
                    target=target, request=int(fields["request"]),
                    origin=str(origin), hops=hops,
                )
                self.send(relay, self.rng.choice(candidates))
            return Disposition.DONE
        succ_hash = ring.node_to_id(self.successor)
        if ring.in_open_closed(target, self.node_hash, succ_hash):
            reply = Message.with_fields(
                FIND_SUCC_REPLY, self.node_id, 0,
                request=int(fields["request"]),
                owner=str(self.successor),
                hops=hops,
            )
            self.send(reply, origin)
        elif hops < ring.M * 2:
            next_hop = self._closest_preceding(target)
            if next_hop == self.node_id:
                next_hop = self.successor
            forwarded = Message.with_fields(
                FIND_SUCC, self.node_id, 0,
                target=target, request=int(fields["request"]),
                origin=str(origin), hops=hops,
            )
            self.send(forwarded, next_hop)
        return Disposition.DONE

    def _closest_preceding(self, target: int) -> NodeId:
        assert self.node_hash is not None
        for finger in reversed(self.fingers):
            if finger is None or finger == self.node_id:
                continue
            if ring.in_open(ring.node_to_id(finger), self.node_hash, target):
                return finger
        return self.successor or self.node_id

    def _on_find_succ_reply(self, msg: Message) -> Disposition:
        fields = msg.fields()
        request = int(fields["request"])
        owner = NodeId.parse(fields["owner"])
        self._resolve(request, owner=owner, hops=int(fields["hops"]))
        return Disposition.DONE

    def _resolve(self, request: int, owner: NodeId, hops: int) -> None:
        pending = self._pending.pop(request, None)
        if pending is None:
            return
        if pending.purpose == "join":
            self.successor = owner
            self.send(Message.with_fields(NOTIFY, self.node_id, 0,
                                          node=str(self.node_id)), owner)
            return
        if pending.purpose == "finger":
            self.fingers[pending.extra["index"]] = owner
            return
        key_id = pending.extra.get("key_id", 0)
        result = LookupResult(key_id=key_id, owner=owner, hops=hops)
        self.lookup_hops.append(hops)
        if pending.purpose == "put":
            self.send(Message.with_fields(
                STORE, self.node_id, 0,
                key_id=key_id, value=pending.extra["value"],
            ), owner)
            result.found = True
        elif pending.purpose == "get":
            self.send(Message.with_fields(
                FETCH, self.node_id, 0,
                key_id=key_id, request=request, origin=str(self.node_id),
            ), owner)
            self._pending[request] = _PendingRequest("get-wait", {"key_id": key_id})
        self.results[request] = result

    # --------------------------------------------------------------------- storage

    def _on_store(self, msg: Message) -> Disposition:
        fields = msg.fields()
        self.store[int(fields["key_id"])] = str(fields["value"])
        return Disposition.DONE

    def _on_fetch(self, msg: Message) -> Disposition:
        fields = msg.fields()
        key_id = int(fields["key_id"])
        reply = Message.with_fields(
            FETCH_REPLY, self.node_id, 0,
            request=int(fields["request"]),
            key_id=key_id,
            value=self.store.get(key_id),
            found=key_id in self.store,
        )
        self.send(reply, NodeId.parse(fields["origin"]))
        return Disposition.DONE

    def _on_fetch_reply(self, msg: Message) -> Disposition:
        fields = msg.fields()
        request = int(fields["request"])
        self._pending.pop(request, None)
        result = self.results.get(request)
        if result is not None:
            result.value = fields.get("value")
            result.found = bool(fields.get("found"))
        return Disposition.DONE

    def _on_handoff(self, msg: Message) -> Disposition:
        for key, value in msg.fields().get("entries", {}).items():
            self.store[int(key)] = str(value)
        return Disposition.DONE

    # ----------------------------------------------------------------- stabilization

    def on_timer(self, token: int) -> Disposition:
        if token == _TIMER_STABILIZE:
            self._stabilize()
            self.engine.set_timer(self.stabilize_interval, _TIMER_STABILIZE)
        elif token == _TIMER_FIX_FINGERS:
            self._fix_next_finger()
            self.engine.set_timer(self.stabilize_interval, _TIMER_FIX_FINGERS)
        elif token == _TIMER_JOIN_RETRY:
            if self.successor is None:
                self._attempt_join()
                self.engine.set_timer(self.stabilize_interval * 2, _TIMER_JOIN_RETRY)
        return Disposition.DONE

    def _stabilize(self) -> None:
        if self.successor is None or self.successor == self.node_id:
            return
        self.send(Message.with_fields(GET_PRED, self.node_id, 0,
                                      origin=str(self.node_id)), self.successor)

    def _on_get_pred(self, msg: Message) -> Disposition:
        reply = Message.with_fields(
            GET_PRED_REPLY, self.node_id, 0,
            predecessor=str(self.predecessor) if self.predecessor else None,
        )
        self.send(reply, NodeId.parse(msg.fields()["origin"]))
        return Disposition.DONE

    def _on_get_pred_reply(self, msg: Message) -> Disposition:
        assert self.node_hash is not None
        text = msg.fields().get("predecessor")
        if text and self.successor is not None:
            candidate = NodeId.parse(text)
            if candidate != self.node_id and ring.in_open(
                ring.node_to_id(candidate), self.node_hash,
                ring.node_to_id(self.successor),
            ):
                self.successor = candidate
        if self.successor is not None and self.successor != self.node_id:
            self.send(Message.with_fields(NOTIFY, self.node_id, 0,
                                          node=str(self.node_id)), self.successor)
        return Disposition.DONE

    def _on_notify(self, msg: Message) -> Disposition:
        assert self.node_hash is not None
        candidate = NodeId.parse(msg.fields()["node"])
        if candidate == self.node_id:
            return Disposition.DONE
        if self.predecessor is None or ring.in_open(
            ring.node_to_id(candidate), ring.node_to_id(self.predecessor), self.node_hash
        ):
            old = self.predecessor
            self.predecessor = candidate
            self._handoff_keys(old, candidate)
        # A lone node adopts its first contact as successor too.
        if self.successor == self.node_id:
            self.successor = candidate
        return Disposition.DONE

    def _handoff_keys(self, old_pred: NodeId | None, new_pred: NodeId) -> None:
        """Transfer keys the new predecessor is now responsible for."""
        assert self.node_hash is not None
        new_hash = ring.node_to_id(new_pred)
        moving = {
            key: value for key, value in self.store.items()
            if not ring.in_open_closed(key, new_hash, self.node_hash)
        }
        if not moving:
            return
        for key in moving:
            del self.store[key]
        self.send(Message.with_fields(
            HANDOFF, self.node_id, 0,
            entries={str(k): v for k, v in moving.items()},
        ), new_pred)

    def _fix_next_finger(self) -> None:
        if self.successor is None or self.node_hash is None:
            return
        index = self._next_finger
        self._next_finger = (self._next_finger + 1) % ring.M
        target = ring.finger_start(self.node_hash, index)
        if ring.in_open_closed(target, self.node_hash, ring.node_to_id(self.successor)):
            self.fingers[index] = self.successor
            return
        request = self._new_request(_PendingRequest("finger", {"index": index}))
        self._route_find_succ(target, request, origin=self.node_id,
                              first_hop=self._closest_preceding(target))

    # ------------------------------------------------------------------- failures

    def on_broken_link(self, msg: Message) -> Disposition:
        fields = msg.fields()
        peer = NodeId.parse(fields["peer"])
        if peer == self.successor:
            # Fall back to the next live finger (simplified successor list).
            replacement = next(
                (f for f in self.fingers if f is not None and f not in (peer, self.node_id)),
                None,
            )
            self.successor = replacement or self.node_id
        if peer == self.predecessor:
            self.predecessor = None
        self.fingers = [None if f == peer else f for f in self.fingers]
        return super().on_broken_link(msg) or Disposition.DONE

    # -------------------------------------------------------------------- helpers

    def _new_request(self, pending: _PendingRequest) -> int:
        request = self._next_request
        self._next_request += 1
        self._pending[request] = pending
        return request

    def ring_position(self) -> int:
        assert self.node_hash is not None
        return self.node_hash
