"""Arithmetic in the Galois field GF(2^8).

The network-coding case study (Section 3.2) codes messages from multiple
incoming streams into one outgoing stream "using linear codes in the
Galois Field (and more specifically, with GF(2^8))".

We use the AES polynomial x^8 + x^4 + x^3 + x + 1 (0x11B) with
log/antilog tables built from the generator 0x03, giving O(1) multiply,
divide and inverse.  Bulk byte-array helpers power the per-message
encode/decode hot path.
"""

from __future__ import annotations

#: The reduction polynomial (AES): x^8 + x^4 + x^3 + x + 1.
POLY = 0x11B
#: A generator of the multiplicative group under :data:`POLY`.
GENERATOR = 0x03
ORDER = 255  # size of the multiplicative group


def _build_tables() -> tuple[list[int], list[int]]:
    exp = [0] * (2 * ORDER)
    log = [0] * 256
    value = 1
    for power in range(ORDER):
        exp[power] = value
        log[value] = power
        # multiply by the generator 0x03 = x + 1: value*2 ^ value
        doubled = value << 1
        if doubled & 0x100:
            doubled ^= POLY
        value = doubled ^ value
    for power in range(ORDER, 2 * ORDER):
        exp[power] = exp[power - ORDER]
    return exp, log


_EXP, _LOG = _build_tables()


def add(a: int, b: int) -> int:
    """Field addition (= subtraction): bitwise XOR."""
    return a ^ b


sub = add  # characteristic 2: addition is its own inverse


def mul(a: int, b: int) -> int:
    """Field multiplication via log/antilog tables."""
    if a == 0 or b == 0:
        return 0
    return _EXP[_LOG[a] + _LOG[b]]


def inv(a: int) -> int:
    """Multiplicative inverse; raises ``ZeroDivisionError`` for 0."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return _EXP[ORDER - _LOG[a]]


def div(a: int, b: int) -> int:
    """Field division ``a / b``."""
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(256)")
    if a == 0:
        return 0
    return _EXP[_LOG[a] - _LOG[b] + ORDER]


def pow_(a: int, exponent: int) -> int:
    """Field exponentiation ``a ** exponent`` (exponent may be negative)."""
    if a == 0:
        if exponent == 0:
            return 1
        if exponent < 0:
            raise ZeroDivisionError("0 has no inverse in GF(256)")
        return 0
    return _EXP[(_LOG[a] * exponent) % ORDER]


# --- bulk operations on byte strings (the per-payload hot path) ----------------


def _build_mul_table() -> list[bytes]:
    """The full 256x256 multiplication table, one 256-byte row per scalar.

    Row ``c`` is the translation table mapping byte ``v`` to ``c * v``,
    so scaling a payload is a single C-speed ``bytes.translate`` pass.
    Built once at import (64 KiB) from the log/antilog tables.
    """
    rows = [bytes(256)]  # row 0: everything maps to 0
    exp, log = _EXP, _LOG
    for coefficient in range(1, 256):
        log_c = log[coefficient]
        rows.append(bytes(
            exp[log_c + log[value]] if value else 0 for value in range(256)
        ))
    return rows


_MUL_TABLE = _build_mul_table()


def scale_bytes(coefficient: int, data: bytes) -> bytes:
    """Multiply every byte of ``data`` by ``coefficient`` in GF(256)."""
    if coefficient == 0:
        return bytes(len(data))
    if coefficient == 1:
        return data
    return data.translate(_MUL_TABLE[coefficient])


def add_bytes(a: bytes, b: bytes) -> bytes:
    """Element-wise field addition of two equal-length byte strings.

    XOR of the whole strings as big integers: one C-level pass instead
    of a Python loop per byte.
    """
    length = len(a)
    if length != len(b):
        raise ValueError(f"length mismatch: {length} != {len(b)}")
    return (
        int.from_bytes(a, "little") ^ int.from_bytes(b, "little")
    ).to_bytes(length, "little")


def axpy_bytes(coefficient: int, x: bytes, y: bytes) -> bytes:
    """Return ``coefficient * x + y`` over GF(256), element-wise."""
    if coefficient == 0:
        if len(x) != len(y):
            raise ValueError(f"length mismatch: {len(x)} != {len(y)}")
        return y
    return add_bytes(scale_bytes(coefficient, x), y)
