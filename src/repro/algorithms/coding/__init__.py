"""Network coding over GF(256): the Fig. 8 case study."""

from repro.algorithms.coding import gf256
from repro.algorithms.coding.algorithm import (
    CodedSourceAlgorithm,
    CodingNodeAlgorithm,
    DecodingSinkAlgorithm,
)
from repro.algorithms.coding.linear import CodedPayload, GenerationDecoder, combine

__all__ = [
    "CodedPayload",
    "CodedSourceAlgorithm",
    "CodingNodeAlgorithm",
    "DecodingSinkAlgorithm",
    "GenerationDecoder",
    "combine",
    "gf256",
]
