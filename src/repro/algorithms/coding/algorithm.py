"""Overlay algorithms for the network-coding case study (Section 3.2).

Three roles reproduce the butterfly experiment of Fig. 8:

- :class:`CodedSourceAlgorithm` — the data source splits its stream into
  ``k`` sub-streams (messages are wrapped as unit-vector
  :class:`~repro.algorithms.coding.linear.CodedPayload`), sending
  sub-stream ``i`` to downstream ``i``;
- :class:`CodingNodeAlgorithm` — uses the engine's **hold** mechanism to
  buffer payloads of a generation until it has gathered ``k`` linearly
  independent ones, then emits their combination (``a + b`` in GF(2^8)
  for the paper's butterfly) to its downstreams;
- :class:`DecodingSinkAlgorithm` — runs incremental Gaussian elimination
  per generation and measures *effective throughput* as innovative bytes
  per second: duplicate copies carry no new information and do not
  count, which is exactly how the paper attributes 300 KB/s vs 400 KB/s
  to the receivers in Figs. 8(a) and 8(b).

Relay (helper) nodes need no coding awareness at all — they are plain
:class:`~repro.algorithms.forwarding.CopyForwardAlgorithm` instances, a
direct consequence of coded payloads being opaque data messages.
"""

from __future__ import annotations

from repro.algorithms.coding.linear import CodedPayload, GenerationDecoder, combine
from repro.core.algorithm import Algorithm, Disposition
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.core.stats import ThroughputMeter
from repro.errors import DecodingError


class CodedSourceAlgorithm(Algorithm):
    """Split locally-produced data into ``k`` coded sub-streams.

    Message ``seq`` maps to generation ``seq // k`` and stream index
    ``seq % k``; sub-stream ``i`` goes to ``downstreams[i]``.
    """

    def __init__(self, downstreams: list[NodeId] | None = None, seed: int | None = None) -> None:
        super().__init__(seed=seed)
        self._downstreams = list(downstreams or [])
        self.produced = 0

    def set_downstreams(self, downstreams: list[NodeId]) -> None:
        if not downstreams:
            raise ValueError("a coded source needs at least one downstream")
        self._downstreams = list(downstreams)

    @property
    def k(self) -> int:
        return len(self._downstreams)

    def on_data(self, msg: Message) -> Disposition:
        k = self.k
        if k == 0:
            return Disposition.DONE
        generation, index = divmod(msg.seq, k)
        coded = CodedPayload.original(generation, index, k, msg.payload)
        wrapped = Message(MsgType.DATA, msg.sender, msg.app, coded.pack(), seq=msg.seq)
        self.send(wrapped, self._downstreams[index])
        self.produced += 1
        return Disposition.DONE


class CodingNodeAlgorithm(Algorithm):
    """Code ``k`` incoming sub-streams into one outgoing stream.

    Holds payloads per generation (the engine's ``hold`` return) until
    ``k`` linearly independent ones arrived, then sends one combination
    to every downstream.  ``coefficients=None`` uses all-ones (the
    paper's ``a + b``); ``coefficients="random"`` draws random nonzero
    coefficients per combination (classic RLNC).
    """

    def __init__(
        self,
        k: int,
        downstreams: list[NodeId] | None = None,
        coefficients: list[int] | str | None = None,
        max_pending_generations: int = 256,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._downstreams = list(downstreams or [])
        self._coefficients = coefficients
        self._max_pending = max_pending_generations
        # generation -> (payload list, rank tracker)
        self._pending: dict[int, tuple[list[CodedPayload], GenerationDecoder]] = {}
        self.combined = 0
        self.dropped_generations = 0
        self.non_innovative = 0
        self.effective = ThroughputMeter()

    def set_downstreams(self, downstreams: list[NodeId]) -> None:
        self._downstreams = list(downstreams)

    def on_data(self, msg: Message) -> Disposition:
        try:
            payload = CodedPayload.unpack(msg.payload)
        except DecodingError:
            return Disposition.DONE  # not coded traffic; ignore
        if payload.k != self.k:
            return Disposition.DONE
        stored, tracker = self._pending.get(payload.generation, (None, None))
        if stored is None:
            stored = []
            tracker = GenerationDecoder(self.k, len(payload.data))
            self._pending[payload.generation] = (stored, tracker)
            self._evict_if_needed(keep=payload.generation)
        assert tracker is not None
        if not tracker.add(payload):
            self.non_innovative += 1
            return Disposition.DONE
        self.effective.record(len(payload.data), self.engine.now())
        stored.append(payload)
        if tracker.rank < self.k:
            return Disposition.HOLD
        # Generation complete: emit one combination and release the hold.
        del self._pending[payload.generation]
        coded = combine(stored, self._pick_coefficients())
        out = Message(
            MsgType.DATA, msg.sender, msg.app, coded.pack(), seq=payload.generation
        )
        for dest in self._downstreams:
            self.send(out, dest)
        self.combined += 1
        return Disposition.DONE

    def _pick_coefficients(self) -> list[int]:
        if self._coefficients is None:
            return [1] * self.k
        if self._coefficients == "random":
            return [self.rng.randrange(1, 256) for _ in range(self.k)]
        return list(self._coefficients)  # type: ignore[arg-type]

    def _evict_if_needed(self, keep: int) -> None:
        while len(self._pending) > self._max_pending:
            oldest = min(gen for gen in self._pending if gen != keep)
            del self._pending[oldest]
            self.dropped_generations += 1

    @property
    def held_generations(self) -> int:
        return len(self._pending)

    def effective_rate(self) -> float:
        """Innovative bytes per second received by this coding node."""
        return self.effective.rate(self.engine.now())


class DecodingSinkAlgorithm(Algorithm):
    """Decode generations and measure effective (innovative) throughput.

    With ``forward_to`` set, the node additionally relays every raw data
    message to the given downstreams (so intermediate nodes like E in
    Fig. 8 can be measured *and* keep forwarding).
    """

    def __init__(
        self,
        k: int,
        forward_to: list[NodeId] | None = None,
        max_open_generations: int = 1024,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self._forward_to = list(forward_to or [])
        self._max_open = max_open_generations
        self._decoders: dict[int, GenerationDecoder] = {}
        self._completed: set[int] = set()
        self.effective = ThroughputMeter()
        self.raw = ThroughputMeter()
        self.decoded_generations = 0
        self.innovative_payloads = 0
        self.duplicate_payloads = 0

    def set_forward_to(self, downstreams: list[NodeId]) -> None:
        self._forward_to = list(downstreams)

    def on_data(self, msg: Message) -> Disposition:
        now = self.engine.now()
        self.raw.record(msg.size, now)
        for dest in self._forward_to:
            self.send(msg, dest)
        try:
            payload = CodedPayload.unpack(msg.payload)
        except DecodingError:
            return Disposition.DONE
        if payload.k != self.k or payload.generation in self._completed:
            self.duplicate_payloads += 1
            return Disposition.DONE
        decoder = self._decoders.get(payload.generation)
        if decoder is None:
            decoder = GenerationDecoder(self.k, len(payload.data))
            self._decoders[payload.generation] = decoder
            while len(self._decoders) > self._max_open:
                oldest = min(self._decoders)
                del self._decoders[oldest]
        if decoder.add(payload):
            self.innovative_payloads += 1
            # Every innovative payload contributes one original's worth of
            # information: that is the effective goodput of the receiver.
            self.effective.record(len(payload.data), now)
        else:
            self.duplicate_payloads += 1
        if decoder.complete:
            originals = decoder.originals()  # exercises the full decode
            del self._decoders[payload.generation]
            self._completed.add(payload.generation)
            self.decoded_generations += 1
            self.on_generation_decoded(payload.generation, originals)
        return Disposition.DONE

    def on_generation_decoded(self, generation: int, originals: list[bytes]) -> None:
        """Hook: a full generation decoded to its original payloads.

        The default discards the data (throughput studies only need the
        counters); applications that consume the stream — e.g. the
        cluster byte-identity scenarios — override this.
        """

    def effective_rate(self) -> float:
        """Innovative bytes per second, measured over the sliding window."""
        return self.effective.rate(self.engine.now())

    def raw_rate(self) -> float:
        return self.raw.rate(self.engine.now())
