"""Linear combination and decoding of message generations over GF(256).

A *generation* is the unit of coding: the source splits a stream into
blocks of ``k`` original payloads; any coded payload carries a length-k
coefficient vector describing which linear combination it is.  A
receiver decodes a generation as soon as it has gathered k linearly
independent coded payloads (Gaussian elimination over GF(256)).

The butterfly experiment of Fig. 8 is the special case k = 2 with the
coding node combining one payload from each incoming stream.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.coding import gf256
from repro.errors import DecodingError


@dataclass(frozen=True)
class CodedPayload:
    """A linear combination of a generation's original payloads."""

    generation: int
    coefficients: tuple[int, ...]
    data: bytes

    def __post_init__(self) -> None:
        if not self.coefficients:
            raise ValueError("coefficient vector must be non-empty")
        # One bytes() round-trip validates every element is in 0..255 at
        # C speed (no per-element Python loop).
        try:
            bytes(self.coefficients)
        except (ValueError, TypeError) as exc:
            raise ValueError("coefficients must be GF(256) elements") from exc

    @property
    def k(self) -> int:
        return len(self.coefficients)

    # --- wire form: [generation u32][k u16][coeffs...][data] -----------------

    def pack(self) -> bytes:
        header = (
            self.generation.to_bytes(4, "big")
            + self.k.to_bytes(2, "big")
            + bytes(self.coefficients)
        )
        return header + self.data

    @classmethod
    def unpack(cls, blob: bytes) -> "CodedPayload":
        if len(blob) < 6:
            raise DecodingError("coded payload too short")
        generation = int.from_bytes(blob[:4], "big")
        k = int.from_bytes(blob[4:6], "big")
        if k == 0 or len(blob) < 6 + k:
            raise DecodingError("corrupt coefficient vector")
        coefficients = tuple(blob[6 : 6 + k])
        return cls(generation, coefficients, blob[6 + k :])

    @classmethod
    def original(cls, generation: int, index: int, k: int, data: bytes) -> "CodedPayload":
        """Wrap an uncoded payload as the unit-vector combination e_index."""
        if not 0 <= index < k:
            raise ValueError(f"index {index} out of range for k={k}")
        coefficients = tuple(1 if i == index else 0 for i in range(k))
        return cls(generation, coefficients, data)


def combine(payloads: list[CodedPayload], coefficients: list[int]) -> CodedPayload:
    """Linear combination ``sum(c_i * p_i)`` of same-generation payloads."""
    if not payloads:
        raise ValueError("nothing to combine")
    if len(payloads) != len(coefficients):
        raise ValueError("one coefficient per payload required")
    generation = payloads[0].generation
    k = payloads[0].k
    length = len(payloads[0].data)
    if any(p.generation != generation or p.k != k or len(p.data) != length for p in payloads):
        raise ValueError("payloads must share generation, k and length")
    # Accumulate both the coefficient vector and the payload as integers:
    # scale via one translate pass each, then XOR whole strings at once.
    acc_coeffs = 0
    acc_data = 0
    for coefficient, payload in zip(coefficients, payloads):
        if coefficient == 0:
            continue
        acc_coeffs ^= int.from_bytes(
            gf256.scale_bytes(coefficient, bytes(payload.coefficients)), "little"
        )
        acc_data ^= int.from_bytes(gf256.scale_bytes(coefficient, payload.data), "little")
    out_coeffs = tuple(acc_coeffs.to_bytes(k, "little"))
    out_data = acc_data.to_bytes(length, "little")
    return CodedPayload(generation, out_coeffs, out_data)


class GenerationDecoder:
    """Incremental Gaussian elimination for one generation.

    Feed coded payloads with :meth:`add`; once :attr:`complete`,
    :meth:`originals` returns the k source payloads in order.
    """

    def __init__(self, k: int, payload_len: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k
        self.payload_len = payload_len
        # rows[i] holds a payload whose leading (pivot) coefficient is at
        # column i and equals 1, with zeros left of it.  Coefficient
        # vectors are kept as bytes so elimination is translate + XOR.
        self._rows: list[tuple[bytes, bytes] | None] = [None] * k
        self.rank = 0
        self.redundant = 0

    @property
    def complete(self) -> bool:
        return self.rank == self.k

    def add(self, payload: CodedPayload) -> bool:
        """Insert a coded payload; returns True if it was innovative."""
        if payload.k != self.k:
            raise DecodingError(f"expected k={self.k}, got {payload.k}")
        if len(payload.data) != self.payload_len:
            raise DecodingError("payload length mismatch within generation")
        coeffs = bytes(payload.coefficients)
        data = payload.data
        for column in range(self.k):
            factor = coeffs[column]
            if factor == 0:
                continue
            existing = self._rows[column]
            if existing is None:
                # Normalize the pivot to 1 and store.
                pivot_inv = gf256.inv(factor)
                coeffs = gf256.scale_bytes(pivot_inv, coeffs)
                data = gf256.scale_bytes(pivot_inv, data)
                self._rows[column] = (coeffs, data)
                self.rank += 1
                return True
            # Eliminate this column using the stored row (translate + XOR).
            row_coeffs, row_data = existing
            coeffs = gf256.axpy_bytes(factor, row_coeffs, coeffs)
            data = gf256.axpy_bytes(factor, row_data, data)
        self.redundant += 1
        return False

    def originals(self) -> list[bytes]:
        """Back-substitute and return the k original payloads, in order."""
        if not self.complete:
            raise DecodingError(f"generation incomplete: rank {self.rank}/{self.k}")
        # Copy rows for back substitution (upper-triangular with unit pivots).
        rows = [entry for entry in self._rows if entry is not None]
        for i in range(self.k - 1, -1, -1):
            coeffs_i, data_i = rows[i]
            for j in range(i + 1, self.k):
                factor = coeffs_i[j]
                if factor:
                    coeffs_j, data_j = rows[j]
                    coeffs_i = gf256.axpy_bytes(factor, coeffs_j, coeffs_i)
                    data_i = gf256.axpy_bytes(factor, data_j, data_i)
            rows[i] = (coeffs_i, data_i)
        return [data for _, data in rows]
