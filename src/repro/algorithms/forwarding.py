"""Baseline forwarding algorithms used by the engine-correctness studies.

These are the "simple algorithm" of Section 2.4: identical copies of
every data message are sent to all configured downstream nodes; when a
node has multiple upstreams, no merging is performed (every received
copy is forwarded).  A node with no downstreams is a pure sink that
counts what it receives.
"""

from __future__ import annotations

from repro.core.algorithm import Algorithm, Disposition
from repro.core.ids import NodeId
from repro.core.message import Message


class CopyForwardAlgorithm(Algorithm):
    """Forward every data message, by reference, to a static downstream set."""

    def __init__(self, downstreams: list[NodeId] | None = None, seed: int | None = None) -> None:
        super().__init__(seed=seed)
        self._downstreams: list[NodeId] = list(downstreams or [])
        self.received = 0
        self.received_bytes = 0
        self.forwarded = 0

    def set_downstreams(self, downstreams: list[NodeId]) -> None:
        """(Re)configure where data is copied to; usable before or at runtime."""
        self._downstreams = list(downstreams)

    def add_downstream(self, dest: NodeId) -> None:
        if dest not in self._downstreams:
            self._downstreams.append(dest)

    def remove_downstream(self, dest: NodeId) -> None:
        self._downstreams = [node for node in self._downstreams if node != dest]

    @property
    def downstream_targets(self) -> list[NodeId]:
        return list(self._downstreams)

    def on_data(self, msg: Message) -> Disposition:
        self.received += 1
        self.received_bytes += msg.size
        for dest in self._downstreams:
            # Data messages may be re-sent as-is: the engine guarantees
            # zero-copy forwarding for type ``data`` (Section 2.3).
            self.send(msg, dest)
            self.forwarded += 1
        return Disposition.DONE

    def on_broken_link(self, msg: Message) -> Disposition:
        fields = msg.fields()
        if fields.get("direction") == "down":
            self.remove_downstream(NodeId.parse(fields["peer"]))
        return super().on_broken_link(msg) or Disposition.DONE


class SinkAlgorithm(CopyForwardAlgorithm):
    """Consume everything; convenience alias used by tests and benches."""

    def __init__(self, seed: int | None = None) -> None:
        super().__init__(downstreams=[], seed=seed)


class ChainRelayAlgorithm(CopyForwardAlgorithm):
    """Relay to exactly one downstream — the Fig. 5 chain workload."""

    def __init__(self, next_hop: NodeId | None = None, seed: int | None = None) -> None:
        super().__init__(downstreams=[next_hop] if next_hop else [], seed=seed)

    def set_next_hop(self, next_hop: NodeId) -> None:
        self.set_downstreams([next_hop])
