"""The self-stabilizing ring corrector as an iOverlay algorithm.

Layered directly on :class:`~repro.membership.swim.SwimMembershipAlgorithm`:
SWIM supplies the believed-alive set, and every ``repair_interval`` the
corrector evaluates the ring invariant against it
(:func:`~repro.algorithms.stabilize.ring.plan_repair`) and issues
corrective link requests.  Corrections use the engine-owned ``CONNECT``
and ``DISCONNECT`` control types sent to *this* node — the same verbs
the observer uses — so the engine performs the actual dial/teardown on
either backend and the algorithm stays within its single ``send`` entry
point.  The loop never terminates: after any fault (or any adversarial
starting topology) the detector simply starts failing again and the
corrector resumes, which is the self-stabilization property.
"""

from __future__ import annotations

from repro.algorithms.stabilize.ring import plan_repair, ring_targets
from repro.core.algorithm import Disposition
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.membership.protocol import SwimConfig
from repro.membership.swim import SwimMembershipAlgorithm

__all__ = ["SelfStabilizingRingAlgorithm"]

_REPAIR_TOKEN = 41


class SelfStabilizingRingAlgorithm(SwimMembershipAlgorithm):
    """Converge outgoing links to the sorted-ring target, forever."""

    def __init__(
        self,
        config: SwimConfig | None = None,
        seed: int | None = None,
        repair_interval: float | None = None,
        n_successors: int = 1,
    ) -> None:
        super().__init__(config=config, seed=seed)
        self.repair_interval = (
            repair_interval if repair_interval is not None
            else self.swim_config.period
        )
        self.n_successors = n_successors
        #: links this corrector created and still owns
        self._ring_links: set[NodeId] = set()
        self.repairs = 0
        self._repair_counter = None
        self._legal_gauge = None

    # ------------------------------------------------------------- lifecycle

    def view_embedding(self):
        """Bounded views and anti-entropy samples follow the Chord ring.

        T-Man-style proximity selection on the ring embedding: the
        bounded view converges to the node's surrounding arc (so its
        successor is always in view), directed samples carry each peer
        the entries nearest to *it*, and a newcomer is retained by its
        successors, whose samples then reach the predecessors that must
        repair toward it.
        """
        from repro.algorithms.dht.ring import CIRCLE, node_to_id

        return node_to_id, CIRCLE

    def on_start(self) -> None:
        super().on_start()
        self._bind_ring_telemetry()
        self.engine.set_timer(self.repair_interval, _REPAIR_TOKEN)

    def on_timer(self, token: int) -> Disposition | None:
        if token != _REPAIR_TOKEN:
            return super().on_timer(token)
        self._repair()
        self.engine.set_timer(self.repair_interval, _REPAIR_TOKEN)
        return Disposition.DONE

    def on_broken_link(self, msg: Message) -> Disposition | None:
        result = super().on_broken_link(msg)
        peer = NodeId.parse(msg.fields()["peer"])
        # The engine already tore the link down; forget our claim on it
        # so the next repair pass recreates it (or picks a new target).
        self._ring_links.discard(peer)
        return result

    # ------------------------------------------------------------ inspection

    def successor(self) -> NodeId | None:
        """The node this corrector currently believes is its successor."""
        if self.core is None:
            return None
        targets = ring_targets(
            self.node_id, self.core.alive_members(), self.n_successors
        )
        return targets[0] if targets else None

    def ring_legal(self) -> bool:
        """Detector verdict: ideal targets linked, no stale ring links."""
        if self.core is None:
            return False
        plan = plan_repair(
            self.node_id, self.core.alive_members(),
            self._ring_links, self.n_successors,
        )
        if not plan.legal:
            return False
        established = set(self.engine.downstreams())
        return all(t in established for t in plan.targets)

    # ------------------------------------------------------------- corrector

    def _repair(self) -> None:
        if self.core is None:
            return
        # Reclaim only links that actually exist: a CONNECT may still be
        # dialing, and claiming it twice is harmless, but a link that
        # died loudly must not linger in the owned set.
        plan = plan_repair(
            self.node_id, self.core.alive_members(),
            self._ring_links, self.n_successors,
        )
        if plan.legal:
            if self._legal_gauge is not None:
                established = set(self.engine.downstreams())
                self._legal_gauge.set(
                    1.0 if all(t in established for t in plan.targets) else 0.0
                )
            return
        if self._legal_gauge is not None:
            self._legal_gauge.set(0.0)
        for target in plan.connect:
            self._ring_links.add(target)
            self.repairs += 1
            self.send(
                Message.with_fields(
                    MsgType.CONNECT, self.node_id, 0, dest=str(target)
                ),
                self.node_id,
            )
        for target in plan.disconnect:
            self._ring_links.discard(target)
            self.repairs += 1
            self.send(
                Message.with_fields(
                    MsgType.DISCONNECT, self.node_id, 0, dest=str(target)
                ),
                self.node_id,
            )
        if self._repair_counter is not None:
            self._repair_counter.inc(len(plan.connect) + len(plan.disconnect))

    # -------------------------------------------------------------- telemetry

    def _bind_ring_telemetry(self) -> None:
        tel = getattr(getattr(self.engine, "config", None), "telemetry", None)
        if tel is None:
            return
        reg = tel.registry
        self._repair_counter = reg.counter(
            "ioverlay_stabilize_repairs_total",
            "Corrective link requests issued by the ring corrector",
            ("node",),
        ).labels(node=str(self.node_id))
        self._legal_gauge = reg.gauge(
            "ioverlay_stabilize_legal",
            "Detector verdict: 1 when the local ring invariant holds",
            ("node",),
        ).labels(node=str(self.node_id))
