"""Self-stabilizing overlay maintenance (detector/corrector split).

Berns' general framework ("Applications and Implications of a General
Framework for Self-Stabilizing Overlay Networks") decomposes overlay
self-stabilization into a *detector* — each node locally evaluates a
predicate over its own adjacency — and a *corrector* — local link
additions/removals that provably move any weakly-connected configuration
toward the legal target topology.  This package implements that split
for a ring target (the base of Chord-style overlays, and the hardest
part of Götte/Scheideler's underlay-aware construction): pure invariant
arithmetic in :mod:`repro.algorithms.stabilize.ring`, and the corrector
as an :class:`~repro.core.algorithm.Algorithm` layered on SWIM
membership in :mod:`repro.algorithms.stabilize.algorithm`.
"""

from repro.algorithms.stabilize.ring import (
    RingPlan,
    ideal_successors,
    plan_repair,
    ring_targets,
)
from repro.algorithms.stabilize.algorithm import SelfStabilizingRingAlgorithm

__all__ = [
    "RingPlan",
    "ideal_successors",
    "plan_repair",
    "ring_targets",
    "SelfStabilizingRingAlgorithm",
]
