"""Pure ring-invariant arithmetic for the self-stabilizing corrector.

The target topology is the sorted ring over Chord identifiers
(:func:`repro.algorithms.dht.ring.node_to_id`): in a *legal*
configuration every node holds outgoing links to exactly its ``r``
nearest clockwise successors among the alive nodes.  The detector is a
pure predicate over (my id, my believed-alive set, my current ring
links); the corrector is the connect/disconnect delta that makes the
predicate true.  Keeping this module free of engines lets the same
functions drive the full :class:`~repro.core.algorithm.Algorithm`
corrector, the slotted 10^4-node simulator, and the experiment oracles
that judge both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.dht.ring import distance, node_to_id
from repro.core.ids import NodeId

__all__ = ["RingPlan", "ring_targets", "plan_repair", "ideal_successors"]


@dataclass(frozen=True)
class RingPlan:
    """The corrector's verdict for one node at one instant."""

    targets: tuple[NodeId, ...]      # the r ideal clockwise successors
    connect: tuple[NodeId, ...]      # links to create
    disconnect: tuple[NodeId, ...]   # stale ring links to drop
    legal: bool                      # detector: adjacency already ideal


def ring_targets(node: NodeId, alive: list[NodeId], r: int = 1) -> list[NodeId]:
    """The ``r`` nearest clockwise successors of ``node`` among ``alive``.

    ``alive`` must not contain ``node`` itself.  With fewer than ``r``
    candidates every alive node is a target (a tiny ring is a clique).
    """
    if not alive:
        return []
    me = node_to_id(node)
    if len(alive) <= r:
        return sorted(alive, key=lambda n: distance(me, node_to_id(n)))
    return sorted(alive, key=lambda n: distance(me, node_to_id(n)))[:r]


def plan_repair(
    node: NodeId,
    alive: list[NodeId],
    ring_links: set[NodeId],
    r: int = 1,
) -> RingPlan:
    """Detector + corrector in one pass.

    ``ring_links`` is the set of links *this corrector* created and still
    owns — the corrector never touches links other algorithms hold, so a
    data tree and the repair ring can share a node without fighting.
    """
    targets = ring_targets(node, alive, r)
    target_set = set(targets)
    connect = tuple(t for t in targets if t not in ring_links)
    disconnect = tuple(t for t in ring_links if t not in target_set)
    return RingPlan(
        targets=tuple(targets),
        connect=connect,
        disconnect=disconnect,
        legal=not connect and not disconnect,
    )


def ideal_successors(nodes: list[NodeId]) -> dict[NodeId, NodeId]:
    """Oracle: the true successor of every node in a ground-truth set.

    Sorts once by ring id; node i's successor is node i+1 (mod n).  Used
    by experiments and tests to judge convergence — never by the
    protocol itself, which only ever sees local views.
    """
    if len(nodes) < 2:
        return {}
    ordered = sorted(nodes, key=node_to_id)
    n = len(ordered)
    return {ordered[i]: ordered[(i + 1) % n] for i in range(n)}
