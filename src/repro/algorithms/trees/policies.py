"""The three tree-construction policies compared in Section 3.3."""

from __future__ import annotations

from repro.algorithms.trees.base import TreeAlgorithm
from repro.core.ids import NodeId
from repro.core.message import Message


class NodeStressAwareTree(TreeAlgorithm):
    """The paper's new algorithm: recursive minimum-stress walk.

    An in-tree node compares its own node stress with its parent's and
    children's.  If it has the minimum, it acknowledges the join;
    otherwise it forwards the query to the minimum-stress neighbour,
    recursively, until the minimum-stress node acknowledges.

    Exact stress ties (common with integer degrees over round bandwidth
    values — the paper's measured stresses were noisy enough to avoid
    them) are broken by node id, which makes the walk strictly
    decreasing in (stress, id) and therefore cycle-free; a TTL
    additionally guards against ping-pong on *stale* stress values.
    """

    def handle_query_in_tree(self, joiner: NodeId, ttl: int, msg: Message) -> None:
        if ttl <= 0:
            self.ack_join(joiner)
            return
        best_neighbor: NodeId | None = None
        best_key = (self.stress, self.node_id)
        for neighbor in self.tree_neighbors():
            stress = self.neighbor_stress.get(neighbor)
            if stress is not None and (stress, neighbor) < best_key:
                best_neighbor = neighbor
                best_key = (stress, neighbor)
        if best_neighbor is None:
            self.ack_join(joiner)
        else:
            self.forward_query(best_neighbor, joiner, ttl)


class AllUnicastTree(TreeAlgorithm):
    """Control algorithm: every member becomes a direct child of the source.

    Any in-tree node that is aware of the session source (from
    ``sAnnounce``) simply forwards the query there; the source
    acknowledges all joins, producing a star topology whose uplink it
    must share among all receivers.
    """

    def handle_query_in_tree(self, joiner: NodeId, ttl: int, msg: Message) -> None:
        if self.is_source or ttl <= 0:
            self.ack_join(joiner)
            return
        # Forward to the source if announced, else walk up toward the root.
        target = self.source_node or self.parent
        if target is None or target == self.node_id:
            self.ack_join(joiner)
        else:
            self.forward_query(target, joiner, ttl)


class RandomizedTree(TreeAlgorithm):
    """Control algorithm: the first in-tree node reached acknowledges.

    The joiner attaches to whichever tree node its randomly-relayed
    query happened to hit first, regardless of load or bandwidth.
    """

    def handle_query_in_tree(self, joiner: NodeId, ttl: int, msg: Message) -> None:
        self.ack_join(joiner)


POLICIES: dict[str, type[TreeAlgorithm]] = {
    "ns-aware": NodeStressAwareTree,
    "unicast": AllUnicastTree,
    "random": RandomizedTree,
}
