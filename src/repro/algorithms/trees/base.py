"""Data dissemination tree construction (Section 3.3): shared machinery.

A multicast session is built incrementally: the observer deploys the
source (``sDeploy``) and then asks nodes to join (a generic observer
``control`` command).  A joining node locates a node already in the tree
by disseminating an ``sQuery``; nodes outside the tree relay the query,
and the first in-tree node handles it according to the *policy* under
study — the subclasses in :mod:`repro.algorithms.trees.policies`:

- **node-stress aware** (the paper's new algorithm): walk to the
  neighbour with minimum node stress before acknowledging,
- **all-unicast**: forward the query to the session source, producing a
  star,
- **randomized**: acknowledge immediately, wherever the query landed.

Node stress is "the degree of a node in a data dissemination topology
divided by the available last-mile bandwidth of the node"; nodes
exchange stress with their tree neighbours periodically (``sStress``).
"""

from __future__ import annotations

from repro.core.algorithm import Algorithm, Disposition
from repro.core.ids import AppId, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.core.stats import ThroughputMeter

#: The paper reports stress in units of 1/100 KBps.
STRESS_UNIT = 100_000.0

#: Observer control command asking a node to join a session (param1 = app).
CMD_JOIN = 1
#: Observer control command asking a node to leave its session.
CMD_LEAVE = 2

_TIMER_RETRY_JOIN = 1
_TIMER_STRESS = 2
_TIMER_ANNOUNCE = 3

_QUERY_TTL = 32


class TreeAlgorithm(Algorithm):
    """Base class for tree-construction algorithms.

    ``last_mile`` is the node's available last-mile bandwidth in bytes
    per second — the denominator of its node stress.  Subclasses
    implement :meth:`handle_query_in_tree`.
    """

    def __init__(
        self,
        last_mile: float,
        stress_interval: float = 1.0,
        join_retry: float = 2.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if last_mile <= 0:
            raise ValueError("last_mile bandwidth must be positive")
        self.last_mile = last_mile
        self.stress_interval = stress_interval
        self.join_retry = join_retry

        self.app: AppId | None = None
        self.is_source = False
        self.in_tree = False
        self.parent: NodeId | None = None
        self.children: list[NodeId] = []
        self.source_node: NodeId | None = None
        self.neighbor_stress: dict[NodeId, float] = {}
        self.received = ThroughputMeter()
        self._joining = False
        self._announced = False
        self._payload_size = 5120

        self.register(MsgType.S_ANNOUNCE, self._on_announce)
        self.register(MsgType.S_QUERY, self._on_query)
        self.register(MsgType.S_QUERY_ACK, self._on_query_ack)
        self.register(MsgType.S_JOIN, self._on_join)
        self.register(MsgType.S_LEAVE, self._on_leave)
        self.register(MsgType.S_STRESS, self._on_stress)

    # ------------------------------------------------------------------- metrics

    @property
    def degree(self) -> int:
        """Tree degree: parent plus children (the paper's numerator)."""
        return (1 if self.parent is not None else 0) + len(self.children)

    @property
    def stress(self) -> float:
        """Node stress in the paper's 1/100-KBps units."""
        return self.degree / (self.last_mile / STRESS_UNIT)

    def receive_rate(self) -> float:
        """End-to-end application throughput observed at this node (B/s)."""
        return self.received.rate(self.engine.now())

    def tree_neighbors(self) -> list[NodeId]:
        neighbors = list(self.children)
        if self.parent is not None:
            neighbors.append(self.parent)
        return neighbors

    # --------------------------------------------------------------- deploy / join

    def on_deploy(self, msg: Message) -> Disposition:
        """This node becomes the session source (observer ``sDeploy``)."""
        fields = msg.fields()
        self.app = AppId(fields["app"])
        self._payload_size = int(fields.get("payload_size", 5120))
        self.is_source = True
        self.in_tree = True
        self.source_node = self.node_id
        self.engine.start_source(self.app, self._payload_size)
        self._announce()
        self.engine.set_timer(self.stress_interval, _TIMER_STRESS)
        # Re-announce periodically: the source's KnownHosts keeps growing
        # through bootstrap refreshes, and later arrivals must learn it too.
        self.engine.set_timer(self.join_retry, _TIMER_ANNOUNCE)
        return Disposition.DONE

    def on_control(self, msg: Message) -> Disposition:
        fields = msg.fields()
        command = int(fields.get("type", 0))
        if command == CMD_JOIN:
            self.start_join(AppId(fields.get("param1", msg.app)))
        elif command == CMD_LEAVE:
            self.leave()
        return Disposition.DONE

    def start_join(self, app: AppId) -> None:
        """Begin joining ``app``'s dissemination session."""
        if self.in_tree:
            return
        self.app = app
        self._joining = True
        self._send_query()
        self.engine.set_timer(self.join_retry, _TIMER_RETRY_JOIN)

    def leave(self) -> None:
        """Leave the session: detach from parent and orphan the children."""
        if not self.in_tree or self.is_source:
            return
        if self.parent is not None and self.app is not None:
            self.send(
                Message.with_fields(
                    MsgType.S_LEAVE, self.node_id, self.app,
                    app=self.app, child=str(self.node_id),
                ),
                self.parent,
            )
        self.parent = None
        self.children.clear()
        self.in_tree = False
        self._joining = False

    def _send_query(self) -> None:
        if self.app is None:
            return
        candidates = self.known_hosts.as_list()
        if not candidates:
            return
        target = self.rng.choice(candidates)
        query = Message.with_fields(
            MsgType.S_QUERY, self.node_id, self.app,
            app=self.app, joiner=str(self.node_id), ttl=_QUERY_TTL,
        )
        self.send(query, target)

    def _announce(self) -> None:
        """Disseminate the session source to known hosts (``sAnnounce``)."""
        if self.app is None or self.source_node is None:
            return
        announce = Message.with_fields(
            MsgType.S_ANNOUNCE, self.node_id, self.app,
            app=self.app, source=str(self.source_node),
        )
        self.disseminate(announce, self.known_hosts, p=1.0)

    # ------------------------------------------------------------------ timers

    def on_timer(self, token: int) -> Disposition:
        if token == _TIMER_RETRY_JOIN:
            if self._joining and not self.in_tree:
                self._send_query()
                self.engine.set_timer(self.join_retry, _TIMER_RETRY_JOIN)
        elif token == _TIMER_STRESS:
            self._exchange_stress()
            if self.in_tree:
                self.engine.set_timer(self.stress_interval, _TIMER_STRESS)
        elif token == _TIMER_ANNOUNCE:
            if self.is_source:
                self._announce()
                self.engine.set_timer(self.join_retry * 2, _TIMER_ANNOUNCE)
        return Disposition.DONE

    def _exchange_stress(self) -> None:
        if self.app is None:
            return
        report = Message.with_fields(
            MsgType.S_STRESS, self.node_id, self.app,
            app=self.app, stress=self.stress,
        )
        for neighbor in self.tree_neighbors():
            self.send(report.clone(), neighbor)

    # ----------------------------------------------------------- protocol handlers

    def _on_announce(self, msg: Message) -> Disposition:
        fields = msg.fields()
        source = NodeId.parse(fields["source"])
        self.known_hosts.add(source)
        if self.source_node is None:
            self.source_node = source
            if self.app is None:
                self.app = AppId(fields["app"])
            # Relay once so announcements reach nodes the source does not know.
            self._announced = True
            self._announce()
        return Disposition.DONE

    def _on_query(self, msg: Message) -> Disposition:
        fields = msg.fields()
        joiner = NodeId.parse(fields["joiner"])
        ttl = int(fields["ttl"])
        if joiner == self.node_id:
            return Disposition.DONE
        if not self.in_tree:
            self._relay_query(msg, joiner, ttl)
            return Disposition.DONE
        self.handle_query_in_tree(joiner, ttl, msg)
        return Disposition.DONE

    def _relay_query(self, msg: Message, joiner: NodeId, ttl: int) -> None:
        """A node outside the tree relays the query to a random known host."""
        if ttl <= 0:
            return
        candidates = [n for n in self.known_hosts if n not in (joiner, self.node_id)]
        if not candidates:
            return
        forwarded = Message.with_fields(
            MsgType.S_QUERY, msg.sender, msg.app,
            app=msg.app, joiner=str(joiner), ttl=ttl - 1,
        )
        self.send(forwarded, self.rng.choice(candidates))

    def handle_query_in_tree(self, joiner: NodeId, ttl: int, msg: Message) -> None:
        """Policy hook: this node is in the tree and received ``sQuery``."""
        raise NotImplementedError

    def ack_join(self, joiner: NodeId) -> None:
        """Invite ``joiner`` to become our child (``sQueryAck``)."""
        assert self.app is not None
        ack = Message.with_fields(
            MsgType.S_QUERY_ACK, self.node_id, self.app,
            app=self.app, parent=str(self.node_id),
        )
        self.send(ack, joiner)

    def forward_query(self, target: NodeId, joiner: NodeId, ttl: int) -> None:
        assert self.app is not None
        query = Message.with_fields(
            MsgType.S_QUERY, self.node_id, self.app,
            app=self.app, joiner=str(joiner), ttl=ttl - 1,
        )
        self.send(query, target)

    def _on_query_ack(self, msg: Message) -> Disposition:
        if self.in_tree or not self._joining:
            return Disposition.DONE  # already joined; ignore later acks
        parent = NodeId.parse(msg.fields()["parent"])
        self.parent = parent
        self.in_tree = True
        self._joining = False
        assert self.app is not None
        join = Message.with_fields(
            MsgType.S_JOIN, self.node_id, self.app,
            app=self.app, child=str(self.node_id),
        )
        self.send(join, parent)
        self.engine.set_timer(self.stress_interval, _TIMER_STRESS)
        return Disposition.DONE

    def _on_join(self, msg: Message) -> Disposition:
        child = NodeId.parse(msg.fields()["child"])
        if child not in self.children:
            self.children.append(child)
        return Disposition.DONE

    def _on_leave(self, msg: Message) -> Disposition:
        child = NodeId.parse(msg.fields()["child"])
        self.children = [node for node in self.children if node != child]
        self.neighbor_stress.pop(child, None)
        return Disposition.DONE

    def _on_stress(self, msg: Message) -> Disposition:
        self.neighbor_stress[msg.sender] = float(msg.fields()["stress"])
        return Disposition.DONE

    # -------------------------------------------------------------------- data

    def on_data(self, msg: Message) -> Disposition:
        self.received.record(msg.size, self.engine.now())
        for child in self.children:
            self.send(msg, child)
        return Disposition.DONE

    # ------------------------------------------------------------------ failures

    def on_broken_link(self, msg: Message) -> Disposition:
        fields = msg.fields()
        peer = NodeId.parse(fields["peer"])
        if fields.get("direction") == "down":
            self.children = [node for node in self.children if node != peer]
        elif peer == self.parent:
            # Lost our parent: rejoin the session from scratch.
            self.parent = None
            self.in_tree = False
            if self.app is not None:
                self.start_join(self.app)
        self.neighbor_stress.pop(peer, None)
        return super().on_broken_link(msg) or Disposition.DONE

    def on_broken_source(self, msg: Message) -> Disposition:
        """Domino teardown reached us: our whole subtree position is void.

        Reset to a singleton (the engine already failed the downstream
        links' data flow) and rejoin from scratch — each orphan re-enters
        independently, which avoids resurrecting stale subtree islands.
        """
        if self.is_source:
            return Disposition.DONE
        self.parent = None
        self.children.clear()
        self.neighbor_stress.clear()
        self.in_tree = False
        if self.app is not None:
            self.start_join(self.app)
        return Disposition.DONE
