"""Data dissemination tree construction: the Section 3.3 case study."""

from repro.algorithms.trees.base import CMD_JOIN, CMD_LEAVE, STRESS_UNIT, TreeAlgorithm
from repro.algorithms.trees.policies import (
    POLICIES,
    AllUnicastTree,
    NodeStressAwareTree,
    RandomizedTree,
)

__all__ = [
    "AllUnicastTree",
    "CMD_JOIN",
    "CMD_LEAVE",
    "NodeStressAwareTree",
    "POLICIES",
    "RandomizedTree",
    "STRESS_UNIT",
    "TreeAlgorithm",
]
