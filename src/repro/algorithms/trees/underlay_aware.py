"""A tree policy that consults the PLUTO underlay (the Section 5 vision).

The node-stress aware walk optimizes for *load*; with a routing underlay
available, the acknowledging node can additionally optimize for
*proximity*: among the tree positions whose stress is within a tolerance
of the minimum, attach the joiner to the one closest in underlay
latency.  Same stress profile, shorter overlay edges.
"""

from __future__ import annotations

from repro.algorithms.trees.policies import NodeStressAwareTree
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.underlay.pluto import PlutoUnderlay


class UnderlayAwareTree(NodeStressAwareTree):
    """Minimum-stress walk with proximity tie-breaking via PLUTO."""

    def __init__(
        self,
        last_mile: float,
        underlay: PlutoUnderlay | None = None,
        stress_tolerance: float = 0.25,
        **kwargs,
    ) -> None:
        super().__init__(last_mile=last_mile, **kwargs)
        self.underlay = underlay
        self.stress_tolerance = stress_tolerance

    def set_underlay(self, underlay: PlutoUnderlay) -> None:
        self.underlay = underlay

    def handle_query_in_tree(self, joiner: NodeId, ttl: int, msg: Message) -> None:
        if self.underlay is None:
            super().handle_query_in_tree(joiner, ttl, msg)
            return
        if ttl <= 0:
            self.ack_join(joiner)
            return
        # Candidates: self plus tree neighbours with known stress.
        candidates: dict[NodeId, float] = {self.node_id: self.stress}
        for neighbor in self.tree_neighbors():
            stress = self.neighbor_stress.get(neighbor)
            if stress is not None:
                candidates[neighbor] = stress
        minimum = min(candidates.values())
        tolerated = [
            node for node, stress in candidates.items()
            if stress <= minimum * (1 + self.stress_tolerance) or stress == minimum
        ]
        try:
            best = self.underlay.closest(joiner, tolerated)
        except Exception:
            best = min(tolerated, key=lambda n: (candidates[n], str(n)))
        if best == self.node_id:
            self.ack_join(joiner)
        else:
            self.forward_query(best, joiner, ttl)
