"""Experiment-side driver for service-federation sessions.

The observer assigns services (``sAssign``), kicks off federation
sessions (``sFederate`` to the designated source service node), waits
for acknowledgements, and evaluates the constructed paths — the
scaffolding shared by the Figs. 14-19 experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.algorithms.federation.algorithm import FederationAlgorithm
from repro.algorithms.federation.requirement import Requirement, ServiceType
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.observer.observer import Observer
from repro.sim.network import SimNetwork


@dataclass
class SessionOutcome:
    """What one federation session produced."""

    session: int
    requirement: Requirement
    source: NodeId
    completed: bool
    failed_branches: int
    paths: list[list[NodeId]] = field(default_factory=list)  # source -> each sink
    end_to_end: float = 0.0  # B/s, min fair share along the bottleneck path


class FederationDriver:
    """Drives a service overlay built from FederationAlgorithm nodes."""

    def __init__(self, net: SimNetwork, algorithms: dict[NodeId, FederationAlgorithm]) -> None:
        self.net = net
        self.algorithms = algorithms
        self._next_session = 1
        self._next_service_id = 1

    @property
    def observer(self) -> Observer:
        return self.net.observer

    # ------------------------------------------------------------------ assignment

    def assign(self, node: NodeId, service_type: ServiceType) -> int:
        """Observer-assign a service instance of ``service_type`` to ``node``."""
        service_id = self._next_service_id
        self._next_service_id += 1
        msg = Message.with_fields(
            MsgType.S_ASSIGN, Observer.OBSERVER_ID, 0,
            service_type=service_type, service_id=service_id,
        )
        self.observer.send_message(node, msg)
        return service_id

    def assign_round_robin(
        self, types: list[ServiceType], nodes: list[NodeId], instances_per_type: int,
        rng: random.Random,
    ) -> dict[ServiceType, list[NodeId]]:
        """Spread ``instances_per_type`` hosts of each type across nodes."""
        placement: dict[ServiceType, list[NodeId]] = {t: [] for t in types}
        for service_type in types:
            hosts = rng.sample(nodes, min(instances_per_type, len(nodes)))
            for host in hosts:
                self.assign(host, service_type)
                placement[service_type].append(host)
        return placement

    # ------------------------------------------------------------------ federation

    def federate(self, source: NodeId, requirement: Requirement) -> int:
        """Start a federation session rooted at ``source``; returns its id."""
        session = self._next_session
        self._next_session += 1
        msg = Message.with_fields(
            MsgType.S_FEDERATE, Observer.OBSERVER_ID, session,
            session=session,
            requirement=requirement.to_wire(),
            position=requirement.root,
            source=str(source),
            path=[],
        )
        self.observer.send_message(source, msg)
        return session

    # ------------------------------------------------------------------ evaluation

    def outcome(self, session: int, source: NodeId, requirement: Requirement) -> SessionOutcome:
        """Evaluate a session after the network has settled."""
        source_alg = self.algorithms[source]
        acks = [a for a in source_alg.acks_received if int(a.get("session", -1)) == session]
        failures = sum(1 for a in acks if a.get("failed"))
        paths: list[list[NodeId]] = []
        for ack in acks:
            if ack.get("failed"):
                continue
            paths.append([NodeId.parse(text) for text in ack.get("path", [])])
        expected_sinks = len(requirement.leaves())
        completed = len(paths) == expected_sinks and failures == 0
        end_to_end = 0.0
        if paths:
            shares: list[float] = []
            for path in paths:
                for node in path:
                    algorithm = self.algorithms.get(node)
                    if algorithm is not None:
                        shares.append(algorithm.capacity / max(algorithm.active_sessions, 1))
            end_to_end = min(shares) if shares else 0.0
        return SessionOutcome(
            session=session,
            requirement=requirement,
            source=source,
            completed=completed,
            failed_branches=failures,
            paths=paths,
            end_to_end=end_to_end,
        )

    # ------------------------------------------------------------------ overheads

    def total_overhead(self, kind: str | None = None) -> int:
        return sum(alg.overhead_bytes(kind) for alg in self.algorithms.values())

    def per_node_overhead(self, kind: str | None = None) -> dict[NodeId, int]:
        return {node: alg.overhead_bytes(kind) for node, alg in self.algorithms.items()}

    def overhead_timeline(self, bin_span: float, end: float, kind: str | None = None) -> list[int]:
        """Total control bytes per ``bin_span`` window, across all nodes."""
        bins = [0] * max(1, int(end / bin_span + 0.999))
        for algorithm in self.algorithms.values():
            for record in algorithm.overhead:
                if kind is not None and record.kind != kind:
                    continue
                index = min(int(record.time / bin_span), len(bins) - 1)
                bins[index] += record.size
        return bins
