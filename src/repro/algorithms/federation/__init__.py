"""Service federation in service overlay networks (Section 3.4)."""

from repro.algorithms.federation.algorithm import (
    POLICY_NAMES,
    FederationAlgorithm,
    OverheadRecord,
    ServiceInfo,
    SessionState,
)
from repro.algorithms.federation.requirement import (
    Requirement,
    RequirementNode,
    ServiceType,
)
from repro.algorithms.federation.session import FederationDriver, SessionOutcome

__all__ = [
    "FederationAlgorithm",
    "FederationDriver",
    "OverheadRecord",
    "POLICY_NAMES",
    "Requirement",
    "RequirementNode",
    "ServiceInfo",
    "SessionOutcome",
    "SessionState",
    "ServiceType",
]
