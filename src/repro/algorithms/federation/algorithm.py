"""The sFlow service-federation algorithm and its comparators.

From Section 3.4 of the paper:

- A node is *assigned* a service instance by the observer (``sAssign``)
  and maintains a service graph of producer-consumer relationships.
- It disseminates its existence via ``sAware`` messages, relayed until
  an existing service node forwards them to the peers of adjacent
  service types; every node accumulates a directory mapping service
  types to candidate hosts (with their capacity and current load).
- A federation session starts with an ``sFederate`` message carrying the
  service requirement to the designated source service node.  As the
  message is forwarded, each node applies a local policy to select the
  downstream host for the next required type until the sink is reached;
  the sink acknowledges with ``sFederateAck``.
- The session concludes by deploying actual data streams through the
  selected services (each node keeps a per-session routing table).

Selection policies (the paper's comparison of Fig. 19):

- ``sflow``: most bandwidth-efficient — maximize the candidate's
  *available* bandwidth, ``capacity / (active sessions + 1)``;
- ``fixed``: highest *capacity* candidate, ignoring load;
- ``random``: any candidate hosting the required type.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.federation.requirement import Requirement, ServiceType
from repro.core.algorithm import Algorithm, Disposition
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.core.stats import ThroughputMeter

POLICY_NAMES = ("sflow", "fixed", "random")

_TIMER_REFRESH = 11
_TIMER_SESSION_SWEEP = 12

_AWARE_TTL = 8


@dataclass
class ServiceInfo:
    """What this node believes about one candidate host of a type."""

    node: NodeId
    capacity: float
    sessions: int
    updated_at: float

    @property
    def available(self) -> float:
        """Estimated available bandwidth: an equal share among sessions."""
        return self.capacity / (self.sessions + 1)


@dataclass
class SessionState:
    """Per-session bookkeeping on a node that is part of the path."""

    session: int
    requirement: Requirement
    position: int
    next_hops: dict[int, NodeId] = field(default_factory=dict)  # req node -> host
    started_at: float = 0.0


@dataclass
class OverheadRecord:
    """One control-message send, for the overhead figures (15-18)."""

    time: float
    kind: str  # "aware" | "federate"
    size: int


class FederationAlgorithm(Algorithm):
    """A service-overlay node: hosts services, federates requirements."""

    def __init__(
        self,
        capacity: float,
        policy: str = "sflow",
        refresh_interval: float = 10.0,
        session_duration: float = 60.0,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        if policy not in POLICY_NAMES:
            raise ValueError(f"policy must be one of {POLICY_NAMES}, got {policy!r}")
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.policy = policy
        self.refresh_interval = refresh_interval
        self.session_duration = session_duration

        self.hosted: dict[ServiceType, int] = {}  # type -> service id
        self.directory: dict[ServiceType, dict[NodeId, ServiceInfo]] = {}
        self.sessions: dict[int, SessionState] = {}
        self.completed_sessions: list[int] = []
        self.overhead: list[OverheadRecord] = []
        self.acks_received: list[dict] = []
        self.received = ThroughputMeter()
        self._seen_aware: set[tuple[str, int]] = set()
        self._refresh_armed = False
        self._last_advertised_sessions: int | None = None

        self.register(MsgType.S_ASSIGN, self._on_assign)
        self.register(MsgType.S_AWARE, self._on_aware)
        self.register(MsgType.S_FEDERATE, self._on_federate)
        self.register(MsgType.S_FEDERATE_ACK, self._on_federate_ack)

    # ------------------------------------------------------------------- metrics

    def overhead_bytes(self, kind: str | None = None) -> int:
        return sum(r.size for r in self.overhead if kind is None or r.kind == kind)

    def overhead_since(self, t0: float, t1: float, kind: str | None = None) -> int:
        return sum(
            r.size for r in self.overhead
            if t0 <= r.time < t1 and (kind is None or r.kind == kind)
        )

    @property
    def active_sessions(self) -> int:
        return len(self.sessions)

    @property
    def available(self) -> float:
        return self.capacity / (self.active_sessions + 1)

    # ----------------------------------------------------------- service hosting

    def _on_assign(self, msg: Message) -> Disposition:
        fields = msg.fields()
        service_type = ServiceType(fields["service_type"])
        service_id = int(fields.get("service_id", service_type))
        self.hosted[service_type] = service_id
        self._record_self(service_type)
        self._advertise(service_type)
        if not self._refresh_armed:
            self._refresh_armed = True
            self.engine.set_timer(self.refresh_interval, _TIMER_REFRESH)
            self.engine.set_timer(self.session_duration / 4, _TIMER_SESSION_SWEEP)
        return Disposition.DONE

    def _record_self(self, service_type: ServiceType) -> None:
        self.directory.setdefault(service_type, {})[self.node_id] = ServiceInfo(
            self.node_id, self.capacity, self.active_sessions, self.engine.now()
        )

    def _advertise(self, service_type: ServiceType) -> None:
        """Disseminate this node's service existence (``sAware``)."""
        aware = self._aware_message(service_type)
        sent = self.disseminate(aware, self.known_hosts, p=1.0)
        if sent:
            self._account("aware", aware.size * sent)

    def _aware_message(self, service_type: ServiceType, ttl: int = _AWARE_TTL) -> Message:
        return Message.with_fields(
            MsgType.S_AWARE, self.node_id, 0,
            seq=self.rng.randrange(1 << 30),
            origin=str(self.node_id),
            service_type=service_type,
            capacity=self.capacity,
            sessions=self.active_sessions,
            ttl=ttl,
        )

    def _on_aware(self, msg: Message) -> Disposition:
        fields = msg.fields()
        origin = NodeId.parse(fields["origin"])
        service_type = ServiceType(fields["service_type"])
        self.known_hosts.add(origin)
        if origin != self.node_id:
            self.directory.setdefault(service_type, {})[origin] = ServiceInfo(
                origin, float(fields["capacity"]), int(fields["sessions"]), self.engine.now()
            )
        key = (str(origin), int(msg.seq))
        if key in self._seen_aware:
            return Disposition.DONE
        self._seen_aware.add(key)
        ttl = int(fields.get("ttl", 0))
        if ttl <= 0:
            return Disposition.DONE
        forwarded = Message.with_fields(
            MsgType.S_AWARE, msg.sender, msg.app, seq=msg.seq, **(fields | {"ttl": ttl - 1})
        )
        if self.hosted:
            # An existing service node: forward to peers of adjacent types.
            targets = {
                info.node
                for hosted_type in self.hosted
                for adjacent in (hosted_type - 1, hosted_type + 1)
                for info in self.directory.get(adjacent, {}).values()
                if info.node not in (self.node_id, origin)
            }
            sent = 0
            for target in targets:
                self.send(forwarded.clone(), target)
                sent += 1
        else:
            # Not a service node: relay toward one random known host.
            candidates = [n for n in self.known_hosts if n not in (origin, self.node_id)]
            sent = 0
            if candidates:
                self.send(forwarded, self.rng.choice(candidates))
                sent = 1
        if sent:
            self._account("aware", forwarded.size * sent)
        return Disposition.DONE

    # -------------------------------------------------------------- federation

    def _on_federate(self, msg: Message) -> Disposition:
        fields = msg.fields()
        session = int(fields["session"])
        requirement = Requirement.from_wire(fields["requirement"])
        position = int(fields["position"])
        source = NodeId.parse(fields["source"])
        path: list[str] = list(fields.get("path", []))
        req_node = requirement.node(position)
        state = SessionState(
            session=session,
            requirement=requirement,
            position=position,
            started_at=self.engine.now(),
        )
        self.sessions[session] = state
        self._record_self_all()
        if not req_node.children:
            # Sink service reached: acknowledge back to the session source.
            ack = Message.with_fields(
                MsgType.S_FEDERATE_ACK, self.node_id, msg.app,
                session=session,
                path=path + [str(self.node_id)],
                sink=str(self.node_id),
            )
            self.send(ack, source)
            self._account("federate", ack.size)
            return Disposition.DONE
        for child_id in req_node.children:
            child_type = requirement.node(child_id).service_type
            choice = self._select(child_type, exclude={NodeId.parse(p) for p in path} | {self.node_id})
            if choice is None:
                # Cannot complete this branch; report failure to the source.
                failure = Message.with_fields(
                    MsgType.S_FEDERATE_ACK, self.node_id, msg.app,
                    session=session, failed=True, missing_type=child_type,
                )
                self.send(failure, source)
                self._account("federate", failure.size)
                continue
            state.next_hops[child_id] = choice
            # Optimistic bookkeeping: remember that we just loaded this
            # candidate, so consecutive selections balance even before the
            # next sAware refresh arrives.
            chosen_info = self.directory.get(child_type, {}).get(choice)
            if chosen_info is not None:
                chosen_info.sessions += 1
            forward = Message.with_fields(
                MsgType.S_FEDERATE, self.node_id, msg.app,
                session=session,
                requirement=fields["requirement"],
                position=child_id,
                source=str(source),
                path=path + [str(self.node_id)],
            )
            self.send(forward, choice)
            self._account("federate", forward.size)
        return Disposition.DONE

    def _record_self_all(self) -> None:
        for service_type in self.hosted:
            self._record_self(service_type)

    def _select(self, service_type: ServiceType, exclude: set[NodeId]) -> NodeId | None:
        candidates = [
            info for info in self.directory.get(service_type, {}).values()
            if info.node not in exclude
        ]
        if not candidates:
            return None
        if self.policy == "random":
            return self.rng.choice(candidates).node
        if self.policy == "fixed":
            return max(candidates, key=lambda info: (info.capacity, str(info.node))).node
        # sflow: most bandwidth-efficient — the largest available share.
        return max(candidates, key=lambda info: (info.available, str(info.node))).node

    def _on_federate_ack(self, msg: Message) -> Disposition:
        self.acks_received.append(msg.fields())
        return Disposition.DONE

    # ----------------------------------------------------------------- data plane

    def on_data(self, msg: Message) -> Disposition:
        """Route session data along the federated path (app id = session)."""
        self.received.record(msg.size, self.engine.now())
        state = self.sessions.get(int(msg.app))
        if state is None:
            return Disposition.DONE
        for next_hop in state.next_hops.values():
            self.send(msg, next_hop)
        return Disposition.DONE

    def receive_rate(self) -> float:
        """Data throughput observed at this node (B/s, sliding window)."""
        return self.received.rate(self.engine.now())

    # ------------------------------------------------------------------- timers

    def on_timer(self, token: int) -> Disposition:
        if token == _TIMER_REFRESH:
            # Delta-triggered: only re-advertise when our load changed since
            # the previous refresh, so a quiescent overlay goes silent (the
            # paper's Fig. 16 shows sAware traffic decaying once service
            # arrivals stop).
            if self._last_advertised_sessions != self.active_sessions:
                self._last_advertised_sessions = self.active_sessions
                for service_type in self.hosted:
                    self._refresh(service_type)
            self.engine.set_timer(self.refresh_interval, _TIMER_REFRESH)
        elif token == _TIMER_SESSION_SWEEP:
            self._expire_sessions()
            self.engine.set_timer(self.session_duration / 4, _TIMER_SESSION_SWEEP)
        return Disposition.DONE

    def _refresh(self, service_type: ServiceType) -> None:
        """Re-advertise current load to peers of *adjacent* service types.

        Those peers are exactly the nodes that select downstream hosts of
        our type during federation, so this is the cheapest propagation
        that keeps sFlow's availability estimates fresh.
        """
        aware = self._aware_message(service_type, ttl=0)
        targets = [
            info.node
            for adjacent in (service_type - 1, service_type + 1)
            for info in self.directory.get(adjacent, {}).values()
            if info.node != self.node_id
        ]
        sent = 0
        for target in dict.fromkeys(targets):
            self.send(aware.clone(), target)
            sent += 1
        if sent:
            self._account("aware", aware.size * sent)
        self._record_self(service_type)

    def _expire_sessions(self) -> None:
        now = self.engine.now()
        expired = [
            sid for sid, state in self.sessions.items()
            if now - state.started_at > self.session_duration
        ]
        for sid in expired:
            del self.sessions[sid]
            self.completed_sessions.append(sid)

    # ------------------------------------------------------------------ helpers

    def _account(self, kind: str, size: int) -> None:
        self.overhead.append(OverheadRecord(self.engine.now(), kind, size))
