"""Service requirements: what a federated (composed) service must contain.

A requirement names the primitive service *types* a complex service is
composed of and their producer-consumer order.  The paper supports
requirements "in the generic form of directed acyclic graphs"; this
reproduction supports out-trees (a root source type, arbitrary fan-out,
no joins), which covers the paths and forks exercised by the evaluation;
the restriction is recorded in DESIGN.md.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro.errors import FederationError

ServiceType = int


@dataclass(frozen=True)
class RequirementNode:
    """One position in the requirement: a service type plus successors."""

    node_id: int
    service_type: ServiceType
    children: tuple[int, ...] = ()


@dataclass
class Requirement:
    """An out-tree of service types, rooted at the source service."""

    nodes: dict[int, RequirementNode] = field(default_factory=dict)
    root: int = 0

    def validate(self) -> None:
        if self.root not in self.nodes:
            raise FederationError(f"root {self.root} not among requirement nodes")
        seen: set[int] = set()
        stack = [self.root]
        while stack:
            current = stack.pop()
            if current in seen:
                raise FederationError("requirement graph has a cycle or join")
            seen.add(current)
            node = self.nodes.get(current)
            if node is None:
                raise FederationError(f"dangling requirement node {current}")
            stack.extend(node.children)
        if seen != set(self.nodes):
            raise FederationError("requirement has unreachable nodes")

    # --- shape helpers -----------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.nodes)

    def node(self, node_id: int) -> RequirementNode:
        return self.nodes[node_id]

    def leaves(self) -> list[int]:
        return [nid for nid, node in self.nodes.items() if not node.children]

    def types(self) -> set[ServiceType]:
        return {node.service_type for node in self.nodes.values()}

    def depth(self) -> int:
        def walk(nid: int) -> int:
            node = self.nodes[nid]
            if not node.children:
                return 1
            return 1 + max(walk(child) for child in node.children)

        return walk(self.root)

    # --- construction -------------------------------------------------------------

    @classmethod
    def path(cls, types: list[ServiceType]) -> "Requirement":
        """A linear requirement: types[0] -> types[1] -> ... -> types[-1]."""
        if not types:
            raise FederationError("a requirement needs at least one type")
        nodes = {
            i: RequirementNode(i, t, (i + 1,) if i + 1 < len(types) else ())
            for i, t in enumerate(types)
        }
        requirement = cls(nodes=nodes, root=0)
        requirement.validate()
        return requirement

    @classmethod
    def random_tree(
        cls,
        rng: random.Random,
        types: list[ServiceType],
        size: int,
        max_fanout: int = 2,
    ) -> "Requirement":
        """A random out-tree of ``size`` positions over the given types."""
        if size < 1:
            raise FederationError("size must be >= 1")
        children: dict[int, list[int]] = {i: [] for i in range(size)}
        for nid in range(1, size):
            candidates = [p for p in range(nid) if len(children[p]) < max_fanout]
            parent = rng.choice(candidates) if candidates else nid - 1
            children[parent].append(nid)
        nodes = {
            nid: RequirementNode(nid, rng.choice(types), tuple(children[nid]))
            for nid in range(size)
        }
        requirement = cls(nodes=nodes, root=0)
        requirement.validate()
        return requirement

    # --- wire form -------------------------------------------------------------------

    def to_wire(self) -> str:
        return json.dumps(
            {
                "root": self.root,
                "nodes": [
                    {"id": n.node_id, "type": n.service_type, "children": list(n.children)}
                    for n in self.nodes.values()
                ],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @classmethod
    def from_wire(cls, text: str) -> "Requirement":
        try:
            raw = json.loads(text)
            nodes = {
                int(item["id"]): RequirementNode(
                    int(item["id"]), int(item["type"]), tuple(int(c) for c in item["children"])
                )
                for item in raw["nodes"]
            }
            requirement = cls(nodes=nodes, root=int(raw["root"]))
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise FederationError(f"malformed requirement: {exc}") from exc
        requirement.validate()
        return requirement
