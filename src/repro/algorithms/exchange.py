"""Incentive-aware chunk exchange: rationality and self-interest on iOverlay.

Section 3.1 points at "applying economic or game-based models to study
per-node behavior motivated by self-interests and rationality": nodes
may refuse to relay or to accept children "due to the lack of
incentives", and iOverlay's built-in bandwidth measurements make the
load-balancing side of such algorithms straightforward to evaluate.

This module realizes that direction as a BitTorrent-style swarm:

- a stream is a sequence of numbered *chunks*; the source announces and
  uploads them into a neighbour mesh;
- every node periodically tells neighbours what it holds (``HAVE``) and
  uploads missing chunks — but only to the neighbours that contributed
  the most to *it* recently (tit-for-tat), plus one optimistic slot so
  newcomers can bootstrap;
- a **free-rider** never uploads; reciprocity starves it to whatever the
  optimistic slots spare.

The contribution ledger is exactly the per-link throughput measurement
iOverlay already provides to algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.algorithm import Algorithm, Disposition
from repro.core.ids import AppId, NodeId
from repro.core.message import Message
from repro.core.msgtypes import ALGORITHM_TYPE_BASE
from repro.core.stats import ThroughputMeter

HAVE = ALGORITHM_TYPE_BASE + 20
CHUNK = ALGORITHM_TYPE_BASE + 21

_TIMER_ROUND = 21


@dataclass
class ExchangeConfig:
    """Tunables of the swarm behaviour."""

    chunk_size: int = 5000
    round_interval: float = 0.5
    #: reciprocated upload slots per round
    unchoke_slots: int = 2
    #: additional optimistic slots (randomly chosen) when they rotate in
    optimistic_slots: int = 1
    #: optimistic slots are only open every this-many rounds (classic
    #: BitTorrent rotates the optimistic unchoke much slower than the
    #: reciprocal ones)
    optimistic_period: int = 3
    #: chunks uploaded per unchoked peer per round
    chunks_per_peer: int = 4


@dataclass
class PeerView:
    """What we know and track about one mesh neighbour."""

    node: NodeId
    has: set[int] = field(default_factory=set)
    contribution: ThroughputMeter = field(default_factory=ThroughputMeter)


class ChunkExchangeAlgorithm(Algorithm):
    """A cooperating swarm participant."""

    def __init__(
        self,
        neighbors: list[NodeId] | None = None,
        config: ExchangeConfig | None = None,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        self.config = config or ExchangeConfig()
        self._neighbors: dict[NodeId, PeerView] = {}
        for node in neighbors or []:
            self._neighbors[node] = PeerView(node)
        self.have: set[int] = set()
        self.app: AppId = 1
        self.uploaded_chunks = 0
        self.duplicate_chunks = 0
        self.unchoke_history: list[list[NodeId]] = []
        self._round = 0
        self.register(HAVE, self._on_have)
        self.register(CHUNK, self._on_chunk)

    # ------------------------------------------------------------------ topology

    def set_neighbors(self, neighbors: list[NodeId]) -> None:
        for node in neighbors:
            self._neighbors.setdefault(node, PeerView(node))

    def on_start(self) -> None:
        self.engine.set_timer(self.config.round_interval, _TIMER_ROUND)

    # ----------------------------------------------------------------- the source

    def seed_chunk(self, index: int) -> None:
        """Make a chunk locally available (the source's injection point)."""
        self.have.add(index)

    # ------------------------------------------------------------------- protocol

    def _on_have(self, msg: Message) -> Disposition:
        view = self._neighbors.get(msg.sender)
        if view is None:
            view = PeerView(msg.sender)
            self._neighbors[msg.sender] = view
        view.has.update(int(i) for i in msg.fields()["chunks"])
        return Disposition.DONE

    def _on_chunk(self, msg: Message) -> Disposition:
        index = msg.seq
        view = self._neighbors.setdefault(msg.sender, PeerView(msg.sender))
        view.contribution.record(msg.size, self.engine.now())
        view.has.add(index)
        if index in self.have:
            self.duplicate_chunks += 1
            return Disposition.DONE
        self.have.add(index)
        return Disposition.DONE

    def on_timer(self, token: int) -> Disposition:
        if token != _TIMER_ROUND:
            return Disposition.DONE
        self._round += 1
        self._announce()
        self._upload_round()
        self.engine.set_timer(self.config.round_interval, _TIMER_ROUND)
        return Disposition.DONE

    # -------------------------------------------------------------------- rounds

    def _announce(self) -> None:
        if not self.have or not self._neighbors:
            return
        announcement = Message.with_fields(
            HAVE, self.node_id, self.app, chunks=sorted(self.have),
        )
        for node in self._neighbors:
            self.send(announcement.clone(), node)

    def _select_unchoked(self) -> list[NodeId]:
        """Tit-for-tat: the top recent contributors, plus optimistic picks."""
        now = self.engine.now()
        ranked = sorted(
            self._neighbors.values(),
            key=lambda view: view.contribution.rate(now),
            reverse=True,
        )
        contributors = [v.node for v in ranked if v.contribution.rate(now) > 0]
        unchoked = contributors[: self.config.unchoke_slots]
        if self._round % self.config.optimistic_period == 0:
            others = [v.node for v in ranked if v.node not in unchoked]
            self.rng.shuffle(others)
            unchoked.extend(others[: self.config.optimistic_slots])
        return unchoked

    def _upload_round(self) -> None:
        unchoked = self._select_unchoked()
        self.unchoke_history.append(unchoked)
        for node in unchoked:
            view = self._neighbors[node]
            missing = sorted(self.have - view.has)
            # Push a random subset rather than the lowest indices: two
            # uploaders serving the same peer then rarely collide on the
            # same chunk between HAVE announcements.
            if len(missing) > self.config.chunks_per_peer:
                missing = sorted(self.rng.sample(missing, self.config.chunks_per_peer))
            for index in missing[: self.config.chunks_per_peer]:
                chunk = Message(
                    CHUNK,
                    self.node_id,
                    self.app,
                    bytes(self.config.chunk_size),
                    seq=index,
                )
                self.send(chunk, node)
                view.has.add(index)  # optimistic bookkeeping
                self.uploaded_chunks += 1

    # -------------------------------------------------------------------- metrics

    def completion(self, total_chunks: int) -> float:
        return len(self.have) / total_chunks if total_chunks else 0.0

    def contribution_of(self, peer: NodeId) -> float:
        view = self._neighbors.get(peer)
        return 0.0 if view is None else view.contribution.rate(self.engine.now())


class FreeRiderAlgorithm(ChunkExchangeAlgorithm):
    """A rational defector: consumes chunks, never uploads any.

    It still announces an empty ``HAVE`` (so neighbours keep it in their
    optimistic rotation) — the selfish-but-protocol-compliant strategy.
    """

    def _upload_round(self) -> None:
        self.unchoke_history.append([])

    def _announce(self) -> None:
        if not self._neighbors:
            return
        # Announce nothing ever: advertise an empty holding so nobody
        # requests from us (and we never have to upload).
        announcement = Message.with_fields(HAVE, self.node_id, self.app, chunks=[])
        for node in self._neighbors:
            self.send(announcement.clone(), node)
