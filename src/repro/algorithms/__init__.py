"""Algorithm library: baseline forwarding plus the paper's case studies."""

from repro.algorithms.forwarding import (
    ChainRelayAlgorithm,
    CopyForwardAlgorithm,
    SinkAlgorithm,
)

__all__ = ["ChainRelayAlgorithm", "CopyForwardAlgorithm", "SinkAlgorithm"]
