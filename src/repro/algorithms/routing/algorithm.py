"""Backpressure routing on the iOverlay ``Algorithm`` interface.

Two stateful routing algorithms plus a shared base:

- :class:`BackpressureRoutingAlgorithm` — the Optimal Overlay Routing
  Policy (OORP) of Rai/Singh/Modiano, and (``variant="delay"``) the
  delay-sensitive thresholded variant of Singh/Modiano.  Data messages
  are HELD in per-commodity queues and pushed toward the neighbor with
  the largest positive queue differential each tick.
- :class:`StaticPathRoutingAlgorithm` — the baseline: each commodity
  follows one fixed next hop, which is exactly what any of the paper's
  tree heuristics induces for a unicast commodity (a tree embeds a
  single path from each source to each sink).

Engine plumbing the routing family leans on:

- commodities ride :attr:`Message.commodity` (the ``app`` header field),
- backlog reports ride a new algorithm-range type ``S_BACKLOG`` sent
  *against* the data direction each tick,
- tunnel occupancy is read from :meth:`EngineServices.queue_snapshot`
  (the O(1) switch gauges) — the outbound buffer toward a neighbor is
  the un-drained in-flight window of that overlay hop's underlay tunnel,
- links are engine-owned: routing nodes establish their configured
  neighbor links (and the reverse link of any new upstream, so backlog
  reports can flow against data) by sending the engine's CONNECT verb
  to themselves, the same idiom the ring stabilizer uses.

Everything configurable is JSON-able, so the same class deploys on the
DES, on a VirtualHost, and across a multi-worker cluster via
``NodeSpec`` (sinks/neighbors accept ``"@name"`` references).
"""

from __future__ import annotations

import hashlib

from repro.algorithms.routing.core import (
    BackpressurePolicy,
    DelayAwarePolicy,
    RoutingCore,
)
from repro.algorithms.routing.telemetry import RoutingInstruments
from repro.core.algorithm import Algorithm, Disposition
from repro.core.ids import AppId, NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType

#: timer tokens (must not collide within one algorithm instance)
TICK_TOKEN = 1
INJECT_TOKEN = 2

#: observer CONTROL verb: enqueue param1 messages of param2 bytes for
#: the commodity carried in the control message's ``app`` field
INJECT_CONTROL = 2


def routing_payload(commodity: int, seq: int, size: int) -> bytes:
    """Deterministic, content-distinct payload for injected message ``seq``.

    A pure function of ``(commodity, seq, size)``, so independently
    injected runs on different backends (or different workers) produce
    byte-identical messages and the sink digests can be compared.
    """
    step = (seq * 37 + commodity * 13 + 11) % 251 + 1
    start = (seq * 101 + commodity * 7) % 256
    return bytes((start + i * step) % 256 for i in range(size))


def _parse_node(value) -> NodeId:
    """Accept NodeId, ``"ip:port"`` and wire-form ``"noderef:ip:port"``."""
    if isinstance(value, NodeId):
        return value
    text = str(value)
    if text.startswith("noderef:"):
        text = text[len("noderef:"):]
    return NodeId.parse(text)


def _combined(parts: dict[str, str]) -> str:
    """Fold per-message digests into one order-independent hex digest."""
    whole = hashlib.sha256()
    for key in sorted(parts):
        whole.update(f"{key}:{parts[key]};".encode())
    return whole.hexdigest()


class _RoutingBase(Algorithm):
    """Shared surface: sinks, deterministic injection, neighbor links.

    ``sinks`` maps commodity -> the node that consumes it; a node that
    is the sink of a commodity counts/digests its messages instead of
    relaying.  ``neighbors`` lists the outgoing overlay links this node
    establishes on start (engine CONNECT verb).  ``inject`` arms a
    deterministic source: ``{commodity: {"count": k, "size": s,
    "total": n}}`` enqueues ``k`` messages of ``s`` bytes every
    ``inject_tick`` seconds until ``n`` have been produced (``total``
    omitted = unbounded) — injection rate is exactly
    ``k / inject_tick`` msg/s, virtual-time exact on the DES.
    """

    def __init__(
        self,
        sinks: dict | None = None,
        sink_self: list | None = None,
        neighbors: list | None = None,
        inject: dict | None = None,
        inject_tick: float = 0.05,
        seed: int | None = None,
    ) -> None:
        super().__init__(seed=seed)
        self._sinks: dict[int, NodeId] = {
            int(c): _parse_node(node) for c, node in (sinks or {}).items()
        }
        #: commodities THIS node consumes — bound to our own (possibly
        #: not-yet-assigned) identity at on_start; a deployment spec
        #: cannot reference its own placed identity, so "@self" rides
        #: this kwarg instead of ``sinks``
        self._sink_self: list[int] = [int(c) for c in (sink_self or [])]
        self._neighbors: list[NodeId] = [_parse_node(n) for n in (neighbors or [])]
        self._inject: dict[int, dict] = {
            int(c): dict(spec) for c, spec in (inject or {}).items()
        }
        self.inject_tick = inject_tick
        self._inject_seq: dict[int, int] = {}
        self.injected: dict[int, int] = {}
        self.delivered: dict[int, int] = {}
        self.delivered_bytes: dict[int, int] = {}
        #: commodity -> "commodity#seq" -> payload digest.  Keyed without
        #: the sender so the same scenario on two backends (which assign
        #: different node identities) digests identically; injected
        #: payloads are pure functions of (commodity, seq, size), so a
        #: duplicate delivery can only ever re-write the same value.
        self._digests: dict[int, dict[str, str]] = {}
        self._connect_requested: set[NodeId] = set()
        self._ins: RoutingInstruments | None = None

    # --- lifecycle -----------------------------------------------------------------

    def on_start(self) -> None:
        for commodity in self._sink_self:
            self._sinks[commodity] = self.node_id
        self._bind_telemetry()
        for peer in self._neighbors:
            self._request_link(peer)
        if self._inject:
            self.engine.set_timer(self.inject_tick, INJECT_TOKEN)

    def _bind_telemetry(self) -> None:
        tel = getattr(getattr(self.engine, "config", None), "telemetry", None)
        if tel is not None:
            self._ins = RoutingInstruments(tel, str(self.node_id))

    def _request_link(self, peer: NodeId) -> None:
        """Ask our own engine to open a persistent link to ``peer``."""
        if peer == self.node_id or peer in self._connect_requested:
            return
        self._connect_requested.add(peer)
        self.send(
            Message.with_fields(MsgType.CONNECT, self.node_id, 0, dest=str(peer)),
            self.node_id,
        )

    # --- sinks -----------------------------------------------------------------------

    def set_sink(self, commodity: int, node) -> None:
        """(Re)declare a commodity's sink; usable before or at runtime
        (tests configure after backend-assigned node identities exist)."""
        self._sinks[int(commodity)] = _parse_node(node)

    def set_injection(self, commodity: int, count: int, size: int, total: int | None = None) -> None:
        """(Re)declare a deterministic injector (before ``on_start``)."""
        spec: dict = {"count": count, "size": size}
        if total is not None:
            spec["total"] = total
        self._inject[int(commodity)] = spec

    def is_sink(self, commodity: int) -> bool:
        return self._sinks.get(commodity) == self.node_id

    def _deliver(self, msg: Message) -> Disposition:
        commodity = msg.commodity
        self.delivered[commodity] = self.delivered.get(commodity, 0) + 1
        self.delivered_bytes[commodity] = (
            self.delivered_bytes.get(commodity, 0) + msg.size
        )
        per = self._digests.setdefault(commodity, {})
        per[f"{commodity}#{msg.seq}"] = hashlib.sha256(msg.payload).hexdigest()
        if self._ins is not None:
            self._ins.on_deliver(commodity, msg.size)
        return Disposition.DONE

    def digest(self, commodity: AppId) -> str:
        return _combined(self._digests.get(commodity, {}))

    # --- deterministic injection --------------------------------------------------------

    def _inject_round(self) -> None:
        again = False
        for commodity in sorted(self._inject):
            spec = self._inject[commodity]
            count = int(spec.get("count", 1))
            size = int(spec.get("size", 512))
            total = spec.get("total")
            seq = self._inject_seq.get(commodity, 0)
            if total is not None:
                count = min(count, int(total) - seq)
                if count <= 0:
                    continue
            for _ in range(count):
                msg = Message(
                    MsgType.DATA, self.node_id, commodity,
                    routing_payload(commodity, seq, size), seq=seq,
                )
                seq += 1
                self._accept(msg)
            self._inject_seq[commodity] = seq
            self.injected[commodity] = seq
            if total is None or seq < int(total):
                again = True
        if again:
            self.engine.set_timer(self.inject_tick, INJECT_TOKEN)

    def _accept(self, msg: Message) -> Disposition:
        """Take ownership of a data message (local injection or on_data)."""
        raise NotImplementedError

    def on_control(self, msg: Message) -> Disposition:
        fields = msg.fields()
        if int(fields.get("type", 0)) != INJECT_CONTROL:
            return Disposition.DONE
        count = int(fields.get("param1", 0))
        size = int(fields.get("param2", 512))
        commodity = msg.app
        seq = self._inject_seq.get(commodity, 0)
        for _ in range(count):
            data = Message(
                MsgType.DATA, self.node_id, commodity,
                routing_payload(commodity, seq, size), seq=seq,
            )
            seq += 1
            self._accept(data)
        self._inject_seq[commodity] = seq
        self.injected[commodity] = seq
        return Disposition.DONE

    def on_timer(self, token: int) -> Disposition:
        if token == INJECT_TOKEN:
            self._inject_round()
        return Disposition.DONE

    # --- observability --------------------------------------------------------------------

    def cluster_info(self) -> dict:
        """Duck-typed state hook the cluster layer snapshots on demand."""
        return {
            "injected": {str(c): n for c, n in sorted(self.injected.items())},
            "delivered": {str(c): n for c, n in sorted(self.delivered.items())},
            "digests": {str(c): self.digest(c) for c in sorted(self._digests)},
        }


class BackpressureRoutingAlgorithm(_RoutingBase):
    """Throughput-optimal (and delay-aware) backpressure routing.

    Every ``tick`` seconds the node (1) reports its per-commodity
    backlogs to every established neighbor (``S_BACKLOG``, consumed by
    peers that route *toward* us), and (2) runs the decision rule over
    the neighbors that have reported: the commodity with the largest
    positive weight is dispatched (up to ``quantum`` messages) to each
    neighbor, where weight = queue differential − β·tunnel occupancy
    (+ threshold/deficit terms in the ``"delay"`` variant).

    ``tunnel_limit`` is a hard gate below the soft β penalty: a
    neighbor whose outbound buffer already holds that many messages is
    not a candidate this tick, so a stalled underlay tunnel (or a dead
    peer not yet detected) cannot swallow unbounded backlog — sends
    from timer context bypass engine flow control, so the algorithm
    must bound its own in-flight window.
    """

    def __init__(
        self,
        sinks: dict | None = None,
        sink_self: list | None = None,
        neighbors: list | None = None,
        inject: dict | None = None,
        inject_tick: float = 0.05,
        variant: str = "backpressure",
        beta: float = 0.25,
        threshold: int = 4,
        gamma: float = 0.5,
        tick: float = 0.02,
        quantum: int = 8,
        tunnel_limit: int = 32,
        report_every: int = 5,
        seed: int | None = None,
    ) -> None:
        super().__init__(
            sinks=sinks, sink_self=sink_self, neighbors=neighbors,
            inject=inject, inject_tick=inject_tick, seed=seed,
        )
        if variant == "backpressure":
            policy: BackpressurePolicy = BackpressurePolicy(beta=beta)
        elif variant == "delay":
            policy = DelayAwarePolicy(beta=beta, threshold=threshold, gamma=gamma)
        else:
            raise ValueError(f"unknown routing variant: {variant!r}")
        self.variant = variant
        self.core = RoutingCore(policy, quantum=quantum)
        self.tick = tick
        self.tunnel_limit = tunnel_limit
        #: dispatch ticks between backlog reports — reports ride the same
        #: (possibly bandwidth-capped) links as data, so per-tick reporting
        #: would burn a large slice of a capped uplink on control traffic
        self.report_every = max(1, int(report_every))
        self._ticks = 0
        #: upstream peers we owe a reverse link to (reports flow there)
        self._report_to: set[NodeId] = set()
        self.register(MsgType.S_BACKLOG, self._on_backlog)

    def on_start(self) -> None:
        super().on_start()
        self.engine.set_timer(self.tick, TICK_TOKEN)

    # --- data plane -----------------------------------------------------------------

    def on_data(self, msg: Message) -> Disposition:
        if self.is_sink(msg.commodity):
            return self._deliver(msg)
        self._hold(msg)
        return Disposition.HOLD

    def _accept(self, msg: Message) -> Disposition:
        if self.is_sink(msg.commodity):
            return self._deliver(msg)
        self._hold(msg)
        return Disposition.DONE  # locally injected: nothing owed to a port

    def _hold(self, msg: Message) -> None:
        depth = self.core.enqueue(msg.commodity, msg)
        if self._ins is not None:
            self._ins.set_backlog(msg.commodity, depth)

    # --- control plane ----------------------------------------------------------------

    def _on_backlog(self, msg: Message) -> Disposition:
        fields = msg.fields()
        backlogs = {
            int(c): int(depth)
            for c, depth in fields.get("backlogs", {}).items()
        }
        dists = {
            int(c): int(d) for c, d in fields.get("dists", {}).items()
        }
        self.core.note_neighbor(str(msg.sender), backlogs, dists)
        return Disposition.DONE

    def on_new_upstream(self, msg: Message) -> Disposition:
        peer = NodeId.parse(msg.fields()["peer"])
        self._report_to.add(peer)
        # Reverse link: backlog reports flow against the data direction.
        self._request_link(peer)
        return Disposition.DONE

    def on_broken_link(self, msg: Message) -> Disposition:
        fields = msg.fields()
        peer = NodeId.parse(fields["peer"])
        self.core.forget_neighbor(str(peer))
        self._report_to.discard(peer)
        # Allow a later re-connect if the peer resurfaces.
        self._connect_requested.discard(peer)
        self.known_hosts.discard(peer)
        return Disposition.DONE

    # --- the tick ------------------------------------------------------------------------

    def on_timer(self, token: int) -> Disposition:
        if token != TICK_TOKEN:
            return super().on_timer(token)
        if self._ticks % self.report_every == 0:
            self._report_backlogs()
        self._ticks += 1
        self._dispatch()
        self.engine.set_timer(self.tick, TICK_TOKEN)
        return Disposition.DONE

    def _own_sinks(self) -> list[int]:
        return [c for c, node in self._sinks.items() if node == self.node_id]

    def _report_backlogs(self) -> None:
        downstreams = self.engine.downstreams()
        if not downstreams:
            return
        backlogs = self.core.backlogs()
        report = Message.with_fields(
            MsgType.S_BACKLOG, self.node_id, 0,
            backlogs={str(c): depth for c, depth in backlogs.items()},
            dists={
                str(c): d
                for c, d in self.core.advertised_dists(self._own_sinks()).items()
            },
        )
        # Sorted for determinism; every established link carries the
        # report — peers that never route toward us just ignore it.  A
        # tunnel already at the hard limit is skipped: a report queued
        # behind a full buffer arrives seconds stale, and on a capped
        # uplink it competes with the very data it describes.
        tunnels = self.engine.queue_snapshot()["send"]
        sent = 0
        for peer in sorted(downstreams, key=str):
            if tunnels.get(str(peer), 0) >= self.tunnel_limit:
                continue
            self.send(report, peer)
            sent += 1
        if self._ins is not None and sent:
            self._ins.on_backlog_report(self.engine.now(), sent, backlogs)

    def _dispatch(self) -> None:
        if not self.core.total_backlog():
            return
        snapshot = self.engine.queue_snapshot()
        tunnels = {
            str(dest): int(depth) for dest, depth in snapshot["send"].items()
        }
        established = {str(d): d for d in self.engine.downstreams()}
        candidates = [
            label for label in established
            if tunnels.get(label, 0) < self.tunnel_limit
        ]
        decisions = self.core.decide(
            tunnels, candidates, dists=self.core.advertised_dists(self._own_sinks()),
        )
        ins = self._ins
        now = self.engine.now()
        for decision in decisions:
            dest = established[decision.neighbor]
            for msg in self.core.take(decision.commodity, decision.count):
                self.send(msg, dest)
            if ins is not None:
                ins.on_decision(
                    now, decision.neighbor, decision.commodity,
                    decision.count, decision.weight,
                )
                ins.on_forward(decision.commodity, decision.count)
                ins.set_backlog(decision.commodity, self.core.backlog(decision.commodity))
        if ins is not None:
            for label in candidates:
                view = self.core.neighbor_view(label)
                if view is None:
                    continue
                for commodity in self.core.backlogs():
                    diff = self.core.differential(label, commodity)
                    if diff is not None:
                        ins.set_differential(label, commodity, diff)

    # --- observability --------------------------------------------------------------------

    def cluster_info(self) -> dict:
        info = super().cluster_info()
        info["backlog"] = {str(c): d for c, d in self.core.backlogs().items()}
        info["variant"] = self.variant
        return info


class StaticPathRoutingAlgorithm(_RoutingBase):
    """Fixed next-hop per commodity: the tree-heuristic baseline.

    Any of the paper's tree heuristics induces exactly one path per
    unicast commodity, so the best static path assignment is the best
    a tree-based policy can do on a multi-commodity matrix — that is
    the baseline ``fig_routing_throughput`` sweeps against.
    """

    def __init__(
        self,
        routes: dict | None = None,
        sinks: dict | None = None,
        sink_self: list | None = None,
        neighbors: list | None = None,
        inject: dict | None = None,
        inject_tick: float = 0.05,
        seed: int | None = None,
    ) -> None:
        super().__init__(
            sinks=sinks, sink_self=sink_self, neighbors=neighbors,
            inject=inject, inject_tick=inject_tick, seed=seed,
        )
        self._routes: dict[int, NodeId] = {
            int(c): _parse_node(node) for c, node in (routes or {}).items()
        }
        self.forwarded: dict[int, int] = {}

    def set_route(self, commodity: int, next_hop) -> None:
        """(Re)pin a commodity's next hop (tests configure post-placement)."""
        self._routes[int(commodity)] = _parse_node(next_hop)

    def on_data(self, msg: Message) -> Disposition:
        return self._accept(msg)

    def _accept(self, msg: Message) -> Disposition:
        commodity = msg.commodity
        if self.is_sink(commodity):
            return self._deliver(msg)
        next_hop = self._routes.get(commodity)
        if next_hop is None:
            return Disposition.DONE  # no route: drop (counted nowhere, like a null tree)
        self.send(msg, next_hop)
        self.forwarded[commodity] = self.forwarded.get(commodity, 0) + 1
        if self._ins is not None:
            self._ins.on_forward(commodity, 1)
        return Disposition.DONE

    def cluster_info(self) -> dict:
        info = super().cluster_info()
        info["forwarded"] = {str(c): n for c, n in sorted(self.forwarded.items())}
        return info
