"""Per-commodity routing telemetry (the ``ioverlay_routing_*`` family).

Bound lazily from the hosting engine's ``config.telemetry`` (the same
pattern as the membership and stabilize families): when the node runs
uninstrumented every hook below is a no-op attribute check, so the
routing hot path pays nothing.  Metric snapshots ride the periodic
STATUS report to the observer (and, on a cluster, through the
aggregation proxies to the root), which is how the experiment asserts
per-commodity visibility at the root.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.tracing import EventType


class RoutingInstruments:
    """Counters/gauges/trace hooks for one routing node.

    ``None``-safe by construction: callers hold ``RoutingInstruments |
    None`` and guard with ``if ins is not None`` exactly like the
    engines do with :class:`~repro.telemetry.instruments.EngineInstruments`.
    """

    __slots__ = (
        "node", "tracer",
        "_queue_gauge", "_diff_gauge",
        "_forwarded", "_delivered", "_delivered_bytes", "_decisions",
    )

    def __init__(self, telemetry: Any, node: str) -> None:
        self.node = node
        self.tracer = telemetry.tracer
        reg = telemetry.registry
        self._queue_gauge = reg.gauge(
            "ioverlay_routing_queue_messages",
            "Per-commodity backpressure backlog held by the routing algorithm",
            ("node", "commodity"),
        )
        self._diff_gauge = reg.gauge(
            "ioverlay_routing_queue_differential",
            "Last computed queue differential toward a neighbor (per commodity)",
            ("node", "peer", "commodity"),
        )
        self._forwarded = reg.counter(
            "ioverlay_routing_forwarded_total",
            "Messages a routing decision pushed to a neighbor, per commodity",
            ("node", "commodity"),
        )
        self._delivered = reg.counter(
            "ioverlay_routing_delivered_total",
            "Messages consumed at their commodity sink",
            ("node", "commodity"),
        )
        self._delivered_bytes = reg.counter(
            "ioverlay_routing_delivered_bytes_total",
            "Bytes consumed at their commodity sink",
            ("node", "commodity"),
        )
        self._decisions = reg.counter(
            "ioverlay_routing_decisions_total",
            "Routing decisions executed (one per neighbor-commodity pick)",
            ("node",),
        ).labels(node=node)

    # --- hooks -----------------------------------------------------------------

    def set_backlog(self, commodity: int, depth: int) -> None:
        self._queue_gauge.labels(node=self.node, commodity=commodity).set(depth)

    def set_differential(self, peer: str, commodity: int, diff: float) -> None:
        self._diff_gauge.labels(
            node=self.node, peer=peer, commodity=commodity
        ).set(diff)

    def on_forward(self, commodity: int, count: int) -> None:
        self._forwarded.labels(node=self.node, commodity=commodity).inc(count)

    def on_deliver(self, commodity: int, nbytes: int) -> None:
        self._delivered.labels(node=self.node, commodity=commodity).inc()
        self._delivered_bytes.labels(node=self.node, commodity=commodity).inc(nbytes)

    def on_decision(
        self, now: float, neighbor: str, commodity: int, count: int, weight: float
    ) -> None:
        self._decisions.inc()
        if self.tracer.enabled:
            self.tracer.record(
                now, self.node, EventType.ROUTE_DECISION,
                app=commodity, peer=neighbor, count=count, weight=round(weight, 3),
            )

    def on_backlog_report(self, now: float, peers: int, backlogs: dict) -> None:
        if self.tracer.enabled:
            self.tracer.record(
                now, self.node, EventType.BACKLOG_REPORT,
                peers=peers, backlogs={str(k): v for k, v in backlogs.items()},
            )
