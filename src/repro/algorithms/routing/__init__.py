"""Backpressure routing family: throughput-optimal and delay-aware.

See :mod:`repro.algorithms.routing.algorithm` for the engine-facing
classes and :mod:`repro.algorithms.routing.core` for the pure decision
rule (OORP weights, thresholded/deficit variant).
"""

from repro.algorithms.routing.algorithm import (
    BackpressureRoutingAlgorithm,
    StaticPathRoutingAlgorithm,
    routing_payload,
)
from repro.algorithms.routing.core import (
    BackpressurePolicy,
    DelayAwarePolicy,
    RouteDecision,
    RoutingCore,
)

__all__ = [
    "BackpressurePolicy",
    "BackpressureRoutingAlgorithm",
    "DelayAwarePolicy",
    "RouteDecision",
    "RoutingCore",
    "StaticPathRoutingAlgorithm",
    "routing_payload",
]
