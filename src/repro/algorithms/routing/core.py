"""Pure backpressure bookkeeping: commodity queues, neighbor views, weights.

This module is engine-free — no messages, no timers, no NodeIds — so the
throughput-optimal decision rule can be unit-tested exhaustively and
reused by both routing variants:

- :class:`BackpressurePolicy` implements the Optimal Overlay Routing
  Policy of Rai/Singh/Modiano ("A Distributed Algorithm for Throughput
  Optimal Routing in Overlay Networks"): the weight of pushing commodity
  ``c`` toward overlay neighbor ``m`` is the queue differential
  ``Q_n^c - Q~_m^c`` minus an occupancy penalty for the underlay tunnel
  to ``m``.  Overlay nodes only see tunnel *entry points*; the penalty
  term (``beta * tunnel occupancy``) keeps a node from dumping backlog
  into a tunnel whose underlay path is already loaded — in this repo the
  tunnel state is the engine's outbound buffer toward ``m``, which is
  exactly the un-drained in-flight window of that overlay hop.

- :class:`DelayAwarePolicy` is the delay-sensitive variant
  (Singh/Modiano, "Optimal Routing for Delay-Sensitive Traffic in
  Overlay Networks"): backlogs only count *above* a per-commodity
  threshold ``M`` (small standing queues stop generating pressure, so
  short paths win at low load), and a per-commodity deficit counter
  accrues while a backlogged commodity goes unserved, biasing later
  rounds toward it so thresholding cannot starve a low-rate commodity.

:class:`RoutingCore` owns the per-commodity FIFO queues of held items
(the hosting algorithm stores engine ``Message`` objects; tests store
ints) and turns one tick's state into a deterministic list of
:class:`RouteDecision`.  Determinism matters: the DES runs the same
scenario across seeds and the figures assert byte-identical outcomes,
so every iteration below is in sorted order and ties break lexically.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass(frozen=True)
class RouteDecision:
    """One tick's verdict: move ``count`` messages of ``commodity`` to ``neighbor``."""

    neighbor: str
    commodity: int
    count: int
    weight: float


#: hop distance assumed for a neighbor that has not advertised a route
#: to a commodity's sink — far enough that any advertised route wins,
#: finite so an all-unknown network still drains by pure differentials
DIST_CAP = 16


@dataclass
class BackpressurePolicy:
    """OORP weights: queue differential minus a tunnel-occupancy penalty.

    ``eta`` adds the standard shortest-path bias: without it, pure
    per-hop backpressure ping-pongs a terminating burst between nodes
    with tied differentials forever (each hop *carries* the backlog, so
    every direction looks downhill).  The bias is *relative* —
    ``eta * (local_dist - 1 - remote_dist)`` — so a hop along a
    shortest path costs nothing (a single message still flows at any
    distance from its sink), a sideways hop pays ``eta`` and a backward
    hop ``2*eta``, while genuine queue gradients stay in charge under
    load: one full message of differential outweighs ``1/eta`` hops.
    """

    #: penalty per message already sitting in the underlay tunnel
    #: (outbound buffer) toward the candidate neighbor
    beta: float = 1.0
    #: penalty per hop of detour relative to the shortest advertised
    #: path to the commodity's sink
    eta: float = 0.2

    def weight(
        self,
        commodity: int,
        local: int,
        remote: int,
        tunnel: int,
        deficit: float,
        local_dist: int = 1,
        remote_dist: int = 0,
    ) -> float:
        bias = self.eta * (local_dist - 1 - remote_dist)
        return float(local - remote) - self.beta * tunnel + bias


@dataclass
class DelayAwarePolicy(BackpressurePolicy):
    """Thresholded backlogs + deficit counters (delay-sensitive variant)."""

    #: backlog below this threshold exerts no pressure; the standing
    #: queue a commodity may keep without attracting service
    threshold: int = 4
    #: weight bonus per unit of accumulated deficit
    gamma: float = 0.5

    def weight(
        self,
        commodity: int,
        local: int,
        remote: int,
        tunnel: int,
        deficit: float,
        local_dist: int = 1,
        remote_dist: int = 0,
    ) -> float:
        eff_local = max(local - self.threshold, 0)
        eff_remote = max(remote - self.threshold, 0)
        bias = self.eta * (local_dist - 1 - remote_dist)
        return (
            float(eff_local - eff_remote)
            - self.beta * tunnel
            + self.gamma * deficit
            + bias
        )


class RoutingCore:
    """Per-commodity queues + neighbor backlog views + the decision rule.

    The hosting algorithm enqueues held messages, feeds neighbor backlog
    reports and tunnel occupancies in, and executes the returned
    decisions; everything in between is pure state.
    """

    def __init__(self, policy: BackpressurePolicy, quantum: int = 8) -> None:
        if quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {quantum}")
        self.policy = policy
        #: messages a single decision may move (per neighbor per tick)
        self.quantum = quantum
        self._queues: dict[int, deque] = {}
        #: neighbor key -> {commodity -> reported backlog}
        self._neighbors: dict[str, dict[int, int]] = {}
        #: neighbor key -> {commodity -> advertised hop distance to sink}
        self._neighbor_dists: dict[str, dict[int, int]] = {}
        #: per-commodity deficit: rounds spent backlogged but unserved
        self._deficits: dict[int, float] = {}
        # cumulative counters (telemetry reads these)
        self.enqueued = 0
        self.dispatched = 0
        self.decisions = 0

    # --- local queues -----------------------------------------------------------------

    def enqueue(self, commodity: int, item: Any) -> int:
        """Hold one message of ``commodity``; returns the new backlog."""
        queue = self._queues.get(commodity)
        if queue is None:
            queue = self._queues[commodity] = deque()
        queue.append(item)
        self.enqueued += 1
        return len(queue)

    def backlog(self, commodity: int) -> int:
        queue = self._queues.get(commodity)
        return 0 if queue is None else len(queue)

    def backlogs(self) -> dict[int, int]:
        """Current ``{commodity: depth}`` over non-empty queues (sorted)."""
        return {
            c: len(q) for c, q in sorted(self._queues.items()) if q
        }

    def total_backlog(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def take(self, commodity: int, count: int) -> list:
        """Pop up to ``count`` held items of ``commodity``, FIFO order."""
        queue = self._queues.get(commodity)
        if queue is None:
            return []
        out = []
        while queue and len(out) < count:
            out.append(queue.popleft())
        self.dispatched += len(out)
        return out

    def drop_commodity(self, commodity: int) -> list:
        """Discard a commodity's queue entirely (e.g. its sink is gone)."""
        queue = self._queues.pop(commodity, None)
        self._deficits.pop(commodity, None)
        return list(queue) if queue else []

    # --- neighbor views ---------------------------------------------------------------

    def note_neighbor(
        self,
        neighbor: str,
        backlogs: dict[int, int],
        dists: dict[int, int] | None = None,
    ) -> None:
        """Record a neighbor's reported backlogs (and sink distances).

        A report *replaces* the previous view — absent commodities mean
        an empty queue over there (and, for ``dists``, no known route),
        not missing data.
        """
        self._neighbors[neighbor] = dict(backlogs)
        self._neighbor_dists[neighbor] = dict(dists or {})

    def forget_neighbor(self, neighbor: str) -> None:
        """Drop a dead neighbor; it is no longer a routing candidate."""
        self._neighbors.pop(neighbor, None)
        self._neighbor_dists.pop(neighbor, None)

    def neighbor_view(self, neighbor: str) -> dict[int, int] | None:
        return self._neighbors.get(neighbor)

    def neighbors(self) -> list[str]:
        return sorted(self._neighbors)

    def differential(self, neighbor: str, commodity: int) -> int | None:
        """``Q_local - Q~_neighbor`` for one (neighbor, commodity) pair."""
        view = self._neighbors.get(neighbor)
        if view is None:
            return None
        return self.backlog(commodity) - view.get(commodity, 0)

    def deficit(self, commodity: int) -> float:
        return self._deficits.get(commodity, 0.0)

    def advertised_dists(self, sink_commodities: Iterable[int] = ()) -> dict[int, int]:
        """This node's hop distance to each reachable commodity sink.

        Distance-vector over the backlog exchange: a sink advertises 0
        for its own commodity, everyone else advertises the best
        neighbor's distance plus one (dropped at :data:`DIST_CAP`).
        Feeds both the outgoing report and the local shortest-path bias.
        """
        dists = {int(c): 0 for c in sink_commodities}
        known: set[int] = set()
        for nd in self._neighbor_dists.values():
            known.update(nd)
        for commodity in sorted(known):
            if commodity in dists:
                continue
            best = min(
                (
                    nd[commodity]
                    for nd in self._neighbor_dists.values()
                    if commodity in nd
                ),
                default=None,
            )
            if best is not None and best + 1 < DIST_CAP:
                dists[commodity] = best + 1
        return dists

    # --- the decision rule --------------------------------------------------------------

    def decide(
        self,
        tunnels: dict[str, int],
        candidates: Iterable[str] | None = None,
        dists: dict[int, int] | None = None,
    ) -> list[RouteDecision]:
        """One tick: pick (commodity, count) per candidate neighbor.

        ``tunnels`` maps neighbor keys to tunnel occupancy (outbound
        buffer depth); ``candidates`` restricts which reported neighbors
        are currently reachable (default: all reported); ``dists`` is
        this node's own per-commodity sink distance (for the relative
        shortest-path bias — default :meth:`advertised_dists` with no
        local sinks).

        Allocation follows the max-weight rule: every positive
        (neighbor, commodity) weight is scored first, then backlog is
        claimed in descending-weight order (at most one commodity per
        neighbor per tick), each claim debiting a working copy of the
        local backlogs.  Ties break lexically, so two neighbors never
        claim the same message and the outcome is a pure function of
        the inputs.  Visiting neighbors one at a time instead would
        let whichever neighbor sorts first drain the queue before a
        higher-weight neighbor is even considered.

        Deficit accounting happens here: commodities left backlogged
        and unserved by this tick accrue one unit; a served commodity
        pays its deficit down by the amount moved.
        """
        available = {c: len(q) for c, q in self._queues.items() if q}
        if candidates is None:
            pool = self.neighbors()
        else:
            wanted = set(candidates)
            pool = [n for n in self.neighbors() if n in wanted]
        if dists is None:
            dists = self.advertised_dists()
        policy = self.policy
        scored: list[tuple[float, str, int]] = []
        for neighbor in pool:
            view = self._neighbors[neighbor]
            ndists = self._neighbor_dists.get(neighbor, {})
            tunnel = tunnels.get(neighbor, 0)
            for commodity in sorted(available):
                local_dist = dists.get(commodity, DIST_CAP)
                remote_dist = ndists.get(commodity, DIST_CAP)
                if local_dist >= DIST_CAP and remote_dist >= DIST_CAP:
                    # no routing information anywhere: fall back to pure
                    # queue-differential backpressure (zero bias)
                    local_dist, remote_dist = 1, 0
                elif remote_dist > local_dist:
                    # distance-constrained backpressure: never hand a
                    # commodity to a neighbor strictly farther from its
                    # sink.  Under overload the raw differential grows
                    # without bound and would eventually overwhelm any
                    # fixed bias, spilling data backward over (possibly
                    # bandwidth-capped) links it just traversed.
                    continue
                w = policy.weight(
                    commodity,
                    available[commodity],
                    view.get(commodity, 0),
                    tunnel,
                    self._deficits.get(commodity, 0.0),
                    local_dist=local_dist,
                    remote_dist=remote_dist,
                )
                if w > 0.0:
                    scored.append((w, neighbor, commodity))
        scored.sort(key=lambda s: (-s[0], s[1], s[2]))
        out: list[RouteDecision] = []
        served: dict[int, int] = {}
        claimed: set[str] = set()
        for w, neighbor, commodity in scored:
            if neighbor in claimed:
                continue
            left = available.get(commodity, 0)
            if left <= 0:
                continue
            count = min(self.quantum, left)
            out.append(RouteDecision(neighbor, commodity, count, w))
            claimed.add(neighbor)
            served[commodity] = served.get(commodity, 0) + count
            if left - count:
                available[commodity] = left - count
            else:
                del available[commodity]
        self.decisions += len(out)
        # Deficit bookkeeping: unserved backlogged commodities accrue,
        # served ones pay down (never below zero).
        for commodity, queue in self._queues.items():
            if not queue:
                continue
            moved = served.get(commodity, 0)
            if moved:
                new = self._deficits.get(commodity, 0.0) - moved
                if new > 0:
                    self._deficits[commodity] = new
                else:
                    self._deficits.pop(commodity, None)
            else:
                self._deficits[commodity] = self._deficits.get(commodity, 0.0) + 1.0
        return out
