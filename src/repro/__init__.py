"""iOverlay, reproduced in Python.

A from-scratch reimplementation of *"iOverlay: A Lightweight Middleware
Infrastructure for Overlay Application Implementations"* (Li, Guo, Wang
— Middleware 2004): the message switching engine, bandwidth emulation,
failure handling, observer/proxy monitoring plane, the ``iAlgorithm``
programming model, and the paper's three case studies (network coding,
dissemination-tree construction, service federation) — on both a
deterministic discrete-event simulator (:mod:`repro.sim`) and real
asyncio TCP sockets (:mod:`repro.net`).

Start with :class:`repro.sim.SimNetwork` and
:class:`repro.core.Algorithm`; see README.md for a walkthrough and
DESIGN.md for the system inventory.
"""

from repro.core.algorithm import Algorithm, Disposition
from repro.core.bandwidth import BandwidthSpec
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.core.msgtypes import MsgType
from repro.sim.network import NetworkConfig, SimNetwork

__version__ = "0.1.0"

__all__ = [
    "Algorithm",
    "BandwidthSpec",
    "Disposition",
    "Message",
    "MsgType",
    "NetworkConfig",
    "NodeId",
    "SimNetwork",
    "__version__",
]
