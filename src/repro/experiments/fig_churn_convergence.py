"""Extension experiment — convergence under sustained churn.

Two legs, one protocol:

* **Slotted leg** — the SWIM core + incremental ring pointer under the
  round-based simulator (:mod:`repro.membership.slotted`), which runs
  the identical protocol logic at 10^4–10^5 nodes.  Starting from an
  adversarial weakly-connected topology, a seeded Poisson churn window
  (plus an optional flash crowd) plays out, and we report the
  convergence round (first round of the stable legal-ring suffix after
  the churn ends), the residual disruption during churn (mean fraction
  of alive nodes whose successor pointer is wrong) and the per-node
  message cost.

* **Live leg** — full :class:`~repro.net.engine.AsyncioEngine` nodes
  running :class:`~repro.algorithms.stabilize.SelfStabilizingRingAlgorithm`
  packed on a :class:`~repro.net.virtual.VirtualHost`, with the same
  declarative churn schedule replayed in wall-clock time.  Convergence
  is judged against the ground-truth oracle
  (:func:`~repro.algorithms.stabilize.ring.ideal_successors`), and the
  run also reports how many asyncio tasks remained after teardown —
  the leak check that makes "survived churn" mean *cleanly* survived.

Both legs consume the same :class:`~repro.membership.churn.ChurnSchedule`
generator, so a seed names one workload across scales and backends.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field

from repro.experiments.common import Table
from repro.membership import (
    ChurnConfig,
    ChurnSchedule,
    FlashCrowd,
    SwimConfig,
    adversarial_edges,
)
from repro.membership.slotted import SlottedChurnSim, SlottedStats

# ------------------------------------------------------------- slotted leg


@dataclass
class SlottedPoint:
    """One (population, topology) cell of the convergence curve."""

    n_nodes: int
    topology: str
    churned: bool
    convergence_round: int | None
    residual_disruption: float
    packets_per_node_round: float
    reseeds: int
    wall_seconds: float
    stats: SlottedStats = field(repr=False, default=None)


def _default_churn(n_nodes: int, seed: int, duration: float) -> ChurnSchedule:
    """A churn window scaled to the population: ~10% turnover plus a
    flash crowd of 2% arriving at the midpoint."""
    rate = max(0.2, 0.05 * n_nodes / duration)
    config = ChurnConfig(
        seed=seed,
        duration=duration,
        arrival_rate=rate,
        departure_rate=rate,
        leave_fraction=0.3,
        flash_crowds=(FlashCrowd(at=duration / 2, size=max(2, n_nodes // 50)),),
        min_population=max(3, n_nodes // 2),
        quiesce=2.0,
    )
    return ChurnSchedule.generate(config, [f"n{i}" for i in range(n_nodes)])


def run_slotted_point(
    n_nodes: int = 10_000,
    topology: str = "line",
    seed: int = 0,
    churn: bool = True,
    churn_duration: float = 30.0,
    max_rounds: int = 600,
) -> SlottedPoint:
    """One slotted run: adversarial start, optional churn window."""
    edges = adversarial_edges(topology, n_nodes, rng=random.Random(seed))
    schedule = _default_churn(n_nodes, seed, churn_duration) if churn else None
    sim = SlottedChurnSim(n_nodes, edges, seed=seed, churn=schedule)
    start = time.perf_counter()
    stats = sim.run(max_rounds)
    wall = time.perf_counter() - start
    per_node_round = (
        stats.packets / stats.node_rounds if stats.node_rounds else 0.0
    )
    return SlottedPoint(
        n_nodes=n_nodes,
        topology=topology,
        churned=schedule is not None,
        convergence_round=stats.convergence_round,
        residual_disruption=stats.residual_disruption,
        packets_per_node_round=per_node_round,
        reseeds=stats.reseeds,
        wall_seconds=wall,
        stats=stats,
    )


def run_slotted_curves(
    sizes: tuple[int, ...] = (1_000, 10_000),
    topologies: tuple[str, ...] = ("line", "clusters"),
    seed: int = 0,
    churn: bool = True,
    max_rounds: int = 600,
) -> list[SlottedPoint]:
    """The convergence-time curve: every (size, topology) cell."""
    return [
        run_slotted_point(
            n_nodes=n, topology=topology, seed=seed, churn=churn,
            max_rounds=max_rounds,
        )
        for n in sizes
        for topology in topologies
    ]


# ---------------------------------------------------------------- live leg


@dataclass
class LiveChurnRun:
    """Outcome of the wall-clock VirtualHost leg."""

    n_start: int
    n_final: int
    joins: int
    crashes: int
    leaves: int
    bootstrap_seconds: float      # adversarial line -> first legal ring
    reconverge_seconds: float     # churn quiesce -> legal ring again
    converged: bool
    leaked_tasks: int


async def _poll(predicate, timeout: float, interval: float = 0.1) -> bool:
    deadline = asyncio.get_running_loop().time() + timeout
    while asyncio.get_running_loop().time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval)
    return predicate()


async def _run_live(
    n_nodes: int,
    seed: int,
    duration: float,
    period: float,
    convergence_timeout: float,
) -> LiveChurnRun:
    from repro.algorithms.stabilize import (
        SelfStabilizingRingAlgorithm,
        ideal_successors,
    )
    from repro.net.engine import NetEngineConfig
    from repro.net.virtual import VirtualHost

    def swim_config() -> SwimConfig:
        return SwimConfig(
            period=period,
            ping_timeout=period * 0.4,
            suspicion_mult=3.0,
        )

    def net_config() -> NetEngineConfig:
        return NetEngineConfig(report_interval=1000.0)

    host = VirtualHost()
    alive: dict[str, SelfStabilizingRingAlgorithm] = {}
    engines: dict[str, object] = {}
    next_seed = [seed]

    def new_algorithm() -> SelfStabilizingRingAlgorithm:
        next_seed[0] += 1
        return SelfStabilizingRingAlgorithm(
            config=swim_config(), seed=next_seed[0]
        )

    names = [f"n{i}" for i in range(n_nodes)]
    for name in names:
        alive[name] = new_algorithm()
        engines[name] = host.add_node(alive[name], config=net_config())
    await host.start()

    # Adversarial bootstrap knowledge: a line (i knows only i+1), the
    # slowest-mixing weakly connected topology.
    for left, right in zip(names, names[1:]):
        alive[left].known_hosts.add(engines[right].node_id)
    for name in names:
        alive[name].on_bootstrapped()

    def ring_converged() -> bool:
        algorithms = list(alive.values())
        if len(algorithms) < 2:
            return True
        oracle = ideal_successors([alg.node_id for alg in algorithms])
        return all(
            alg.ring_legal() and alg.successor() == oracle[alg.node_id]
            for alg in algorithms
        )

    t0 = asyncio.get_running_loop().time()
    booted = await _poll(ring_converged, convergence_timeout)
    bootstrap_seconds = asyncio.get_running_loop().time() - t0

    # Replay the seeded churn schedule in wall time.
    schedule = ChurnSchedule.generate(
        ChurnConfig(
            seed=seed,
            duration=duration,
            arrival_rate=0.5,
            departure_rate=0.5,
            leave_fraction=0.4,
            min_population=max(3, n_nodes // 2),
            quiesce=1.0,
        ),
        names,
    )
    joins = crashes = leaves = 0
    loop = asyncio.get_running_loop()
    t_churn = loop.time()
    for event in sorted(schedule.events, key=lambda e: e.at):
        await asyncio.sleep(max(0.0, t_churn + event.at - loop.time()))
        if event.kind == "join":
            algorithm = new_algorithm()
            engine = host.add_node(algorithm, config=net_config())
            await host.start_node(engine)
            contact = next(iter(alive), None)
            if contact is not None:
                algorithm.known_hosts.add(engines[contact].node_id)
            algorithm.on_bootstrapped()
            alive[event.name] = algorithm
            engines[event.name] = engine
            joins += 1
        elif event.name in alive:
            algorithm = alive.pop(event.name)
            engine = engines.pop(event.name)
            if event.kind == "leave":
                algorithm.announce_leave()
                await asyncio.sleep(0.05)
                leaves += 1
            else:
                crashes += 1
            await host.stop_node(engine)

    t1 = loop.time()
    converged = await _poll(ring_converged, convergence_timeout)
    reconverge_seconds = loop.time() - t1

    await host.stop()
    await asyncio.sleep(0.05)  # let cancellations unwind
    current = asyncio.current_task()
    leaked = [
        task for task in asyncio.all_tasks()
        if task is not current and not task.done()
    ]
    return LiveChurnRun(
        n_start=n_nodes,
        n_final=len(alive),
        joins=joins,
        crashes=crashes,
        leaves=leaves,
        bootstrap_seconds=bootstrap_seconds,
        reconverge_seconds=reconverge_seconds,
        converged=bool(booted and converged),
        leaked_tasks=len(leaked),
    )


def run_live_churn(
    n_nodes: int = 10,
    seed: int = 0,
    duration: float = 6.0,
    period: float = 0.25,
    convergence_timeout: float = 25.0,
) -> LiveChurnRun:
    """Run the live VirtualHost leg (its own event loop)."""
    return asyncio.run(
        _run_live(n_nodes, seed, duration, period, convergence_timeout)
    )


# ------------------------------------------------------------------ result


@dataclass
class ChurnConvergenceResult:
    points: list[SlottedPoint]
    live: LiveChurnRun | None

    def tables(self) -> list[Table]:
        tables = []
        curve = Table(
            "Churn convergence — slotted protocol core (DES rounds)",
            ["nodes", "topology", "churn", "convergence round",
             "residual disruption", "pkts/node/round", "rescues"],
        )
        for point in self.points:
            curve.add_row(
                point.n_nodes,
                point.topology,
                "yes" if point.churned else "no",
                point.convergence_round
                if point.convergence_round is not None else "-",
                f"{point.residual_disruption:.4f}",
                f"{point.packets_per_node_round:.2f}",
                point.reseeds,
            )
        curve.note("convergence round = first round of the sustained "
                   "legal-ring suffix after the churn window closes")
        curve.note("residual disruption = mean fraction of alive nodes "
                   "with a wrong successor pointer while churn is active")
        tables.append(curve)
        if self.live is not None:
            live = Table(
                "Churn convergence — live VirtualHost leg",
                ["metric", "value"],
            )
            run = self.live
            live.add_row("starting nodes", run.n_start)
            live.add_row("final nodes", run.n_final)
            live.add_row("joins / crashes / leaves",
                         f"{run.joins} / {run.crashes} / {run.leaves}")
            live.add_row("bootstrap convergence (s)",
                         f"{run.bootstrap_seconds:.2f}")
            live.add_row("re-convergence after churn (s)",
                         f"{run.reconverge_seconds:.2f}")
            live.add_row("oracle agreement", "yes" if run.converged else "NO")
            live.add_row("leaked asyncio tasks", run.leaked_tasks)
            live.note("oracle agreement: every survivor's successor matches "
                      "ideal_successors() over the ground-truth alive set")
            tables.append(live)
        return tables


def run_churn_convergence(
    sizes: tuple[int, ...] = (1_000, 10_000),
    topologies: tuple[str, ...] = ("line", "clusters"),
    seed: int = 0,
    live_nodes: int = 10,
    max_rounds: int = 600,
) -> ChurnConvergenceResult:
    points = run_slotted_curves(
        sizes=sizes, topologies=topologies, seed=seed, max_rounds=max_rounds
    )
    live = run_live_churn(n_nodes=live_nodes, seed=seed)
    return ChurnConvergenceResult(points=points, live=live)


def main() -> None:
    result = run_churn_convergence()
    for table in result.tables():
        table.print()


if __name__ == "__main__":
    main()
