"""Figs. 14 and 15 — one federated service on a 16-node service overlay.

Fig. 14 is the constructed complex service (the chosen path through the
service instances); Fig. 15(a) is the per-node sAware/sFederate control
overhead during the session; Fig. 15(b) the per-link and total per-node
bandwidth once the live data stream runs through the federated path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.ids import NodeId
from repro.experiments.common import KB, Table
from repro.experiments.federation_common import ServiceOverlay, build_service_overlay


@dataclass
class Fig14Result:
    path: list[NodeId]
    service_types: list[int]
    end_to_end_rate: float  # measured at the sink, B/s
    hop_latency_s: float
    per_node_overhead: dict[NodeId, dict[str, int]]
    per_node_bandwidth: dict[NodeId, dict[str, float]]

    def topology_table(self) -> Table:
        table = Table("Fig. 14 — the constructed complex service",
                      ["hop", "node", "service type"])
        for i, node in enumerate(self.path):
            table.add_row(i, str(node), self.service_types[i])
        table.note(f"last-hop measured throughput: {self.end_to_end_rate / KB:.1f} KB/s"
                   f" (paper: 69374 B/s ~= 69.4 KB/s on PlanetLab)")
        return table

    def overhead_table(self) -> Table:
        table = Table("Fig. 15(a) — per-node control message overhead (bytes)",
                      ["node", "sAware", "sFederate"])
        ordering = sorted(
            self.per_node_overhead.items(),
            key=lambda kv: -(kv[1]["aware"] + kv[1]["federate"]),
        )
        for node, overhead in ordering:
            table.add_row(str(node), overhead["aware"], overhead["federate"])
        table.note("paper: sFederate overhead is small compared to sAware;"
                   " several nodes stay untouched")
        return table

    def bandwidth_table(self) -> Table:
        table = Table(
            "Fig. 15(b) — per-link and total per-node bandwidth (KB/s)",
            ["node", "download", "upload", "total"],
        )
        ordering = sorted(self.per_node_bandwidth.items(), key=lambda kv: -kv[1]["total"])
        for node, bw in ordering:
            table.add_row(
                str(node),
                f"{bw['down'] / KB:.1f}",
                f"{bw['up'] / KB:.1f}",
                f"{bw['total'] / KB:.1f}",
            )
        return table


def run_fig14_15(
    n_nodes: int = 16,
    seed: int = 2,
    data_time: float = 20.0,
    payload_size: int = 5000,
) -> Fig14Result:
    overlay: ServiceOverlay = build_service_overlay(
        n_nodes, policy="sflow", n_types=4, instances_per_type=3, seed=seed
    )
    net = overlay.net
    requirement = overlay.random_requirement(min_len=4, max_len=4)
    source = overlay.rng.choice(overlay.source_candidates())
    session = overlay.driver.federate(source, requirement)
    net.run(5.0)
    outcome = overlay.driver.outcome(session, source, requirement)
    if not outcome.paths:
        raise RuntimeError("federation failed to construct a path")
    path = outcome.paths[0]

    # Deploy the live data stream through the federated services.
    net.observer.deploy_source(source, app=session, payload_size=payload_size)
    net.run(data_time)

    sink = path[-1]
    sink_algorithm = overlay.algorithms[sink]
    hop_latency = sum(
        net.latency(path[i], path[i + 1]) for i in range(len(path) - 1)
    )
    per_node_overhead = {
        node: {"aware": alg.overhead_bytes("aware"), "federate": alg.overhead_bytes("federate")}
        for node, alg in overlay.algorithms.items()
    }
    per_node_bandwidth: dict[NodeId, dict[str, float]] = {}
    for node, alg in overlay.algorithms.items():
        engine = net.engines[node]
        down = sum(engine.recv_rate(peer) for peer in engine.upstreams())
        up = sum(engine.send_rate(peer) for peer in engine.downstreams())
        per_node_bandwidth[node] = {"down": down, "up": up, "total": down + up}

    types = [requirement.node(nid).service_type for nid in sorted(requirement.nodes)]
    return Fig14Result(
        path=path,
        service_types=types[: len(path)],
        end_to_end_rate=sink_algorithm.receive_rate(),
        hop_latency_s=hop_latency,
        per_node_overhead=per_node_overhead,
        per_node_bandwidth=per_node_bandwidth,
    )


def main() -> None:
    result = run_fig14_15()
    result.topology_table().print()
    result.overhead_table().print()
    result.bandwidth_table().print()


if __name__ == "__main__":
    main()
