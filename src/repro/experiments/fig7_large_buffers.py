"""Fig. 7 — bottleneck effects with large buffers (10000 messages).

Same seven-node topology and bandwidth emulation as Fig. 6(b), but node
buffers hold 10000 messages of 5 KB:

(a) D's 30 KB/s uplink only affects its *downstream* links (D->E, E->F,
    E->G at ~30 KB/s); everything upstream of D keeps running at
    ~200 KB/s because the huge sender buffers absorb the excess;
(b) setting the per-link bandwidth of E->F to 15 KB/s throttles only
    E->F — E->G is unaffected because throttling effects on other, more
    capable downstreams are significantly delayed by the large buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import KB, Table, fmt_rate
from repro.experiments.fig6_correctness import PhaseRates
from repro.experiments.topologies import SEVEN_NODE_EDGES, build_seven_node_copy

PAPER_RATES: dict[str, dict[tuple[str, str], float]] = {
    "a": {("A", "B"): 200.0, ("A", "C"): 200.0, ("B", "D"): 200.0, ("B", "F"): 200.0,
          ("C", "D"): 200.0, ("C", "G"): 200.0, ("D", "E"): 30.0, ("E", "F"): 30.0,
          ("E", "G"): 30.0},
    "b": {("A", "B"): 200.0, ("A", "C"): 200.0, ("B", "D"): 200.0, ("B", "F"): 200.0,
          ("C", "D"): 200.0, ("C", "G"): 200.0, ("D", "E"): 30.0, ("E", "F"): 15.0,
          ("E", "G"): 30.0},
}


@dataclass
class Fig7Result:
    phases: dict[str, PhaseRates]

    def table(self) -> Table:
        table = Table(
            "Fig. 7 — bottlenecks with large buffers (KB/s per link)",
            ["link", "(a) meas", "(a) paper", "(b) meas", "(b) paper"],
        )
        for edge in SEVEN_NODE_EDGES:
            row: list[str] = [f"{edge[0]}->{edge[1]}"]
            for phase in "ab":
                row.append(fmt_rate(self.phases[phase][edge]))
                row.append(fmt_rate(PAPER_RATES[phase][edge] * KB))
            table.add_row(*row)
        table.note("buffers: 10000 messages of 5 KB; (a) D uplink 30 KB/s;"
                   " (b) additionally E->F capped at 15 KB/s")
        return table


def run_fig7(
    buffer_capacity: int = 10000,
    settle: float = 30.0,
    payload_size: int = 5000,
    seed: int = 0,
) -> Fig7Result:
    deployment = build_seven_node_copy(
        buffer_capacity=buffer_capacity, source_total=400 * KB, seed=seed
    )
    net = deployment.net
    nodes = deployment.nodes
    phases: dict[str, PhaseRates] = {}

    net.observer.deploy_source(nodes["A"], app=1, payload_size=payload_size)
    net.observer.set_node_bandwidth(nodes["D"], "up", 30 * KB)
    net.run(settle)
    phases["a"] = deployment.link_rates()

    net.observer.set_link_bandwidth(nodes["E"], nodes["F"], 15 * KB)
    net.run(settle)
    phases["b"] = deployment.link_rates()

    return Fig7Result(phases=phases)


def main() -> None:
    run_fig7().table().print()


if __name__ == "__main__":
    main()
