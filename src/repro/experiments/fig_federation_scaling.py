"""Federated control plane — root/child controller tree vs one process.

:mod:`repro.experiments.fig_cluster_scaling` measured a flat worker
fleet; this experiment exercises the layer above it: a root controller
placing nodes across child controllers (stage one) that place them
across their own workers (stage two).  The acceptance bar stays byte
identity — the same bar the flat cluster holds — now across TWO
process boundaries in the control plane:

1. **Identity** — a 64-node forwarding chain and the Fig. 8
   network-coding butterfly each run across root + 2 child controllers
   (2 workers per child) and must produce exactly the digests a
   single-process :class:`~repro.net.virtual.VirtualHost` run produces.

2. **Recovery** — for each seed, a chain is deployed across the tree,
   one child controller is SIGKILLed, and the experiment asserts the
   third detection tier fired: exactly the dead controller's shard is
   re-placed through the root policy onto the survivors (fresh node
   ids, ``running`` nodes), the survivors keep their identities, and
   the full telemetry audit holds (``ioverlay_cluster_controllers``
   gauge, dead/shard-redeploy counters, ``CONTROLLER_DEAD`` /
   ``SHARD_REDEPLOYED`` trace events).  To show the recovered tree is
   still a working federation, a fresh chain is then deployed across
   it and must match the single-process digest byte for byte.

``--smoke`` shrinks the workload for CI; ``--seeds`` repeats the
recovery phase with seed-derived burst parameters.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import time
from dataclasses import dataclass

from repro.cluster.federation import RootConfig, RootController
from repro.cluster.scenarios import (
    BURST_CONTROL,
    build_local,
    burst_control_message,
    butterfly_specs,
    chain_specs,
    wait_until,
)
from repro.core.ids import NodeId
from repro.experiments.common import Table
from repro.net.observer_server import ObserverServer
from repro.telemetry import Telemetry
from repro.telemetry.tracing import EventType

CHAIN_LEN = 64
SMOKE_CHAIN_LEN = 16
RECOVERY_CHAIN_LEN = 8
BUTTERFLY_COUNT = 20


@dataclass
class IdentityPoint:
    topology: str
    nodes: int
    controllers: int
    workers: int
    identical: bool
    elapsed_s: float


@dataclass
class RecoveryPoint:
    seed: int
    shard_size: int
    detect_redeploy_s: float
    survivors_stable: bool
    audit_ok: bool
    post_recovery_identical: bool

    @property
    def ok(self) -> bool:
        return (self.survivors_stable and self.audit_ok
                and self.post_recovery_identical)


@dataclass
class FederationScalingResult:
    identity: list[IdentityPoint]
    recovery: list[RecoveryPoint]

    @property
    def all_identical(self) -> bool:
        return all(p.identical for p in self.identity)

    @property
    def all_recovered(self) -> bool:
        return all(p.ok for p in self.recovery)

    def tables(self) -> list[Table]:
        identity = Table(
            "Federated identity — root + 2 child controllers vs one process",
            ["topology", "nodes", "tree", "digests", "elapsed (s)"],
        )
        for p in self.identity:
            identity.add_row(
                p.topology, p.nodes, f"{p.controllers}x{p.workers}w",
                "identical" if p.identical else "DIVERGED",
                f"{p.elapsed_s:.1f}",
            )
        identity.note("digests are order-independent SHA-256 folds of every "
                      "application byte at the sinks")
        recovery = Table(
            "Controller-loss recovery — SIGKILL one child, audit the tree",
            ["seed", "shard nodes", "detect+redeploy (s)", "survivors",
             "telemetry audit", "post-recovery digest"],
        )
        for p in self.recovery:
            recovery.add_row(
                p.seed, p.shard_size, f"{p.detect_redeploy_s:.1f}",
                "stable" if p.survivors_stable else "DISTURBED",
                "ok" if p.audit_ok else "FAILED",
                "identical" if p.post_recovery_identical else "DIVERGED",
            )
        recovery.note("exactly the dead controller's shard is re-placed "
                      "through the root policy; survivors keep their ids")
        return [identity, recovery]


async def _start_tree(children: int = 2, workers_per_child: int = 2,
                      telemetry: Telemetry | None = None,
                      heartbeat_timeout: float = 3.0):
    observer = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=0.2)
    await observer.start()
    root = RootController(observer, RootConfig(
        workers_per_child=workers_per_child, telemetry=telemetry,
        heartbeat_timeout=heartbeat_timeout,
    ))
    await root.start()
    await asyncio.gather(*(root.spawn_child(f"c{i}") for i in range(children)))
    return observer, root


async def _stop_tree(observer, root) -> None:
    await root.stop()
    await observer.stop()


async def _wait_alive(observer, placed, timeout: float = 60.0) -> None:
    ok = await wait_until(
        lambda: all(p.node_id in observer.observer.alive for p in placed.values()),
        timeout=timeout,
    )
    if not ok:
        raise AssertionError(
            f"only {len(observer.observer.alive)}/{len(placed)} placed "
            "nodes booted at the root observer"
        )


async def _poll_info(root, name, predicate, timeout: float = 60.0) -> dict:
    deadline = time.monotonic() + timeout
    info: dict = {}
    while time.monotonic() < deadline:
        info = (await root.node_info(name)).get("info", {})
        if predicate(info):
            return info
        await asyncio.sleep(0.1)
    raise AssertionError(f"node {name!r}: condition never met; last {info}")


async def _federated_chain_digest(root, observer, length: int, app: int,
                                  count: int, size: int,
                                  prefix: str = "n") -> str:
    placed = await root.deploy(chain_specs(length, prefix=prefix))
    assert len({p.controller for p in placed.values()}) > 1, (
        "chain never crossed a controller boundary")
    await _wait_alive(observer, placed)
    root.send_control(
        f"{prefix}0", BURST_CONTROL, param1=count, param2=size, app=app)
    info = await _poll_info(
        root, f"{prefix}{length - 1}",
        lambda i: i.get("received", 0) >= count)
    return info["digests"][str(app)]


async def _local_chain_digest(length: int, app: int, count: int,
                              size: int) -> str:
    host, engines = await build_local(chain_specs(length))
    engines["n0"].algorithm.on_control(burst_control_message(app, count, size))
    sink = engines[f"n{length - 1}"].algorithm
    ok = await wait_until(lambda: sink.received >= count, timeout=30.0)
    assert ok, f"baseline sink got {sink.received}/{count}"
    digest = sink.digest(app)
    await host.stop()
    return digest


async def _identity_chain(length: int) -> IdentityPoint:
    app, count, size = 7, 40, 512
    t0 = time.monotonic()
    observer, root = await _start_tree()
    try:
        federated = await _federated_chain_digest(
            root, observer, length, app, count, size)
    finally:
        await _stop_tree(observer, root)
    local = await _local_chain_digest(length, app, count, size)
    return IdentityPoint(
        topology="chain", nodes=length, controllers=2, workers=2,
        identical=bool(federated) and federated == local,
        elapsed_s=time.monotonic() - t0,
    )


async def _identity_butterfly() -> IdentityPoint:
    app, count, size = 9, BUTTERFLY_COUNT, 256
    generations = count // 2
    t0 = time.monotonic()
    observer, root = await _start_tree()
    try:
        placed = await root.deploy(butterfly_specs())
        assert len({p.controller for p in placed.values()}) > 1
        await _wait_alive(observer, placed)
        root.send_control("A", BURST_CONTROL, param1=count, param2=size, app=app)
        federated = {}
        for name in ("F", "G"):
            info = await _poll_info(
                root, name, lambda i: i.get("decoded", 0) >= generations)
            federated[name] = info["digest"]
    finally:
        await _stop_tree(observer, root)

    host, engines = await build_local(butterfly_specs())
    engines["A"].algorithm.on_control(burst_control_message(app, count, size))
    sinks = {name: engines[name].algorithm for name in ("F", "G")}
    ok = await wait_until(
        lambda: all(s.decoded_generations >= generations for s in sinks.values()),
        timeout=30.0,
    )
    assert ok, {name: s.decoded_generations for name, s in sinks.items()}
    local = {name: s.digest() for name, s in sinks.items()}
    await host.stop()
    return IdentityPoint(
        topology="coding butterfly", nodes=len(butterfly_specs()),
        controllers=2, workers=2,
        identical=bool(federated["F"]) and federated == local,
        elapsed_s=time.monotonic() - t0,
    )


def _audit_telemetry(telemetry: Telemetry, dead: str,
                     dead_shard: set[str]) -> bool:
    """The full controller-death audit: gauge, counters, trace events."""
    reg = telemetry.registry
    checks = [
        reg.get("ioverlay_cluster_controllers").labels().value == 1.0,
        {labels["controller"]: c.value for labels, c in reg.get(
            "ioverlay_cluster_controller_dead_total").series()} == {dead: 1.0},
        {labels["controller"]: c.value for labels, c in reg.get(
            "ioverlay_cluster_shard_redeployed_total").series()} == {dead: 1.0},
    ]
    events = list(telemetry.tracer.events())
    dead_events = [e for e in events if e.event == EventType.CONTROLLER_DEAD]
    shard_events = [e for e in events if e.event == EventType.SHARD_REDEPLOYED]
    checks += [
        len(dead_events) == 1 and set(dead_events[0].detail["shard"]) == dead_shard,
        len(shard_events) == 1 and set(shard_events[0].detail["nodes"]) == dead_shard,
    ]
    return all(checks)


async def _recovery(seed: int, length: int) -> RecoveryPoint:
    # seed-derived burst parameters so each run exercises different bytes
    app = 3 + seed
    count, size = 20 + 5 * seed, 128 << (seed % 3)
    telemetry = Telemetry()
    observer, root = await _start_tree(
        telemetry=telemetry, heartbeat_timeout=2.0)
    try:
        placed = await root.deploy(chain_specs(length))
        dead = "c1"
        dead_shard = {n for n, p in placed.items() if p.controller == dead}
        survivors = {n: p.node_id for n, p in placed.items()
                     if p.controller != dead}
        assert dead_shard and survivors
        await _wait_alive(observer, placed)

        t_kill = time.monotonic()
        root.controllers[dead].process.send_signal(signal.SIGKILL)
        ok = await wait_until(lambda: root.shards_redeployed >= 1, timeout=30.0)
        assert ok, "shard redeploy never completed"
        detect_redeploy = time.monotonic() - t_kill

        stable = all(root.placed[n].node_id == nid
                     for n, nid in survivors.items())
        for name in dead_shard:
            fresh = root.placed[name]
            stable = stable and fresh.controller != dead
            stable = stable and fresh.node_id != placed[name].node_id
            info = await root.node_info(name)
            stable = stable and info["running"] is True
        audit_ok = (_audit_telemetry(telemetry, dead, dead_shard)
                    and root.controller_deaths == 1
                    and root.nodes_redeployed == len(dead_shard))

        # the recovered tree is still a working federation: a fresh
        # chain deployed across it must match the one-process digest.
        # (With one child left the chain cannot cross controllers, so
        # skip that assertion and just compare bytes.)
        post_placed = await root.deploy(chain_specs(length, prefix="p"))
        await _wait_alive(observer, post_placed)
        root.send_control("p0", BURST_CONTROL, param1=count, param2=size, app=app)
        info = await _poll_info(
            root, f"p{length - 1}", lambda i: i.get("received", 0) >= count)
        federated = info["digests"][str(app)]
    finally:
        await _stop_tree(observer, root)
    local = await _local_chain_digest(length, app, count, size)
    return RecoveryPoint(
        seed=seed, shard_size=len(dead_shard),
        detect_redeploy_s=detect_redeploy,
        survivors_stable=stable, audit_ok=audit_ok,
        post_recovery_identical=bool(federated) and federated == local,
    )


def run_federation_scaling(chain_len: int = CHAIN_LEN,
                           seeds: int = 2) -> FederationScalingResult:
    identity = [
        asyncio.run(_identity_chain(chain_len)),
        asyncio.run(_identity_butterfly()),
    ]
    recovery = [
        asyncio.run(_recovery(seed, RECOVERY_CHAIN_LEN))
        for seed in range(seeds)
    ]
    return FederationScalingResult(identity=identity, recovery=recovery)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="federated control plane: identity + controller-loss recovery")
    parser.add_argument("--smoke", action="store_true",
                        help=f"CI-sized workload ({SMOKE_CHAIN_LEN}-node chain)")
    parser.add_argument("--seeds", type=int, default=2,
                        help="recovery repetitions with seed-derived bursts")
    args = parser.parse_args(argv)

    chain_len = SMOKE_CHAIN_LEN if args.smoke else CHAIN_LEN
    result = run_federation_scaling(chain_len=chain_len, seeds=args.seeds)
    for table in result.tables():
        table.print()
    if not result.all_identical:
        raise SystemExit("FAILED: federated digests diverged from one process")
    if not result.all_recovered:
        raise SystemExit("FAILED: controller-loss recovery audit failed")
    print(f"federation holds the byte-identity bar and recovered from "
          f"{len(result.recovery)} controller kill(s)")


if __name__ == "__main__":
    main()
