"""Cluster scale-out — worker fleets vs one single-process VirtualHost.

:mod:`repro.experiments.fig_virtual_scaling` showed how many nodes pack
into ONE process; this experiment measures the layer above it.  The
workload is a fixed set of independent fig5-style forwarding chains
(held constant across every point so only the process topology varies)
driven by back-to-back saturating sources.  The baseline runs all
chains in one :class:`~repro.net.virtual.VirtualHost`; the cluster
points shard the *same* chains across 1, 2 and 4 worker processes with
each chain pinned wholly to one worker, so every chain hop keeps the
zero-copy loopback fast path and the fleet differs from the baseline
only in how many OS processes share the work.

For each point we record aggregate end-to-end throughput (the sum of
sink deltas over a measured window), per-node startup cost (spawn +
deploy, which for the cluster includes subprocess boot and the
observer round-trips), and the worker fan-out.  The sources are
CPU-bound, so the fleet's headroom over the single process is the
machine's core count: on a multi-core host the 4-worker point exceeds
the baseline; on a single-core host the experiment degenerates to
parity-minus-overhead and says so in its output.
"""

from __future__ import annotations

import asyncio
import os
import time
from dataclasses import dataclass

from repro.cluster.controller import ClusterConfig, ClusterController
from repro.cluster.scenarios import build_local, chain_specs, wait_until
from repro.cluster.spec import NodeSpec
from repro.core.ids import NodeId
from repro.experiments.common import Table
from repro.net.observer_server import ObserverServer

#: independent chains in the workload (fixed so every point is the
#: same topology); worker counts swept over them
DEFAULT_CHAINS = 4
DEFAULT_WORKERS = [1, 2, 4]
DEFAULT_NODES = 48  # total, i.e. 4 chains x 12 nodes
PAYLOAD = 2000


@dataclass
class ScalePoint:
    label: str  # "single-process" or "N workers"
    workers: int  # 0 for the in-process baseline
    nodes: int
    aggregate: float  # B/s summed over every chain's sink
    startup_ms_per_node: float


@dataclass
class ClusterScalingResult:
    points: list[ScalePoint]  # points[0] is the single-process baseline
    cpus: int

    @property
    def baseline(self) -> ScalePoint:
        return self.points[0]

    def speedup(self, point: ScalePoint) -> float:
        return point.aggregate / self.baseline.aggregate if self.baseline.aggregate else 0.0

    def best_cluster_speedup(self) -> float:
        return max((self.speedup(p) for p in self.points[1:]), default=0.0)

    def table(self) -> Table:
        table = Table(
            "Cluster scale-out — pinned chains across worker processes",
            ["configuration", "nodes", "aggregate (KB/s)",
             "vs single-process", "startup (ms/node)"],
        )
        for p in self.points:
            table.add_row(
                p.label, p.nodes, f"{p.aggregate / 1000:.1f}",
                f"{self.speedup(p):.2f}x", f"{p.startup_ms_per_node:.1f}",
            )
        table.note("every chain is pinned to one worker, so all chain hops "
                   "stay on the zero-copy loopback path in both runs")
        table.note(f"sources are CPU-bound; this host has {self.cpus} "
                   f"usable core(s), which caps the fleet's speedup")
        return table


def _sharded_chain_specs(chains: int, chain_len: int, workers: int) -> list[NodeSpec]:
    """``chains`` independent chains, chain ``i`` pinned to worker ``i % workers``."""
    specs: list[NodeSpec] = []
    for i in range(chains):
        for spec in chain_specs(chain_len, prefix=f"c{i}n"):
            spec.pin = f"w{i % workers}"
            specs.append(spec)
    return specs


async def _run_baseline(chains: int, chain_len: int, duration: float,
                        warmup: float) -> ScalePoint:
    specs = _sharded_chain_specs(chains, chain_len, workers=1)
    nodes = len(specs)
    t0 = time.monotonic()
    host, engines = await build_local(specs)
    startup = time.monotonic() - t0
    sinks = [engines[f"c{i}n{chain_len - 1}"].algorithm for i in range(chains)]
    for i in range(chains):
        engines[f"c{i}n0"].start_source(app=i + 1, payload_size=PAYLOAD)
    await asyncio.sleep(warmup)
    before = sum(sink.received for sink in sinks)
    await asyncio.sleep(duration)
    delivered = sum(sink.received for sink in sinks) - before
    for i in range(chains):
        engines[f"c{i}n0"].stop_source(i + 1)
    await host.stop()
    return ScalePoint(
        label="single-process", workers=0, nodes=nodes,
        aggregate=delivered * PAYLOAD / duration,
        startup_ms_per_node=startup * 1000.0 / nodes,
    )


async def _run_fleet(workers: int, chains: int, chain_len: int,
                     duration: float, warmup: float) -> ScalePoint:
    observer = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=0.5)
    await observer.start()
    controller = ClusterController(observer, ClusterConfig(workers=workers))
    specs = _sharded_chain_specs(chains, chain_len, workers)
    nodes = len(specs)
    t0 = time.monotonic()
    await controller.start()
    placed = await controller.deploy(specs)
    startup = time.monotonic() - t0
    await wait_until(
        lambda: all(p.node_id in observer.observer.alive for p in placed.values())
    )

    sink_names = [f"c{i}n{chain_len - 1}" for i in range(chains)]

    async def delivered() -> int:
        infos = await asyncio.gather(
            *(controller.node_info(name) for name in sink_names)
        )
        return sum(int(reply["info"].get("received", 0)) for reply in infos)

    for i in range(chains):
        controller.deploy_source(f"c{i}n0", app=i + 1, payload_size=PAYLOAD)
    await asyncio.sleep(warmup)
    before = await delivered()
    await asyncio.sleep(duration)
    count = await delivered() - before
    for i in range(chains):
        observer.observer.terminate_source(controller.node_id(f"c{i}n0"), i + 1)
    await controller.stop()
    await observer.stop()
    return ScalePoint(
        label=f"{workers} worker{'s' if workers > 1 else ''}", workers=workers,
        nodes=nodes, aggregate=count * PAYLOAD / duration,
        startup_ms_per_node=startup * 1000.0 / nodes,
    )


def run_cluster_scaling(
    worker_counts: list[int] | None = None,
    chains: int = DEFAULT_CHAINS,
    total_nodes: int = DEFAULT_NODES,
    duration: float = 2.0,
    warmup: float = 0.5,
) -> ClusterScalingResult:
    worker_counts = worker_counts or DEFAULT_WORKERS
    chain_len = total_nodes // chains
    points = [asyncio.run(_run_baseline(chains, chain_len, duration, warmup))]
    for workers in worker_counts:
        points.append(
            asyncio.run(_run_fleet(workers, chains, chain_len, duration, warmup))
        )
    cpus = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1)
    return ClusterScalingResult(points=points, cpus=cpus)


def main() -> None:
    result = run_cluster_scaling()
    result.table().print()
    best = result.best_cluster_speedup()
    if result.cpus <= 1:
        print(f"single-core host: fleet best {best:.2f}x — process parallelism "
              f"needs >1 core to exceed the single-process baseline")
    elif best > 1.0:
        print(f"fleet exceeds the single process: best {best:.2f}x "
              f"at equal node count")
    else:
        print(f"WARNING: fleet did not exceed the single process "
              f"(best {best:.2f}x on {result.cpus} cores)")


if __name__ == "__main__":
    main()
