"""Fig. 6 — engine correctness on the seven-node topology (small buffers).

Four phases, exactly as the paper runs them:

(a) deploy a source at A with per-node total bandwidth 400 KB/s and
    buffers of 5 messages: every first-hop branch carries ~200 KB/s and
    D's merge link D->E ~400 KB/s;
(b) set D's uplink to 30 KB/s at runtime: back pressure from the full
    5-message buffers drags **all** links except E->F/E->G down to
    ~15 KB/s (D's two incoming links split its 30 KB/s uplink), while
    E's fan-out carries 30 KB/s;
(c) terminate node B: A->B, B->D, B->F close, the rest converge to
    ~30 KB/s, other nodes undisturbed;
(d) terminate node G: C->G and E->G close, F keeps receiving via
    C, D, E.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import KB, Table, fmt_rate
from repro.experiments.topologies import SEVEN_NODE_EDGES, SevenNodeNet, build_seven_node_copy

PhaseRates = dict[tuple[str, str], float | None]

#: The paper's reported per-link KB/s, for side-by-side comparison.
PAPER_RATES: dict[str, dict[tuple[str, str], float | None]] = {
    "a": {("A", "B"): 200.0, ("A", "C"): 200.0, ("B", "D"): 200.0, ("B", "F"): 200.0,
          ("C", "D"): 200.0, ("C", "G"): 200.0, ("D", "E"): 400.0, ("E", "F"): 400.0,
          ("E", "G"): 400.0},
    "b": {("A", "B"): 15.0, ("A", "C"): 15.0, ("B", "D"): 15.0, ("B", "F"): 15.0,
          ("C", "D"): 15.0, ("C", "G"): 15.0, ("D", "E"): 30.0, ("E", "F"): 30.0,
          ("E", "G"): 30.0},
    "c": {("A", "B"): None, ("A", "C"): 30.0, ("B", "D"): None, ("B", "F"): None,
          ("C", "D"): 30.0, ("C", "G"): 30.0, ("D", "E"): 30.0, ("E", "F"): 30.0,
          ("E", "G"): 30.0},
    "d": {("A", "B"): None, ("A", "C"): 30.0, ("B", "D"): None, ("B", "F"): None,
          ("C", "D"): 30.0, ("C", "G"): None, ("D", "E"): 30.0, ("E", "F"): 30.0,
          ("E", "G"): None},
}


@dataclass
class Fig6Result:
    phases: dict[str, PhaseRates]

    def table(self) -> Table:
        table = Table(
            "Fig. 6 — engine correctness, seven-node topology (KB/s per link)",
            ["link", "(a) meas", "(a) paper", "(b) meas", "(b) paper",
             "(c) meas", "(c) paper", "(d) meas", "(d) paper"],
        )
        for edge in SEVEN_NODE_EDGES:
            row: list[str] = [f"{edge[0]}->{edge[1]}"]
            for phase in "abcd":
                measured = self.phases[phase][edge]
                paper = PAPER_RATES[phase][edge]
                row.append(fmt_rate(measured))
                row.append(fmt_rate(paper * KB if paper is not None else None))
            table.add_row(*row)
        table.note("buffers: 5 messages; (b) sets D uplink to 30 KB/s at runtime;"
                   " (c) terminates B; (d) terminates G")
        return table


def run_fig6(
    buffer_capacity: int = 5,
    settle: float = 30.0,
    payload_size: int = 5000,
    seed: int = 0,
) -> Fig6Result:
    """Run all four phases and return per-link rates after each."""
    deployment: SevenNodeNet = build_seven_node_copy(
        buffer_capacity=buffer_capacity, source_total=400 * KB, seed=seed
    )
    net = deployment.net
    nodes = deployment.nodes
    phases: dict[str, PhaseRates] = {}

    net.observer.deploy_source(nodes["A"], app=1, payload_size=payload_size)
    net.run(settle)
    phases["a"] = deployment.link_rates()

    net.observer.set_node_bandwidth(nodes["D"], "up", 30 * KB)
    net.run(settle * 2)  # draining full buffers takes a while at 30 KB/s
    phases["b"] = deployment.link_rates()

    net.observer.terminate_node(nodes["B"])
    net.run(settle)
    phases["c"] = deployment.link_rates()

    net.observer.terminate_node(nodes["G"])
    net.run(settle)
    phases["d"] = deployment.link_rates()

    return Fig6Result(phases=phases)


def main() -> None:
    run_fig6().table().print()


if __name__ == "__main__":
    main()
