"""Extension experiment — PLUTO-assisted tree construction (Section 5).

Compares the plain node-stress aware policy against the underlay-aware
variant on the synthetic PlanetLab: same join workload, same stress
profile; the metric is the *underlay latency* from the source to each
receiver along the constructed tree (lower = data takes geographically
saner routes).  This is the paper's closing future-work claim made
runnable: "PLUTO may be easily integrated into the overall iOverlay
middleware architecture."
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.algorithms.trees import CMD_JOIN, NodeStressAwareTree, TreeAlgorithm
from repro.algorithms.trees.underlay_aware import UnderlayAwareTree
from repro.core.ids import NodeId
from repro.experiments.common import KB, Table
from repro.testbed.planetlab import PlanetLabTestbed
from repro.underlay.pluto import PlutoUnderlay


@dataclass
class UnderlayTreeRun:
    policy: str
    path_latency: dict[int, float]  # receiver index -> root latency (s)
    throughputs: list[float]
    max_stress: float

    def mean_latency(self) -> float:
        return statistics.fmean(self.path_latency.values()) if self.path_latency else 0.0


@dataclass
class ExtUnderlayResult:
    runs: dict[str, UnderlayTreeRun]

    def table(self) -> Table:
        table = Table(
            "Extension — underlay-aware vs plain ns-aware trees",
            ["policy", "mean root latency (ms)", "mean throughput (KB/s)", "max stress"],
        )
        for policy, run in self.runs.items():
            throughput = statistics.fmean(run.throughputs) if run.throughputs else 0.0
            table.add_row(
                policy,
                f"{run.mean_latency() * 1000:.0f}",
                f"{throughput / KB:.1f}",
                f"{run.max_stress:.1f}",
            )
        table.note("PLUTO proximity tie-breaking shortens tree paths without"
                   " inflating node stress")
        return table


def run_underlay_tree(policy: str, n_nodes: int = 30, seed: int = 0,
                      settle: float = 25.0) -> UnderlayTreeRun:
    algorithms: list[TreeAlgorithm] = []

    def factory(index: int, last_mile: float) -> TreeAlgorithm:
        if policy == "underlay":
            algorithm: TreeAlgorithm = UnderlayAwareTree(
                last_mile=last_mile, seed=seed * 997 + index)
        else:
            algorithm = NodeStressAwareTree(last_mile=last_mile, seed=seed * 997 + index)
        algorithms.append(algorithm)
        return algorithm

    testbed = PlanetLabTestbed(n_nodes, factory, seed=seed)
    underlay = PlutoUnderlay(testbed)
    if policy == "underlay":
        for algorithm in algorithms:
            algorithm.set_underlay(underlay)  # type: ignore[attr-defined]
    net = testbed.net
    testbed.deploy()
    net.run(2)
    net.observer.deploy_source(testbed.source.node_id, app=1, payload_size=5000)
    net.run(2)
    joiners = testbed.nodes[1:]
    testbed.rng.shuffle(joiners)
    for node in joiners:
        net.observer.send_control(node.node_id, CMD_JOIN, param1=1)
        net.run(0.5)
    net.run(settle)

    # Root-to-receiver latency along the constructed tree.
    parent_of: dict[NodeId, NodeId] = {
        alg.node_id: alg.parent for alg in algorithms if alg.parent is not None
    }
    root = testbed.source.node_id
    latency_cache: dict[NodeId, float] = {root: 0.0}

    def root_latency(node: NodeId) -> float:
        if node in latency_cache:
            return latency_cache[node]
        parent = parent_of.get(node)
        if parent is None:
            latency_cache[node] = float("inf")
            return latency_cache[node]
        value = root_latency(parent) + underlay.latency(parent, node)
        latency_cache[node] = value
        return value

    path_latency = {
        tb_node.index: root_latency(tb_node.node_id)
        for tb_node in testbed.nodes[1:]
        if root_latency(tb_node.node_id) != float("inf")
    }
    members = [alg for alg in algorithms if alg.in_tree and not alg.is_source]
    return UnderlayTreeRun(
        policy=policy,
        path_latency=path_latency,
        throughputs=[alg.receive_rate() for alg in members],
        max_stress=max((alg.stress for alg in algorithms if alg.in_tree), default=0.0),
    )


def run_ext_underlay(n_nodes: int = 30, seed: int = 0) -> ExtUnderlayResult:
    return ExtUnderlayResult(runs={
        policy: run_underlay_tree(policy, n_nodes=n_nodes, seed=seed)
        for policy in ("ns-aware", "underlay")
    })


def main() -> None:
    run_ext_underlay().table().print()


if __name__ == "__main__":
    main()
