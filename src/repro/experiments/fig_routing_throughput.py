"""Routing throughput — backpressure vs the best static (tree) path.

The throughput claim behind the routing subsystem, measured on the
shared-relay grid of :func:`~repro.experiments.topologies.routing_grid`:
two unicast commodities, three bandwidth-capped relays, the middle
relay reachable by both commodities.  A tree heuristic embeds exactly
one source->sink path per commodity, so the best static policy gives
each commodity a single relay — per-commodity capacity ``C``.
Backpressure splits each commodity over both of its relays and shares
the middle one, sustaining ``1.5 C`` per commodity.

Three legs:

* **DES sweep** — injection rate swept as a fraction ``rho`` of the
  single-relay capacity, for backpressure, the delay-aware variant and
  EVERY static relay assignment (the best assignment per point is the
  tree-heuristic baseline).  A point is *sustained* when every
  commodity's delivery rate over the measurement window reaches 95% of
  its injection rate.  The acceptance line: backpressure's largest
  sustained ``rho`` strictly exceeds the best static one.  One cell is
  re-run with the same seed and must reproduce byte-identical delivery
  counts — the DES makes the sweep a deterministic function of
  ``(policy, rho, seed)``.

* **VirtualHost leg** — the same grid as live asyncio engines packed
  in one process, finite digest-checked injection: every injected
  payload is a pure function of ``(commodity, seq, size)``, so the
  sinks' order-independent digests are computable up front.

* **Cluster leg** — the grid sharded across a 2-worker fleet with
  worker telemetry on: delivery is confirmed through ``node_info`` and
  the per-commodity ``ioverlay_routing_*`` series must be visible in
  the ROOT observer's fleet-wide metric roll-up.
"""

from __future__ import annotations

import asyncio
import hashlib
from dataclasses import dataclass

from repro.algorithms.routing import BackpressureRoutingAlgorithm, routing_payload
from repro.algorithms.routing.algorithm import _combined
from repro.experiments.common import KB, Table
from repro.experiments.topologies import (
    RoutingMatrix,
    build_routing_sim,
    routing_grid,
)

#: a commodity is "sustained" when its delivery rate over the window
#: reaches this fraction of its injection rate
SUSTAIN_FRACTION = 0.95

DEFAULT_RELAY_UP = 50 * KB
DEFAULT_SIZE = 1000
DEFAULT_RHOS = (0.7, 0.9, 1.1, 1.3)
SMOKE_RHOS = (0.9, 1.3)


def expected_digest(commodity: int, total: int, size: int) -> str:
    """The digest a sink must hold after consuming seq 0..total-1."""
    parts = {
        f"{commodity}#{seq}":
            hashlib.sha256(routing_payload(commodity, seq, size)).hexdigest()
        for seq in range(total)
    }
    return _combined(parts)


# ----------------------------------------------------------------- DES sweep


@dataclass
class SweepPoint:
    """One (policy, rho, seed) cell of the throughput sweep."""

    policy: str                  # "backpressure" | "delay" | "static:<c7>/<c8>"
    rho: float                   # offered load / single-relay capacity
    seed: int
    offered: float               # msg/s per commodity
    rates: dict[int, float]      # per-commodity delivered msg/s
    delivered: dict[int, int]    # cumulative counts (determinism witness)
    backlog: int                 # residual held messages after the window

    @property
    def sustained(self) -> bool:
        return all(
            rate >= SUSTAIN_FRACTION * self.offered
            for rate in self.rates.values()
        )

    @property
    def worst_ratio(self) -> float:
        if not self.offered:
            return 0.0
        return min(self.rates.values(), default=0.0) / self.offered


def run_des_point(
    policy: str,
    rho: float,
    seed: int = 0,
    assignment: dict[int, str] | None = None,
    relay_up: float = DEFAULT_RELAY_UP,
    size: int = DEFAULT_SIZE,
    warmup: float = 5.0,
    window: float = 10.0,
) -> SweepPoint:
    """One deterministic DES run of the grid under one policy."""
    matrix = routing_grid(relay_up)
    offered = rho * relay_up / size  # msg/s per commodity
    label = policy
    if assignment is not None:
        label = "static:" + "/".join(
            assignment[c] for c in sorted(assignment)
        )
    net = build_routing_sim(
        matrix,
        inject={c: {"count": 1, "size": size} for c in matrix.commodities},
        policy="static" if assignment is not None else policy,
        assignment=assignment,
        inject_tick=1.0 / offered,
        seed=seed,
    )
    net.net.run(warmup)
    before = net.delivered()
    net.net.run(window)
    after = net.delivered()
    rates = {
        c: (after.get(c, 0) - before.get(c, 0)) / window
        for c in matrix.commodities
    }
    return SweepPoint(
        policy=label, rho=rho, seed=seed, offered=offered,
        rates=rates, delivered=after, backlog=net.total_backlog(),
    )


def best_static_point(
    matrix: RoutingMatrix, rho: float, seed: int, **kwargs
) -> SweepPoint:
    """The tree-heuristic baseline: the best single-path assignment."""
    points = [
        run_des_point("static", rho, seed, assignment=assignment, **kwargs)
        for assignment in matrix.static_assignments()
    ]
    return max(points, key=lambda p: p.worst_ratio)


def run_des_sweep(
    rhos: tuple[float, ...] = DEFAULT_RHOS,
    seeds: tuple[int, ...] = (0, 1),
    variants: tuple[str, ...] = ("backpressure", "delay"),
    relay_up: float = DEFAULT_RELAY_UP,
    size: int = DEFAULT_SIZE,
    warmup: float = 5.0,
    window: float = 10.0,
) -> list[SweepPoint]:
    matrix = routing_grid(relay_up)
    kwargs = dict(relay_up=relay_up, size=size, warmup=warmup, window=window)
    points: list[SweepPoint] = []
    for rho in rhos:
        for seed in seeds:
            for variant in variants:
                points.append(run_des_point(variant, rho, seed, **kwargs))
            points.append(best_static_point(matrix, rho, seed, **kwargs))
    return points


def max_sustained(points: list[SweepPoint], policy_prefix: str) -> float:
    """Largest rho the policy sustained at EVERY swept seed."""
    by_rho: dict[float, list[SweepPoint]] = {}
    for p in points:
        if p.policy.startswith(policy_prefix):
            by_rho.setdefault(p.rho, []).append(p)
    sustained = [
        rho for rho, cell in by_rho.items() if all(p.sustained for p in cell)
    ]
    return max(sustained, default=0.0)


def determinism_witness(rho: float = 1.1, seed: int = 0, **kwargs) -> bool:
    """Same (policy, rho, seed) twice -> identical delivery counts."""
    first = run_des_point("backpressure", rho, seed, **kwargs)
    second = run_des_point("backpressure", rho, seed, **kwargs)
    return first.delivered == second.delivered and first.rates == second.rates


# ------------------------------------------------------------ VirtualHost leg


@dataclass
class VirtualLegResult:
    total: int                 # messages per commodity
    delivered: dict[int, int]
    digests_ok: bool
    wall_seconds: float


async def _run_virtual(total: int, size: int, timeout: float) -> VirtualLegResult:
    from repro.net.engine import NetEngineConfig
    from repro.net.virtual import VirtualHost

    matrix = routing_grid()
    host = VirtualHost()
    algorithms: dict[str, BackpressureRoutingAlgorithm] = {}
    engines: dict[str, object] = {}
    for name in matrix.node_names():
        inject = {
            c: {"count": 2, "size": size, "total": total}
            for c, (source, _) in matrix.commodities.items()
            if source == name
        }
        algorithms[name] = BackpressureRoutingAlgorithm(inject=inject or None)
        engines[name] = host.add_node(
            algorithms[name], config=NetEngineConfig(report_interval=5.0)
        )
    await host.start()
    # node identities exist only after start on the asyncio backend
    for commodity, (_, sink) in matrix.commodities.items():
        for alg in algorithms.values():
            alg.set_sink(commodity, engines[sink].node_id)
    for src, dst in matrix.edges:
        assert await engines[src].connect(engines[dst].node_id)

    sinks = {c: algorithms[sink] for c, (_, sink) in matrix.commodities.items()}
    loop = asyncio.get_running_loop()
    start = loop.time()
    while loop.time() - start < timeout:
        if all(alg.delivered.get(c, 0) >= total for c, alg in sinks.items()):
            break
        await asyncio.sleep(0.1)
    wall = loop.time() - start
    delivered = {c: alg.delivered.get(c, 0) for c, alg in sinks.items()}
    digests_ok = all(
        alg.digest(c) == expected_digest(c, total, size)
        for c, alg in sinks.items()
    )
    await host.stop()
    return VirtualLegResult(
        total=total, delivered=delivered, digests_ok=digests_ok,
        wall_seconds=wall,
    )


def run_virtual_leg(
    total: int = 40, size: int = 512, timeout: float = 30.0
) -> VirtualLegResult:
    return asyncio.run(_run_virtual(total, size, timeout))


# --------------------------------------------------------------- cluster leg


@dataclass
class ClusterLegResult:
    workers: int
    total: int
    delivered: dict[int, int]
    #: per-commodity label values seen on ioverlay_routing_delivered_total
    #: in the ROOT observer's fleet-wide metric roll-up
    commodities_at_root: list[str]
    routing_metrics_at_root: list[str]

    @property
    def telemetry_ok(self) -> bool:
        return bool(self.commodities_at_root)


def _grid_specs(matrix: RoutingMatrix, total: int, size: int) -> list:
    """Sinks-first NodeSpecs for the grid (``@name`` refs resolve then)."""
    from repro.cluster.spec import NodeSpec

    algo = "repro.algorithms.routing.algorithm:BackpressureRoutingAlgorithm"
    # "@name" refs resolve at placement, so every node must be placed
    # after all of its out-neighbors: topological order of the reversed
    # edge DAG (sinks have no out-edges and come first).
    remaining = list(matrix.node_names())
    ordered: list[str] = []
    placed: set[str] = set()
    while remaining:
        ready = [
            n for n in remaining
            if all(dst in placed for src, dst in matrix.edges if src == n)
        ]
        if not ready:
            raise ValueError("routing grid edges are cyclic; cannot order specs")
        ordered.extend(ready)
        placed.update(ready)
        remaining = [n for n in remaining if n not in placed]
    specs = []
    for name in ordered:
        kwargs: dict = {}
        own = [c for c, (_, sink) in matrix.commodities.items() if sink == name]
        if own:
            kwargs["sink_self"] = own
        neighbors = [f"@{dst}" for src, dst in matrix.edges if src == name]
        if neighbors:
            kwargs["neighbors"] = neighbors
        inject = {
            str(c): {"count": 2, "size": size, "total": total}
            for c, (source, _) in matrix.commodities.items()
            if source == name
        }
        if inject:
            kwargs["inject"] = inject
        specs.append(NodeSpec(name=name, algorithm=algo, kwargs=kwargs))
    return specs


async def _run_cluster(workers: int, total: int, size: int,
                       timeout: float) -> ClusterLegResult:
    from repro.cluster.controller import ClusterConfig, ClusterController
    from repro.cluster.scenarios import wait_until
    from repro.core.ids import NodeId
    from repro.net.observer_server import ObserverServer

    matrix = routing_grid()
    observer = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=0.3)
    await observer.start()
    controller = ClusterController(observer, ClusterConfig(
        workers=workers,
        worker_telemetry=True,
        observer_fanout=1,
        observer_flush_interval=0.2,
    ))
    await controller.start()
    placed = await controller.deploy(_grid_specs(matrix, total, size))
    await wait_until(
        lambda: all(p.node_id in observer.observer.alive for p in placed.values()),
        timeout=timeout,
    )

    sink_of = {c: sink for c, (_, sink) in matrix.commodities.items()}

    async def delivered() -> dict[int, int]:
        out: dict[int, int] = {}
        for commodity, name in sink_of.items():
            reply = await controller.node_info(name)
            counts = reply["info"].get("delivered", {})
            out[commodity] = int(counts.get(str(commodity), 0))
        return out

    async def all_delivered() -> bool:
        counts = await delivered()
        return all(counts.get(c, 0) >= total for c in sink_of)

    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline and not await all_delivered():
        await asyncio.sleep(0.25)
    final = await delivered()

    def commodity_labels() -> list[str]:
        family = observer.observer.cluster_metrics().get(
            "ioverlay_routing_delivered_total"
        )
        if not family:
            return []
        return sorted({
            series["labels"].get("commodity", "")
            for series in family["series"]
        })

    await wait_until(
        lambda: len(commodity_labels()) >= len(sink_of), timeout=timeout,
    )
    labels = commodity_labels()
    routing_families = sorted(
        name for name in observer.observer.cluster_metrics()
        if name.startswith("ioverlay_routing_")
    )
    await controller.stop()
    await observer.stop()
    return ClusterLegResult(
        workers=workers, total=total, delivered=final,
        commodities_at_root=labels,
        routing_metrics_at_root=routing_families,
    )


def run_cluster_leg(
    workers: int = 2, total: int = 30, size: int = 512, timeout: float = 45.0
) -> ClusterLegResult:
    return asyncio.run(_run_cluster(workers, total, size, timeout))


# -------------------------------------------------------------------- result


@dataclass
class RoutingThroughputResult:
    points: list[SweepPoint]
    deterministic: bool
    virtual: VirtualLegResult | None
    cluster: ClusterLegResult | None

    def max_backpressure(self) -> float:
        return max_sustained(self.points, "backpressure")

    def max_static(self) -> float:
        return max_sustained(self.points, "static")

    @property
    def separation(self) -> bool:
        """The acceptance line: backpressure beats the best tree path."""
        return self.max_backpressure() > self.max_static()

    def tables(self) -> list[Table]:
        sweep = Table(
            "Routing throughput — shared-relay grid, per-commodity load "
            "as a fraction of single-relay capacity",
            ["policy", "rho", "seed", "delivered/offered (worst)",
             "residual backlog", "sustained"],
        )
        for p in sorted(self.points, key=lambda p: (p.rho, p.policy, p.seed)):
            sweep.add_row(
                p.policy, f"{p.rho:.2f}", p.seed,
                f"{p.worst_ratio:.3f}", p.backlog,
                "yes" if p.sustained else "no",
            )
        sweep.note("static:<x>/<y> = commodity 7 pinned to relay x, 8 to y; "
                   "the best row per rho is what any tree heuristic induces")
        sweep.note(f"sustained = every commodity delivers >= "
                   f"{SUSTAIN_FRACTION:.0%} of its injection rate")
        tables = [sweep]
        summary = Table("Routing throughput — summary", ["metric", "value"])
        summary.add_row("max sustained rho (backpressure)",
                        f"{self.max_backpressure():.2f}")
        summary.add_row("max sustained rho (best static/tree)",
                        f"{self.max_static():.2f}")
        summary.add_row("backpressure > best tree", "yes" if self.separation else "NO")
        summary.add_row("DES rerun byte-identical", "yes" if self.deterministic else "NO")
        if self.virtual is not None:
            summary.add_row(
                "virtual leg delivered",
                f"{self.virtual.delivered} / {self.virtual.total} per commodity",
            )
            summary.add_row("virtual leg digests",
                            "ok" if self.virtual.digests_ok else "MISMATCH")
        if self.cluster is not None:
            summary.add_row(
                f"cluster leg ({self.cluster.workers} workers) delivered",
                f"{self.cluster.delivered} / {self.cluster.total} per commodity",
            )
            summary.add_row("commodities at root observer",
                            ", ".join(self.cluster.commodities_at_root) or "NONE")
            summary.add_row("routing metric families at root",
                            str(len(self.cluster.routing_metrics_at_root)))
        tables.append(summary)
        return tables


def run_routing_throughput(
    smoke: bool = False,
    workers: int = 2,
) -> RoutingThroughputResult:
    if smoke:
        points = run_des_sweep(
            rhos=SMOKE_RHOS, seeds=(0,), variants=("backpressure",),
            warmup=3.0, window=6.0,
        )
        deterministic = determinism_witness(warmup=2.0, window=4.0)
        virtual = run_virtual_leg(total=24)
        cluster = run_cluster_leg(workers=workers, total=20)
    else:
        points = run_des_sweep()
        deterministic = determinism_witness()
        virtual = run_virtual_leg()
        cluster = run_cluster_leg(workers=workers)
    return RoutingThroughputResult(
        points=points, deterministic=deterministic,
        virtual=virtual, cluster=cluster,
    )


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sweep for CI")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes in the cluster leg (2-4)")
    args = parser.parse_args(argv)
    result = run_routing_throughput(smoke=args.smoke, workers=args.workers)
    for table in result.tables():
        table.print()
    problems = []
    if not result.separation:
        problems.append("backpressure did NOT sustain a higher rate than "
                        "the best static path")
    if not result.deterministic:
        problems.append("DES rerun was not byte-identical")
    if result.virtual is not None and not result.virtual.digests_ok:
        problems.append("virtual leg digests mismatched")
    if result.cluster is not None and not result.cluster.telemetry_ok:
        problems.append("no per-commodity routing telemetry at the root observer")
    if problems:
        raise SystemExit("FAIL: " + "; ".join(problems))
    print("routing throughput: backpressure sustains "
          f"rho={result.max_backpressure():.2f} vs best tree "
          f"rho={result.max_static():.2f} — separation confirmed")


if __name__ == "__main__":
    main()
