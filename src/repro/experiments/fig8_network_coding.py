"""Fig. 8 — network coding on the butterfly: effective receive throughput.

Node A (400 KB/s) splits its stream into *a* (via B) and *b* (via C);
D's uplink is 200 KB/s.

(a) Without coding D forwards verbatim: D receives both streams
    (400 KB/s effective), E receives D's 200 KB/s mix, and F/G each get
    one full stream plus half of the other — 300 KB/s effective.
(b) With the GF(2^8) combination a+b computed at D, the leaves decode:
    F and G reach 400 KB/s effective, while E (and B, C) become helper
    nodes at 200 KB/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import KB, Table
from repro.experiments.topologies import build_butterfly

#: The paper's effective receive throughput (KB/s) per node and scenario.
PAPER_EFFECTIVE = {
    "without": {"D": 400.0, "E": 200.0, "F": 300.0, "G": 300.0},
    "with": {"D": 400.0, "E": 200.0, "F": 400.0, "G": 400.0},
}


@dataclass
class Fig8Result:
    effective: dict[str, dict[str, float]]  # scenario -> node -> B/s
    decoded_generations: dict[str, dict[str, int]]

    def table(self) -> Table:
        table = Table(
            "Fig. 8 — network coding on the butterfly (effective KB/s)",
            ["node", "no coding (meas)", "no coding (paper)",
             "coding (meas)", "coding (paper)"],
        )
        for node in "DEFG":
            table.add_row(
                node,
                f"{self.effective['without'][node] / KB:.1f}",
                f"{PAPER_EFFECTIVE['without'][node]:.1f}",
                f"{self.effective['with'][node] / KB:.1f}",
                f"{PAPER_EFFECTIVE['with'][node]:.1f}",
            )
        table.note("effective throughput counts innovative (linearly independent)"
                   " payload bytes only; duplicates carry no information")
        return table


def run_fig8(settle: float = 30.0, payload_size: int = 5000, seed: int = 0) -> Fig8Result:
    effective: dict[str, dict[str, float]] = {}
    decoded: dict[str, dict[str, int]] = {}
    for scenario, coding in (("without", False), ("with", True)):
        deployment = build_butterfly(coding=coding, seed=seed)
        net = deployment.net
        net.observer.deploy_source(deployment.nodes["A"], app=1, payload_size=payload_size)
        net.run(settle)
        effective[scenario] = deployment.effective_rates()
        decoded[scenario] = {
            "E": deployment.node_e.decoded_generations,
            "F": deployment.node_f.decoded_generations,
            "G": deployment.node_g.decoded_generations,
        }
    return Fig8Result(effective=effective, decoded_generations=decoded)


def main() -> None:
    run_fig8().table().print()


if __name__ == "__main__":
    main()
