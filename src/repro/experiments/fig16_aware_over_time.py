"""Fig. 16 — sAware overhead over time in a 30-node service overlay.

Services arrive at an average of three per minute; the total sAware
byte volume per minute spikes while new services keep announcing
themselves and decays markedly once arrivals cease — the paper observes
the overhead "starts to significantly decrease after 10 minutes".
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.algorithms.federation import FederationAlgorithm, FederationDriver
from repro.core.bandwidth import BandwidthSpec
from repro.experiments.common import Table
from repro.sim.network import SimNetwork


@dataclass
class Fig16Result:
    per_minute_aware_bytes: list[int]
    total_bytes: int
    services_assigned: int

    def table(self) -> Table:
        table = Table("Fig. 16 — total sAware overhead per minute (30 nodes)",
                      ["minute", "sAware bytes"])
        for minute, volume in enumerate(self.per_minute_aware_bytes, start=1):
            table.add_row(minute, volume)
        table.note("arrivals: ~3 services/minute during the first 10 minutes;"
                   " the paper sees the overhead drop sharply after minute 10")
        return table


def run_fig16(
    n_nodes: int = 30,
    duration_minutes: int = 22,
    arrivals_per_minute: float = 3.0,
    arrival_minutes: int = 10,
    n_types: int = 5,
    seed: int = 0,
) -> Fig16Result:
    rng = random.Random(seed)
    net = SimNetwork()
    algorithms = {}
    nodes = []
    for i in range(n_nodes):
        capacity = rng.uniform(50_000, 200_000)
        algorithm = FederationAlgorithm(capacity=capacity, policy="sflow", seed=seed + i)
        node = net.add_node(algorithm, name=f"n{i}", bandwidth=BandwidthSpec(up=capacity))
        algorithms[node] = algorithm
        nodes.append(node)
    net.start()
    net.run(2.0)
    driver = FederationDriver(net, algorithms)

    # Poisson-ish arrivals: each service picks a random host and type.
    assigned = 0
    arrival_times: list[float] = []
    t = 0.0
    while t < arrival_minutes * 60.0:
        t += rng.expovariate(arrivals_per_minute / 60.0)
        if t < arrival_minutes * 60.0:
            arrival_times.append(t)
    for when in arrival_times:
        gap = when - net.now
        if gap > 0:
            net.run(gap)
        driver.assign(rng.choice(nodes), rng.randint(1, n_types))
        assigned += 1
    net.run(duration_minutes * 60.0 - net.now)

    per_minute = driver.overhead_timeline(60.0, duration_minutes * 60.0, kind="aware")
    return Fig16Result(
        per_minute_aware_bytes=per_minute,
        total_bytes=sum(per_minute),
        services_assigned=assigned,
    )


def main() -> None:
    run_fig16().table().print()


if __name__ == "__main__":
    main()
