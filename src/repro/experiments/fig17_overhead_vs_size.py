"""Fig. 17 — total control overhead vs network size (5-40 nodes).

Fifty new service requirements are requested every minute over a
ten-minute window.  Both sAware and sFederate overhead grow gradually
with network size, with sFederate growing at the slower rate — exactly
the paper's observation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Table
from repro.experiments.federation_common import build_service_overlay


@dataclass
class Fig17Result:
    sizes: list[int]
    aware_bytes: list[int]
    federate_bytes: list[int]
    completed_sessions: list[int]

    def table(self) -> Table:
        table = Table(
            "Fig. 17 — total control overhead vs network size (10 minutes,"
            " 50 requirements/minute)",
            ["nodes", "sAware bytes", "sFederate bytes", "completed sessions"],
        )
        for i, size in enumerate(self.sizes):
            table.add_row(size, self.aware_bytes[i], self.federate_bytes[i],
                          self.completed_sessions[i])
        table.note("paper: both overheads grow gradually with size;"
                   " sFederate grows at a slower rate than sAware")
        return table


def run_fig17(
    sizes: list[int] | None = None,
    duration: float = 600.0,
    requirements_per_minute: float = 50.0,
    seed: int = 0,
) -> Fig17Result:
    sizes = sizes or [5, 10, 15, 20, 25, 30, 35, 40]
    aware: list[int] = []
    federate: list[int] = []
    completed: list[int] = []
    for size in sizes:
        # Bigger overlays host a richer service catalog (more primitive
        # types), so requirements reference more stages on average — the
        # driver behind the paper's mild sFederate growth with size.
        n_types = max(3, min(8, size // 5))
        overlay = build_service_overlay(size, policy="sflow", seed=seed, n_types=n_types)
        net = overlay.net
        baseline_aware = overlay.driver.total_overhead("aware")
        interval = 60.0 / requirements_per_minute
        t_end = net.now + duration
        done = 0
        outcomes = []
        while net.now < t_end:
            outcome = overlay.federate_and_measure(settle=interval)
            outcomes.append(outcome)
            if outcome.completed:
                done += 1
        aware.append(overlay.driver.total_overhead("aware") - baseline_aware)
        federate.append(overlay.driver.total_overhead("federate"))
        completed.append(done)
    return Fig17Result(sizes=sizes, aware_bytes=aware, federate_bytes=federate,
                       completed_sessions=completed)


def main() -> None:
    run_fig17().table().print()


if __name__ == "__main__":
    main()
