"""Fig. 9 and Table 3 — tree construction on the five-node session.

The data source is deployed on node S; nodes join in the order
D, A, C, B.  Per-node available (last-mile) bandwidth:

    S = 200, A = 500, B = 100, C = 200, D = 100 KB/s.

For each policy (all-unicast, randomized, node-stress aware) we report
the constructed tree, the per-node end-to-end throughput (Fig. 9's edge
annotations) and the node degree/stress table (Table 3).  The paper's
headline: the ns-aware tree delivers ~100 KB/s to every receiver, the
all-unicast star only ~50 KB/s, with the randomized tree in between.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.trees import CMD_JOIN, POLICIES, TreeAlgorithm
from repro.core.bandwidth import BandwidthSpec
from repro.core.ids import NodeId
from repro.experiments.common import KB, Table
from repro.sim.engine import EngineConfig
from repro.sim.network import NetworkConfig, SimNetwork

#: last-mile bandwidth per node, KB/s (Fig. 9(a)).
LAST_MILE = {"S": 200.0, "A": 500.0, "B": 100.0, "C": 200.0, "D": 100.0}
JOIN_ORDER = ["D", "A", "C", "B"]

#: Table 3 as printed in the paper (degree, stress in 1/100 KBps).
PAPER_TABLE3 = {
    "unicast": {"S": (4, 2.0), "A": (1, 0.2), "B": (1, 1.0), "C": (1, 0.5), "D": (1, 1.0)},
    "random": {"S": (2, 1.0), "A": (1, 0.2), "B": (1, 0.98), "C": (2, 1.0), "D": (2, 1.98)},
    "ns-aware": {"S": (2, 1.0), "A": (3, 0.6), "B": (1, 0.97), "C": (1, 0.51), "D": (1, 1.0)},
}


@dataclass
class TreeRun:
    policy: str
    edges: list[tuple[str, str]]  # (parent, child)
    throughput: dict[str, float]  # node -> B/s received
    degree: dict[str, int]
    stress: dict[str, float]

    def is_spanning_tree(self) -> bool:
        children = {child for _, child in self.edges}
        return len(self.edges) == 4 and children == {"A", "B", "C", "D"}


@dataclass
class Fig9Result:
    runs: dict[str, TreeRun]

    def table3(self) -> Table:
        table = Table(
            "Table 3 — node degree and stress (stress in 1/100 KBps)",
            ["node",
             "unicast deg (paper)", "unicast stress (paper)",
             "random deg (paper)", "random stress (paper)",
             "ns-aware deg (paper)", "ns-aware stress (paper)"],
        )
        for node in "SABCD":
            row = [node]
            for policy in ("unicast", "random", "ns-aware"):
                run = self.runs[policy]
                paper_deg, paper_stress = PAPER_TABLE3[policy][node]
                row.append(f"{run.degree[node]} ({paper_deg})")
                row.append(f"{run.stress[node]:.2f} ({paper_stress})")
            table.add_row(*row)
        return table

    def throughput_table(self) -> Table:
        table = Table(
            "Fig. 9 — end-to-end receiver throughput (KB/s)",
            ["node", "unicast", "random", "ns-aware"],
        )
        for node in "ABCD":
            table.add_row(
                node,
                *(f"{self.runs[p].throughput[node] / KB:.1f}"
                  for p in ("unicast", "random", "ns-aware")),
            )
        table.note("paper: unicast ~50 each; ns-aware ~100 each; random mixed 50-100")
        return table

    def tree_table(self) -> Table:
        table = Table("Fig. 9 — constructed trees (parent -> child)",
                      ["policy", "edges"])
        for policy, run in self.runs.items():
            edges = ", ".join(f"{p}->{c}" for p, c in sorted(run.edges))
            table.add_row(policy, edges)
        return table


def run_tree_session(
    policy: str,
    join_spacing: float = 3.0,
    settle: float = 30.0,
    payload_size: int = 5000,
    seed: int = 0,
    buffer_capacity: int = 16,
) -> TreeRun:
    """Build the five-node session under one policy and measure it."""
    algorithm_cls = POLICIES[policy]
    net = SimNetwork(NetworkConfig(
        engine=EngineConfig(buffer_capacity=buffer_capacity),
        seed=seed,
    ))
    algorithms: dict[str, TreeAlgorithm] = {}
    nodes: dict[str, NodeId] = {}
    for name, last_mile in LAST_MILE.items():
        algorithm = algorithm_cls(last_mile=last_mile * KB, seed=seed + ord(name))
        algorithms[name] = algorithm
        nodes[name] = net.add_node(
            algorithm, name=name, bandwidth=BandwidthSpec(up=last_mile * KB)
        )
    net.start()
    net.run(1.0)  # bootstrap everyone
    net.observer.deploy_source(nodes["S"], app=1, payload_size=payload_size)
    net.run(1.0)
    for name in JOIN_ORDER:
        net.observer.send_control(nodes[name], CMD_JOIN, param1=1)
        net.run(join_spacing)
    net.run(settle)

    label = {node_id: name for name, node_id in nodes.items()}
    edges = [
        (label[algorithms[name].parent], name)
        for name in "ABCD"
        if algorithms[name].parent is not None
    ]
    return TreeRun(
        policy=policy,
        edges=edges,
        throughput={name: algorithms[name].receive_rate() for name in "ABCD"},
        degree={name: algorithms[name].degree for name in "SABCD"},
        stress={name: algorithms[name].stress for name in "SABCD"},
    )


def run_fig9(seed: int = 1, settle: float = 30.0) -> Fig9Result:
    return Fig9Result(runs={
        policy: run_tree_session(policy, seed=seed, settle=settle)
        for policy in ("unicast", "random", "ns-aware")
    })


def main() -> None:
    result = run_fig9()
    result.tree_table().print()
    result.throughput_table().print()
    result.table3().print()


if __name__ == "__main__":
    main()
