"""Extension experiment — robustness under controlled failures (Section 3.1).

"Due to the transparent detection of link and node failures in iOverlay,
it is easy to design experiments consisting of a certain number of
failures, and evaluate the robustness ... by measuring the received
throughput at all participating clients."

We run an ns-aware dissemination session on the synthetic PlanetLab,
kill a series of interior relay nodes through the observer, and sample
every surviving receiver's throughput.  *Availability* at time t is the
fraction of surviving receivers at ≥ 50% of the nominal stream rate.
The ablation contrasts the full algorithm (orphans re-query and
re-attach) with a recovery-disabled variant — quantifying how much of
the resilience is the engine's detection and how much the algorithm's
reaction.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.algorithms.trees import CMD_JOIN, NodeStressAwareTree, TreeAlgorithm
from repro.core.message import Message
from repro.experiments.common import Table
from repro.testbed.planetlab import PlanetLabTestbed


class NoRecoveryTree(NodeStressAwareTree):
    """Ablation: orphans do *not* rejoin after losing their position."""

    def on_broken_link(self, msg: Message) -> object:
        fields = msg.fields()
        from repro.core.ids import NodeId

        peer = NodeId.parse(fields["peer"])
        if fields.get("direction") == "down":
            self.children = [node for node in self.children if node != peer]
        elif peer == self.parent:
            self.parent = None
            self.in_tree = False  # and stay out
        self.neighbor_stress.pop(peer, None)
        return None

    def on_broken_source(self, msg: Message) -> object:
        if not self.is_source:
            self.parent = None
            self.children.clear()
            self.in_tree = False  # and stay out
        return None


@dataclass
class RobustnessRun:
    recovery: bool
    availability: list[tuple[float, float]]  # (time, fraction served)
    final_availability: float
    killed: int

    def worst_dip(self) -> float:
        return min(frac for _, frac in self.availability) if self.availability else 0.0


@dataclass
class ExtRobustnessResult:
    runs: dict[str, RobustnessRun]

    def table(self) -> Table:
        table = Table(
            "Extension — availability under interior-node failures",
            ["variant", "worst availability", "final availability", "nodes killed"],
        )
        for name, run in self.runs.items():
            table.add_row(
                name,
                f"{run.worst_dip() * 100:.0f}%",
                f"{run.final_availability * 100:.0f}%",
                run.killed,
            )
        table.note("availability = surviving receivers at >= 50% of the nominal"
                   " rate; failures injected by the observer, detected passively")
        return table


def run_robustness(
    recovery: bool,
    n_nodes: int = 24,
    n_failures: int = 3,
    seed: int = 0,
    payload_size: int = 5000,
) -> RobustnessRun:
    algorithm_cls = NodeStressAwareTree if recovery else NoRecoveryTree
    algorithms: list[TreeAlgorithm] = []

    def factory(index: int, last_mile: float) -> TreeAlgorithm:
        algorithm = algorithm_cls(last_mile=last_mile, seed=seed * 131 + index)
        algorithms.append(algorithm)
        return algorithm

    testbed = PlanetLabTestbed(n_nodes, factory, seed=seed)
    net = testbed.net
    testbed.deploy()
    net.run(2)
    net.observer.deploy_source(testbed.source.node_id, app=1, payload_size=payload_size)
    net.run(2)
    for node in testbed.nodes[1:]:
        net.observer.send_control(node.node_id, CMD_JOIN, param1=1)
        net.run(0.5)
    net.run(20)

    source_alg = algorithms[0]
    nominal = statistics.median(
        alg.receive_rate() for alg in algorithms if not alg.is_source and alg.in_tree
    )

    # Kill the highest-degree interior relays, one every 20 seconds.
    interior = sorted(
        (alg for alg in algorithms if not alg.is_source and alg.children),
        key=lambda alg: -len(alg.children),
    )
    victims = [alg.node_id for alg in interior[:n_failures]]
    dead: set = set()
    availability: list[tuple[float, float]] = []

    def sample() -> None:
        survivors = [
            alg for alg in algorithms
            if not alg.is_source and alg.node_id not in dead
        ]
        served = sum(1 for alg in survivors if alg.receive_rate() >= 0.5 * nominal)
        availability.append((net.now, served / len(survivors) if survivors else 0.0))

    for victim in victims:
        net.observer.terminate_node(victim)
        dead.add(victim)
        for _ in range(4):
            net.run(5)
            sample()
    net.run(30)
    sample()

    return RobustnessRun(
        recovery=recovery,
        availability=availability,
        final_availability=availability[-1][1],
        killed=len(victims),
    )


def run_ext_robustness(seed: int = 0) -> ExtRobustnessResult:
    return ExtRobustnessResult(runs={
        "with recovery": run_robustness(True, seed=seed),
        "no recovery": run_robustness(False, seed=seed),
    })


def main() -> None:
    run_ext_robustness().table().print()


if __name__ == "__main__":
    main()
