"""Extension experiment — robustness under controlled failures (Section 3.1).

"Due to the transparent detection of link and node failures in iOverlay,
it is easy to design experiments consisting of a certain number of
failures, and evaluate the robustness ... by measuring the received
throughput at all participating clients."

We run an ns-aware dissemination session on the synthetic PlanetLab,
kill a series of interior relay nodes through the observer, and sample
every surviving receiver's throughput.  *Availability* at time t is the
fraction of surviving receivers at ≥ 50% of the nominal stream rate.
The ablation contrasts the full algorithm (orphans re-query and
re-attach) with a recovery-disabled variant — quantifying how much of
the resilience is the engine's detection and how much the algorithm's
reaction.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.algorithms.trees import CMD_JOIN, NodeStressAwareTree, TreeAlgorithm
from repro.core.algorithm import Disposition
from repro.core.ids import NodeId
from repro.core.message import Message
from repro.experiments.common import Table
from repro.testbed.planetlab import PlanetLabTestbed


class NoRecoveryTree(NodeStressAwareTree):
    """Ablation: orphans do *not* rejoin after losing their position."""

    def on_broken_link(self, msg: Message) -> object:
        fields = msg.fields()
        from repro.core.ids import NodeId

        peer = NodeId.parse(fields["peer"])
        if fields.get("direction") == "down":
            self.children = [node for node in self.children if node != peer]
        elif peer == self.parent:
            self.parent = None
            self.in_tree = False  # and stay out
        self.neighbor_stress.pop(peer, None)
        return None

    def on_broken_source(self, msg: Message) -> object:
        if not self.is_source:
            self.parent = None
            self.children.clear()
            self.in_tree = False  # and stay out
        return None


@dataclass
class RobustnessRun:
    recovery: bool
    availability: list[tuple[float, float]]  # (time, fraction served)
    final_availability: float
    killed: int

    def worst_dip(self) -> float:
        return min(frac for _, frac in self.availability) if self.availability else 0.0


@dataclass
class ExtRobustnessResult:
    runs: dict[str, RobustnessRun]

    def table(self) -> Table:
        table = Table(
            "Extension — availability under interior-node failures",
            ["variant", "worst availability", "final availability", "nodes killed"],
        )
        for name, run in self.runs.items():
            table.add_row(
                name,
                f"{run.worst_dip() * 100:.0f}%",
                f"{run.final_availability * 100:.0f}%",
                run.killed,
            )
        table.note("availability = surviving receivers at >= 50% of the nominal"
                   " rate; failures injected by the observer, detected passively")
        return table


def run_robustness(
    recovery: bool,
    n_nodes: int = 24,
    n_failures: int = 3,
    seed: int = 0,
    payload_size: int = 5000,
) -> RobustnessRun:
    algorithm_cls = NodeStressAwareTree if recovery else NoRecoveryTree
    algorithms: list[TreeAlgorithm] = []

    def factory(index: int, last_mile: float) -> TreeAlgorithm:
        algorithm = algorithm_cls(last_mile=last_mile, seed=seed * 131 + index)
        algorithms.append(algorithm)
        return algorithm

    testbed = PlanetLabTestbed(n_nodes, factory, seed=seed)
    net = testbed.net
    testbed.deploy()
    net.run(2)
    net.observer.deploy_source(testbed.source.node_id, app=1, payload_size=payload_size)
    net.run(2)
    for node in testbed.nodes[1:]:
        net.observer.send_control(node.node_id, CMD_JOIN, param1=1)
        net.run(0.5)
    net.run(20)

    source_alg = algorithms[0]
    nominal = statistics.median(
        alg.receive_rate() for alg in algorithms if not alg.is_source and alg.in_tree
    )

    # Kill the highest-degree interior relays, one every 20 seconds.
    interior = sorted(
        (alg for alg in algorithms if not alg.is_source and alg.children),
        key=lambda alg: -len(alg.children),
    )
    victims = [alg.node_id for alg in interior[:n_failures]]
    dead: set = set()
    availability: list[tuple[float, float]] = []

    def sample() -> None:
        survivors = [
            alg for alg in algorithms
            if not alg.is_source and alg.node_id not in dead
        ]
        served = sum(1 for alg in survivors if alg.receive_rate() >= 0.5 * nominal)
        availability.append((net.now, served / len(survivors) if survivors else 0.0))

    for victim in victims:
        net.observer.terminate_node(victim)
        dead.add(victim)
        for _ in range(4):
            net.run(5)
            sample()
    net.run(30)
    sample()

    return RobustnessRun(
        recovery=recovery,
        availability=availability,
        final_availability=availability[-1][1],
        killed=len(victims),
    )


def run_ext_robustness(seed: int = 0) -> ExtRobustnessResult:
    return ExtRobustnessResult(runs={
        "with recovery": run_robustness(True, seed=seed),
        "no recovery": run_robustness(False, seed=seed),
    })


# --------------------------------------------------------- detection parity
#
# The same declarative FailureSchedule drives the simulator (virtual
# time) and a chaos-wrapped asyncio cluster (real sockets, wall time).
# Both backends face an identical silent stall on one fan-out link and
# must converge to the same availability through the same detection
# ladder (traffic inactivity -> probe -> teardown), proving the live
# resilience layer is a faithful twin of the sim's stall handling.

#: seconds of silence before suspicion (both backends), and how long the
#: asyncio ladder waits for an unanswered probe before confirming death
PARITY_INACTIVITY = 0.25
PARITY_PROBE = 0.25
#: the schedule: one silent stall on the source's link to the first sink
PARITY_STALL_AT = 0.6
#: run time after arming — covers warm-up, the stall, and the full ladder
PARITY_HORIZON = 2.5
#: post-horizon window over which availability is measured
PARITY_WINDOW = 1.2
PARITY_SINKS = 3
PARITY_PAYLOAD = 2000


class _ParitySource(CopyForwardAlgorithm):
    """Copy-forward that abandons a downstream on *any* broken link.

    The sim reports directed teardowns ("down") while the asyncio engine
    reports the whole bidirectional peer ("both"); dropping the peer in
    either case gives both backends the same post-detection topology, so
    availability is comparable.
    """

    def on_broken_link(self, msg: Message) -> Disposition:
        self.remove_downstream(NodeId.parse(msg.fields()["peer"]))
        return Disposition.DONE


class _ParitySink(SinkAlgorithm):
    """Sink that records which upstreams were confirmed dead."""

    def __init__(self) -> None:
        super().__init__()
        self.broken_peers: list[str] = []

    def on_broken_link(self, msg: Message) -> Disposition:
        self.broken_peers.append(msg.fields()["peer"])
        return Disposition.DONE


@dataclass
class ParityRun:
    backend: str
    availability: float          # fraction of sinks still served, 0..1
    torn_down: bool              # source abandoned the stalled downstream
    detections: int              # sinks whose engine confirmed a dead upstream


@dataclass
class DetectionParityResult:
    runs: dict[str, ParityRun]

    def agrees(self) -> bool:
        values = list(self.runs.values())
        return all(
            run.torn_down == values[0].torn_down
            and run.detections == values[0].detections
            and abs(run.availability - values[0].availability) < 1e-9
            for run in values
        )

    def table(self) -> Table:
        table = Table(
            "Extension — stall-detection parity across backends",
            ["backend", "availability", "stalled link torn down", "detections"],
        )
        for name, run in self.runs.items():
            table.add_row(
                name,
                f"{run.availability * 100:.0f}%",
                "yes" if run.torn_down else "no",
                run.detections,
            )
        table.note("one FailureSchedule, two backends: a silent stall on one"
                   " fan-out link is confirmed via traffic inactivity on sim"
                   " and via the inactivity -> probe ladder on asyncio")
        return table


def _parity_schedule():
    from repro.sim.failure import FailureSchedule

    # Armed at t=0 on both backends, so the sim's absolute virtual times
    # and the cluster's arm-relative wall times coincide.
    return FailureSchedule().stall_link(PARITY_STALL_AT, "src", "sink0")


def _parity_run(backend: str, sinks: list[_ParitySink],
                src_alg: _ParitySource, stalled, served: list[bool]) -> ParityRun:
    return ParityRun(
        backend=backend,
        availability=sum(served) / len(served),
        torn_down=stalled not in src_alg.downstream_targets,
        detections=sum(1 for alg in sinks if alg.broken_peers),
    )


def _run_parity_sim(seed: int) -> ParityRun:
    from repro.sim.engine import EngineConfig
    from repro.sim.network import NetworkConfig, SimNetwork

    net = SimNetwork(NetworkConfig(
        seed=seed,
        engine=EngineConfig(inactivity_timeout=PARITY_INACTIVITY),
    ))
    src_alg = _ParitySource()
    sinks = [_ParitySink() for _ in range(PARITY_SINKS)]
    src = net.add_node(src_alg, name="src")
    sink_ids = [net.add_node(alg, name=f"sink{i}") for i, alg in enumerate(sinks)]
    src_alg.set_downstreams(sink_ids)
    net.start()
    _parity_schedule().arm(net)
    net.observer.deploy_source(src, app=1, payload_size=PARITY_PAYLOAD)
    net.run(PARITY_HORIZON)
    before = [alg.received for alg in sinks]
    net.run(PARITY_WINDOW)
    served = [alg.received > count + 5 for alg, count in zip(sinks, before)]
    return _parity_run("sim", sinks, src_alg, sink_ids[0], served)


def _run_parity_net(seed: int) -> ParityRun:
    import asyncio

    from repro.net.chaos import ChaosCluster, ChaosController
    from repro.net.engine import NetEngineConfig
    from repro.net.resilience import ResilienceConfig

    def config() -> NetEngineConfig:
        return NetEngineConfig(resilience=ResilienceConfig(
            seed=seed,
            inactivity_timeout=PARITY_INACTIVITY,
            probe_timeout=PARITY_PROBE,
        ))

    async def scenario() -> ParityRun:
        cluster = ChaosCluster(ChaosController(seed=seed))
        src_alg = _ParitySource()
        sinks = [_ParitySink() for _ in range(PARITY_SINKS)]
        src = await cluster.add_node(src_alg, "src", config())
        engines = [
            await cluster.add_node(alg, f"sink{i}", config())
            for i, alg in enumerate(sinks)
        ]
        src_alg.set_downstreams([engine.node_id for engine in engines])
        cluster.arm(_parity_schedule())
        src.start_source(app=1, payload_size=PARITY_PAYLOAD)
        await asyncio.sleep(PARITY_HORIZON)
        before = [alg.received for alg in sinks]
        await asyncio.sleep(PARITY_WINDOW)
        served = [alg.received > count + 5 for alg, count in zip(sinks, before)]
        run = _parity_run("asyncio+chaos", sinks, src_alg,
                          engines[0].node_id, served)
        await cluster.stop()
        return run

    return asyncio.run(scenario())


def run_detection_parity(seed: int = 0) -> DetectionParityResult:
    """One FailureSchedule, both backends; returns per-backend outcomes."""
    return DetectionParityResult(runs={
        "sim": _run_parity_sim(seed),
        "asyncio+chaos": _run_parity_net(seed),
    })


def main() -> None:
    run_ext_robustness().table().print()
    run_detection_parity().table().print()


if __name__ == "__main__":
    main()
