"""Fig. 11 — the node-stress aware algorithm on 81 wide-area nodes.

81 nodes on the synthetic PlanetLab, last-mile bandwidth uniform in
[50, 200] KB/s, source pinned at 100 KB/s.  All nodes join a single
dissemination session under each policy; we report:

(a) per-receiver end-to-end throughput (the paper plots all 80
    receivers; ns-aware is much higher than random, which beats the
    all-unicast star),
(b) the cumulative distribution of node stress (ns-aware hugs the ideal
    low-stress region; unicast has an extreme outlier at the source).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.algorithms.trees import CMD_JOIN, POLICIES, TreeAlgorithm
from repro.experiments.common import KB, Table
from repro.testbed.planetlab import PlanetLabTestbed


@dataclass
class PlanetLabTreeRun:
    policy: str
    throughputs: list[float]  # B/s, one per receiver
    stresses: list[float]     # per member incl. source
    tree_edges: list[tuple[int, int]]
    joined: int

    def throughput_summary(self) -> dict[str, float]:
        rates = sorted(self.throughputs)
        return {
            "mean": statistics.fmean(rates) if rates else 0.0,
            "median": rates[len(rates) // 2] if rates else 0.0,
            "p10": rates[len(rates) // 10] if rates else 0.0,
            "p90": rates[(len(rates) * 9) // 10] if rates else 0.0,
        }

    def stress_cdf(self, points: list[float]) -> list[float]:
        """Fraction of members with stress <= x, per x in ``points``."""
        n = len(self.stresses)
        return [sum(1 for s in self.stresses if s <= x) / n for x in points]


@dataclass
class Fig11Result:
    runs: dict[str, PlanetLabTreeRun]

    def throughput_table(self) -> Table:
        table = Table(
            "Fig. 11(a) — end-to-end receiver throughput, 81 nodes (KB/s)",
            ["policy", "mean", "median", "p10", "p90", "joined"],
        )
        for policy, run in self.runs.items():
            summary = run.throughput_summary()
            table.add_row(
                policy,
                f"{summary['mean'] / KB:.1f}",
                f"{summary['median'] / KB:.1f}",
                f"{summary['p10'] / KB:.1f}",
                f"{summary['p90'] / KB:.1f}",
                run.joined,
            )
        table.note("paper: ns-aware markedly higher than random; all-unicast lowest")
        return table

    def stress_table(self) -> Table:
        points = [0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 50.0]
        table = Table(
            "Fig. 11(b) — CDF of node stress (fraction of members <= x)",
            ["stress x", *self.runs.keys()],
        )
        cdfs = {policy: run.stress_cdf(points) for policy, run in self.runs.items()}
        for i, x in enumerate(points):
            table.add_row(f"{x:g}", *(f"{cdfs[p][i]:.2f}" for p in self.runs))
        table.note("paper: the ns-aware CDF approaches the ideal step much faster")
        return table


def run_planetlab_tree(
    policy: str,
    n_nodes: int = 81,
    join_spacing: float = 0.5,
    settle: float = 30.0,
    payload_size: int = 5000,
    seed: int = 0,
) -> PlanetLabTreeRun:
    algorithm_cls = POLICIES[policy]

    def factory(index: int, last_mile: float) -> TreeAlgorithm:
        return algorithm_cls(last_mile=last_mile, seed=seed * 10_000 + index)

    testbed = PlanetLabTestbed(n_nodes, factory, seed=seed)
    net = testbed.net
    testbed.deploy()
    net.run(2.0)
    net.observer.deploy_source(testbed.source.node_id, app=1, payload_size=payload_size)
    net.run(2.0)
    joiners = testbed.nodes[1:]
    testbed.rng.shuffle(joiners)
    for node in joiners:
        net.observer.send_control(node.node_id, CMD_JOIN, param1=1)
        net.run(join_spacing)
    net.run(settle)

    algorithms: list[TreeAlgorithm] = [node.algorithm for node in testbed.nodes]  # type: ignore[list-item]
    members = [alg for alg in algorithms if alg.in_tree]
    receivers = [alg for alg in members if not alg.is_source]
    index_of = {node.node_id: node.index for node in testbed.nodes}
    edges = [
        (index_of[alg.parent], index_of[alg.node_id])
        for alg in receivers
        if alg.parent is not None
    ]
    return PlanetLabTreeRun(
        policy=policy,
        throughputs=[alg.receive_rate() for alg in receivers],
        stresses=[alg.stress for alg in members],
        tree_edges=sorted(edges),
        joined=len(receivers),
    )


def run_fig11(n_nodes: int = 81, seed: int = 0, settle: float = 30.0) -> Fig11Result:
    return Fig11Result(runs={
        policy: run_planetlab_tree(policy, n_nodes=n_nodes, seed=seed, settle=settle)
        for policy in ("unicast", "random", "ns-aware")
    })


def main() -> None:
    result = run_fig11()
    result.throughput_table().print()
    result.stress_table().print()


if __name__ == "__main__":
    main()
