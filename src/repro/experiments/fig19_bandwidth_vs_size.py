"""Fig. 19 — end-to-end bandwidth of federated services vs network size.

For each network size and each selection policy (sFlow, fixed, random)
a stream of requirements is federated under load; we report the average
end-to-end bandwidth of the constructed services.  The paper's claim:
sFlow consistently produces higher-bandwidth federated services than
fixed, which beats random, regardless of network size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import KB, Table
from repro.experiments.federation_common import build_service_overlay

POLICIES = ("sflow", "fixed", "random")


@dataclass
class Fig19Result:
    sizes: list[int]
    bandwidth: dict[str, list[float]]  # policy -> mean end-to-end B/s per size
    completed: dict[str, list[int]]

    def table(self) -> Table:
        table = Table(
            "Fig. 19 — mean end-to-end bandwidth of federated services (KB/s)",
            ["nodes", *(p for p in POLICIES)],
        )
        for i, size in enumerate(self.sizes):
            table.add_row(size, *(f"{self.bandwidth[p][i] / KB:.1f}" for p in POLICIES))
        table.note("paper: sFlow > fixed > random at every network size")
        return table


def run_fig19(
    sizes: list[int] | None = None,
    sessions_per_size: int = 36,
    session_interval: float = 5.0,
    session_duration: float = 18.0,
    seed: int = 0,
) -> Fig19Result:
    sizes = sizes or [5, 10, 15, 20, 25, 30, 35, 40]
    bandwidth: dict[str, list[float]] = {p: [] for p in POLICIES}
    completed: dict[str, list[int]] = {p: [] for p in POLICIES}
    for size in sizes:
        for policy in POLICIES:
            overlay = build_service_overlay(
                size, policy=policy, seed=seed, session_duration=session_duration,
                last_mile_range=(30_000.0, 300_000.0),
            )
            rates: list[float] = []
            done = 0
            for _ in range(sessions_per_size):
                outcome = overlay.federate_and_measure(settle=session_interval)
                if outcome.completed and outcome.end_to_end > 0:
                    rates.append(outcome.end_to_end)
                    done += 1
            bandwidth[policy].append(sum(rates) / len(rates) if rates else 0.0)
            completed[policy].append(done)
    return Fig19Result(sizes=sizes, bandwidth=bandwidth, completed=completed)


def main() -> None:
    run_fig19().table().print()


if __name__ == "__main__":
    main()
