"""Observer-plane scale-out — the aggregation tree vs the flat funnel.

PR 5's cluster runs every worker's :class:`~repro.net.proxy.ObserverProxy`
as a transparent byte funnel: each node's STATUS report (with its full
telemetry snapshot, hex-doubled inside a PROXY envelope) crosses the
root observer's sockets on every poll, so root ingress grows with fleet
size times poll rate.  This experiment measures what the hierarchical
observability plane buys: the **same workload** on the **same fleet**
is run twice —

- **funnel**: the flat layout (``observer_fanout=0``), every status and
  metric byte relayed raw to the root on every poll;
- **tree**: workers wired into an aggregation tree
  (``observer_fanout`` children per node), each proxy polling its own
  children, merging their snapshots and flushing only deltas, roll-up
  statuses and head-sampled traces upward once per flush interval.

The workload is deterministic bursts through forwarding chains sharded
round-robin across the workers (so data messages genuinely cross worker
boundaries), and each chain ends in a digest sink.  The digest is a
pure function of the delivered payload bytes, so byte-identical digests
across both runs prove the observability plane changed *nothing* on the
data path.  For each mode we record root-observer ingress (bytes/s and
frames/s over the measured window) and status coverage; the headline is
the ingress reduction factor, which must be >= 10x at 8 workers.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.cluster.controller import ClusterConfig, ClusterController
from repro.cluster.scenarios import BURST_CONTROL, chain_specs, wait_until
from repro.cluster.spec import NodeSpec
from repro.core.ids import NodeId
from repro.experiments.common import Table
from repro.net.observer_server import ObserverServer

DEFAULT_WORKERS = 8
DEFAULT_CHAINS = 2
DEFAULT_CHAIN_LEN = 8
DEFAULT_FANOUT = 4
BURST_COUNT = 400
BURST_SIZE = 1000
POLL_INTERVAL = 0.25   # identical in both modes: same status cadence
FLUSH_INTERVAL = 1.0   # tree mode: one roll-up per subtree per second
TRACE_SAMPLE = 64      # head-sample lifecycle traces in both modes
TARGET_REDUCTION = 10.0


@dataclass
class ModePoint:
    """Root-observer ingress measured for one layout."""

    label: str              # "funnel" or "tree (fanout=N)"
    seconds: float          # measured window
    bytes_in: int           # root socket ingress over the window
    frames_in: int
    agg_frames: int         # W_AGG roll-ups among them (0 for the funnel)
    statuses: int           # distinct nodes with a status at the root
    delivered: int          # messages consumed across every sink
    digests: dict[str, str]  # sink name -> payload digest

    @property
    def bytes_per_sec(self) -> float:
        return self.bytes_in / self.seconds if self.seconds else 0.0

    @property
    def frames_per_sec(self) -> float:
        return self.frames_in / self.seconds if self.seconds else 0.0


@dataclass
class ObserverScalingResult:
    funnel: ModePoint
    tree: ModePoint
    workers: int
    nodes: int

    @property
    def reduction(self) -> float:
        """Root ingress bytes/s: funnel over tree (higher = better)."""
        return (self.funnel.bytes_per_sec / self.tree.bytes_per_sec
                if self.tree.bytes_per_sec else 0.0)

    @property
    def digests_match(self) -> bool:
        return self.funnel.digests == self.tree.digests

    def table(self) -> Table:
        table = Table(
            f"Observer-plane ingress — {self.nodes} nodes on "
            f"{self.workers} workers, identical burst workload",
            ["layout", "root KB/s", "frames/s", "roll-ups",
             "statuses", "delivered"],
        )
        for point in (self.funnel, self.tree):
            table.add_row(
                point.label,
                f"{point.bytes_per_sec / 1000:.1f}",
                f"{point.frames_per_sec:.1f}",
                point.agg_frames,
                point.statuses,
                point.delivered,
            )
        table.note(f"root ingress reduction: {self.reduction:.1f}x "
                   f"(target >= {TARGET_REDUCTION:.0f}x)")
        table.note("sink digests " +
                   ("byte-identical across layouts — the data path is "
                    "untouched by the observability plane"
                    if self.digests_match else "DIFFER — data path affected!"))
        return table


def _workload(chains: int, chain_len: int) -> list[NodeSpec]:
    """Independent chains, specs unpinned so round-robin placement makes
    consecutive chain hops land on *different* workers — every data
    message crosses real sockets and worker boundaries."""
    specs: list[NodeSpec] = []
    for i in range(chains):
        specs.extend(chain_specs(chain_len, prefix=f"c{i}n"))
    return specs


async def _run_mode(
    label: str, workers: int, chains: int, chain_len: int,
    fanout: int, flush_interval: float | None, settle: float,
) -> ModePoint:
    observer = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=POLL_INTERVAL)
    await observer.start()
    controller = ClusterController(observer, ClusterConfig(
        workers=workers,
        observer_fanout=fanout,
        observer_flush_interval=flush_interval,
        worker_telemetry=True,
        worker_trace_sample=TRACE_SAMPLE,
    ))
    await controller.start()
    specs = _workload(chains, chain_len)
    placed = await controller.deploy(specs)
    nodes = len(specs)
    sink_names = [f"c{i}n{chain_len - 1}" for i in range(chains)]
    await wait_until(
        lambda: all(p.node_id in observer.observer.alive for p in placed.values())
    )
    # Coverage first: every node must have a status at the root before
    # the window opens, through whichever plane this mode uses.
    await wait_until(lambda: len(observer.observer.statuses) >= nodes)

    bytes0, frames0, t0 = observer.bytes_in, observer.frames_in, time.monotonic()
    for i in range(chains):
        controller.send_control(
            f"c{i}n0", BURST_CONTROL, param1=BURST_COUNT, param2=BURST_SIZE,
            app=i + 1,
        )

    async def all_delivered() -> bool:
        infos = await asyncio.gather(
            *(controller.node_info(name) for name in sink_names)
        )
        return all(int(r["info"].get("received", 0)) >= BURST_COUNT for r in infos)

    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline and not await all_delivered():
        await asyncio.sleep(0.1)
    # Steady-state tail: the burst is done, only the observability plane
    # is producing root traffic now — full snapshots every poll for the
    # funnel, near-empty deltas for the tree.
    await asyncio.sleep(settle)
    seconds = time.monotonic() - t0
    bytes_in = observer.bytes_in - bytes0
    frames_in = observer.frames_in - frames0

    infos = await asyncio.gather(
        *(controller.node_info(name) for name in sink_names)
    )
    delivered = sum(int(r["info"].get("received", 0)) for r in infos)
    digests = {
        name: str(reply["info"].get("digests", {}))
        for name, reply in zip(sink_names, infos)
    }
    statuses = len(observer.observer.statuses)
    agg_frames = observer.observer.agg_frames
    await controller.stop()
    await observer.stop()
    return ModePoint(
        label=label, seconds=seconds, bytes_in=bytes_in, frames_in=frames_in,
        agg_frames=agg_frames, statuses=statuses, delivered=delivered,
        digests=digests,
    )


def run_observer_scaling(
    workers: int = DEFAULT_WORKERS,
    chains: int = DEFAULT_CHAINS,
    chain_len: int = DEFAULT_CHAIN_LEN,
    fanout: int = DEFAULT_FANOUT,
    settle: float = 4.0,
) -> ObserverScalingResult:
    funnel = asyncio.run(_run_mode(
        "funnel", workers, chains, chain_len,
        fanout=0, flush_interval=None, settle=settle,
    ))
    tree = asyncio.run(_run_mode(
        f"tree (fanout={fanout})", workers, chains, chain_len,
        fanout=fanout, flush_interval=FLUSH_INTERVAL, settle=settle,
    ))
    return ObserverScalingResult(
        funnel=funnel, tree=tree, workers=workers,
        nodes=chains * chain_len,
    )


def main() -> None:
    result = run_observer_scaling()
    result.table().print()
    if not result.digests_match:
        print("WARNING: sink digests differ between layouts — the "
              "observability plane must not touch the data path")
    if result.reduction >= TARGET_REDUCTION:
        print(f"aggregation tree reduces root-observer ingress "
              f"{result.reduction:.1f}x at {result.workers} workers")
    else:
        print(f"WARNING: ingress reduction {result.reduction:.1f}x is below "
              f"the {TARGET_REDUCTION:.0f}x target")


if __name__ == "__main__":
    main()
