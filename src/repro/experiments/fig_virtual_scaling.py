"""Virtual-node packing — how many full nodes fit in one process.

The paper's engine "supports virtualized nodes, i.e., more than one
iOverlay node per physical host"; Fig. 5's stress chains were run
exactly that way.  This experiment measures the packing dimension the
figure leaves implicit: hold the workload shape fixed (the fig5 chain —
a source pushing back-to-back messages down a line of copy-forwarders
into a sink) and grow the number of co-hosted nodes.

Where :mod:`repro.experiments.fig5_chain` runs every hop over loopback
TCP, here the chain runs on a :class:`~repro.net.virtual.VirtualHost`:
co-hosted hops are zero-copy in-process channels, so the sweep isolates
the engine/scheduling cost of packing nodes from the socket cost.  For
each size we record end-to-end throughput at the sink, how many of the
per-node status reports actually reached a live observer (the control
plane must keep working at packing density), and the loopback dial
count proving no chain hop silently fell back to sockets.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.algorithms.forwarding import CopyForwardAlgorithm, SinkAlgorithm
from repro.core.ids import NodeId
from repro.experiments.common import Table
from repro.net.engine import NetEngineConfig
from repro.net.observer_server import ObserverServer
from repro.net.virtual import VirtualHost

#: chain sizes swept by default — up to well past the 100-node target
DEFAULT_SIZES = [25, 50, 100, 150]


@dataclass
class PackPoint:
    nodes: int
    delivered: int  # messages that crossed the whole chain
    end_to_end: float  # B/s at the sink over the measured window
    statuses: int  # distinct nodes whose STATUS reached the observer
    loopback_dials: int  # chain hops brokered in-process (== links)
    startup_ms_per_node: float


@dataclass
class VirtualScalingResult:
    points: list[PackPoint]

    def table(self) -> Table:
        table = Table(
            "Virtual-node packing — fig5 chain workload on one VirtualHost",
            ["nodes", "delivered", "end-to-end (KB/s)", "statuses seen",
             "loopback dials", "startup (ms/node)"],
        )
        for p in self.points:
            table.add_row(
                p.nodes, p.delivered, f"{p.end_to_end / 1000:.1f}",
                f"{p.statuses}/{p.nodes}", p.loopback_dials,
                f"{p.startup_ms_per_node:.1f}",
            )
        table.note("co-hosted hops are zero-copy in-process channels; dials ="
                   " links proves no hop fell back to sockets")
        return table

    def control_plane_held(self) -> bool:
        """Every sweep point had all nodes report status to the observer."""
        return all(p.statuses >= p.nodes for p in self.points)


async def _run_packed_chain(
    n_nodes: int, duration: float, payload_size: int, report_interval: float
) -> PackPoint:
    observer = ObserverServer(NodeId("127.0.0.1", 0), poll_interval=report_interval)
    await observer.start()
    host = VirtualHost(observer_addr=observer.addr)
    algorithms = [CopyForwardAlgorithm() for _ in range(n_nodes - 1)] + [SinkAlgorithm()]
    config = NetEngineConfig(report_interval=report_interval)
    engines = [host.add_node(alg, config=config) for alg in algorithms]

    t0 = time.monotonic()
    await host.start()
    startup_ms_per_node = (time.monotonic() - t0) * 1000.0 / n_nodes

    for alg, nxt in zip(algorithms, engines[1:]):
        alg.set_downstreams([nxt.node_id])
    await host.connect_chain()
    sink = algorithms[-1]

    engines[0].start_source(app=1, payload_size=payload_size)
    await asyncio.sleep(duration * 0.25)  # warm-up: fill the pipeline
    start_bytes = sink.received_bytes
    await asyncio.sleep(duration)
    end_to_end = (sink.received_bytes - start_bytes) / duration

    # Give the slowest reporters one more interval, then count coverage.
    await asyncio.sleep(report_interval)
    statuses = len(observer.observer.statuses)
    delivered = sink.received
    dials = host.resolver.dials
    await host.stop()
    await observer.stop()
    return PackPoint(
        nodes=n_nodes, delivered=delivered, end_to_end=end_to_end,
        statuses=statuses, loopback_dials=dials,
        startup_ms_per_node=startup_ms_per_node,
    )


def run_virtual_scaling(
    sizes: list[int] | None = None,
    duration: float = 2.0,
    payload_size: int = 5000,
    report_interval: float = 0.5,
) -> VirtualScalingResult:
    sizes = sizes or DEFAULT_SIZES
    points = [
        asyncio.run(_run_packed_chain(n, duration, payload_size, report_interval))
        for n in sizes
    ]
    return VirtualScalingResult(points=points)


def main() -> None:
    result = run_virtual_scaling()
    result.table().print()
    if not result.control_plane_held():
        print("WARNING: some nodes never reported status to the observer")


if __name__ == "__main__":
    main()
