"""Fig. 18 — per-node control overhead in a 30-node service overlay.

Fifty requirements per minute over 22 minutes.  The paper observes a
handful of nodes with much higher sFederate overhead (the nodes the
observer selects as requirement sources, plus heavily-used services)
and many nodes with very low overhead (services not required, or too
little bandwidth to be selected).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Table
from repro.experiments.federation_common import build_service_overlay


@dataclass
class Fig18Result:
    per_node: list[tuple[str, int, int]]  # (node, aware bytes, federate bytes)

    def table(self) -> Table:
        table = Table(
            "Fig. 18 — per-node control overhead, 30 nodes over 22 minutes (bytes)",
            ["node", "sAware", "sFederate"],
        )
        for node, aware, federate in self.per_node:
            table.add_row(node, aware, federate)
        table.note("paper: a few source/service hot spots dominate sFederate;"
                   " many nodes have near-zero overhead")
        return table

    def federate_concentration(self) -> float:
        """Fraction of total sFederate bytes carried by the top 5 nodes."""
        volumes = sorted((f for _, _, f in self.per_node), reverse=True)
        total = sum(volumes)
        return sum(volumes[:5]) / total if total else 0.0


def run_fig18(
    n_nodes: int = 30,
    duration: float = 22 * 60.0,
    requirements_per_minute: float = 50.0,
    seed: int = 0,
) -> Fig18Result:
    overlay = build_service_overlay(n_nodes, policy="sflow", seed=seed)
    net = overlay.net
    interval = 60.0 / requirements_per_minute
    t_end = net.now + duration
    while net.now < t_end:
        # Most requirements originate at a couple of designated source
        # nodes, as in the paper's run (its three 40 KB hot spots).
        overlay.federate_and_measure(settle=interval, source_bias=0.7)
    rows = sorted(
        (
            (str(node), alg.overhead_bytes("aware"), alg.overhead_bytes("federate"))
            for node, alg in overlay.algorithms.items()
        ),
        key=lambda row: -(row[1] + row[2]),
    )
    return Fig18Result(per_node=rows)


def main() -> None:
    result = run_fig18()
    result.table().print()
    print(f"top-5 nodes carry {result.federate_concentration() * 100:.0f}% of sFederate bytes")


if __name__ == "__main__":
    main()
