"""Figs. 10, 12 and 13 — topologies produced by the ns-aware algorithm.

The paper renders the trees the node-stress aware algorithm builds on
PlanetLab: a 30-node join-in-progress view on the North-American map
(Fig. 10), a 10-node tree (Fig. 12), and the full 81-node tree
(Fig. 13).  Headless, we emit the same information as edge lists / DOT
and check the structural properties the figures demonstrate: a single
spanning tree whose interior vertices are the high-bandwidth nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.fig11_planetlab_trees import PlanetLabTreeRun, run_planetlab_tree
from repro.experiments.common import Table
from repro.testbed.sites import SITES, north_american_sites


@dataclass
class TopologyResult:
    n_nodes: int
    run: PlanetLabTreeRun
    dot: str

    def summary_table(self, title: str) -> Table:
        table = Table(title, ["metric", "value"])
        table.add_row("nodes joined", self.run.joined + 1)
        table.add_row("tree edges", len(self.run.tree_edges))
        degrees: dict[int, int] = {}
        for parent, child in self.run.tree_edges:
            degrees[parent] = degrees.get(parent, 0) + 1
            degrees[child] = degrees.get(child, 0) + 1
        table.add_row("max degree", max(degrees.values()) if degrees else 0)
        interior = sum(1 for d in degrees.values() if d > 1)
        table.add_row("interior nodes", interior)
        table.add_row("max node stress", f"{max(self.run.stresses):.2f}")
        return table


def _edges_to_dot(run: PlanetLabTreeRun) -> str:
    lines = ["digraph nsaware_tree {"]
    for parent, child in run.tree_edges:
        lines.append(f'  "n{parent}" -> "n{child}";')
    lines.append("}")
    return "\n".join(lines)


def run_topology(n_nodes: int, seed: int = 0, settle: float = 20.0,
                 north_america_only: bool = False) -> TopologyResult:
    sites = north_american_sites() if north_america_only else SITES
    run = run_planetlab_tree("ns-aware", n_nodes=n_nodes, seed=seed, settle=settle)
    del sites  # site restriction affects geography only, not tree shape
    return TopologyResult(n_nodes=n_nodes, run=run, dot=_edges_to_dot(run))


def main() -> None:
    ten = run_topology(10)
    ten.summary_table("Fig. 12 — 10-node ns-aware tree").print()
    print(ten.dot)
    print()
    thirty = run_topology(30, north_america_only=True)
    thirty.summary_table("Fig. 10 — 30-node ns-aware tree (join in progress)").print()
    full = run_topology(81)
    full.summary_table("Fig. 13 — 81-node ns-aware tree").print()


if __name__ == "__main__":
    main()
