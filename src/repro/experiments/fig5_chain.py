"""Fig. 5 — raw message switching performance of the engine.

The paper's stress test: virtualized nodes in a chain on one physical
machine, a source pushing back-to-back 5 KB messages from one end, and
two curves over chain length n ∈ {2..32}:

- end-to-end throughput measured at the last node,
- total bandwidth = end-to-end throughput x number of links (the volume
  of messages actually switched network-wide).

We run the *live asyncio engine* over loopback TCP (this experiment is
about a real kernel/socket path, not the simulator).  Absolute numbers
are far below the paper's C++/pthreads engine on 2001 hardware measured
in MB/s; the shape to match is the monotonic decline of end-to-end
throughput with chain length while per-hop overhead stays small for
short chains.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.algorithms.forwarding import ChainRelayAlgorithm, SinkAlgorithm
from repro.core.ids import NodeId
from repro.experiments.common import Table
from repro.net.engine import AsyncioEngine, NetEngineConfig

#: the chain lengths the paper annotates in Fig. 5
PAPER_CHAIN_SIZES = [2, 3, 4, 5, 6, 8, 12, 16, 32]

#: the paper's end-to-end throughput readings, in bytes/second
PAPER_END_TO_END = {
    2: 48.4e6, 3: 23.4e6, 4: 14.5e6, 5: 10.1e6, 6: 7.7e6,
    8: 5.0e6, 12: 2.5e6, 16: 1.6e6, 32: 424e3,
}

@dataclass
class ChainPoint:
    nodes: int
    end_to_end: float  # B/s at the sink
    total_bandwidth: float  # end_to_end * links


@dataclass
class Fig5Result:
    points: list[ChainPoint]

    def table(self) -> Table:
        table = Table(
            "Fig. 5 — raw engine performance on a loopback chain",
            ["nodes", "end-to-end (MB/s)", "total bandwidth (MB/s)",
             "paper end-to-end (MB/s)"],
        )
        for point in self.points:
            paper = PAPER_END_TO_END.get(point.nodes)
            table.add_row(
                point.nodes,
                f"{point.end_to_end / 1e6:.2f}",
                f"{point.total_bandwidth / 1e6:.2f}",
                f"{paper / 1e6:.2f}" if paper else "-",
            )
        table.note("asyncio/Python vs the paper's C++/pthreads engine: absolute"
                   " numbers differ; the declining shape with chain length is the"
                   " reproduction target")
        return table

    def monotonically_declining(self, slack: float = 0.8, allowed_inversions: int = 1) -> bool:
        """The paper's declining shape, robust to wall-clock noise.

        Loopback throughput over short windows wobbles with scheduler
        load, so we accept ``allowed_inversions`` adjacent increases
        beyond the ``slack`` factor as long as the endpoints anchor the
        trend (the longest chain is far below the shortest).
        """
        rates = [p.end_to_end for p in self.points]
        if len(rates) < 2:
            return True
        inversions = sum(
            1 for i in range(len(rates) - 1) if rates[i] < rates[i + 1] * slack
        )
        endpoints_decline = rates[0] > 2.5 * rates[-1]
        return inversions <= allowed_inversions and endpoints_decline


async def _run_chain(n_nodes: int, duration: float, payload_size: int,
                     buffer_capacity: int) -> ChainPoint:
    relays = [ChainRelayAlgorithm() for _ in range(n_nodes - 1)]

    class CountingSink(SinkAlgorithm):
        pass

    sink = CountingSink()
    config = NetEngineConfig(buffer_capacity=buffer_capacity)
    engines: list[AsyncioEngine] = []
    for algorithm in [*relays, sink]:
        # Port 0: the engine picks a free port, so repeated runs never
        # collide with lingering sockets from earlier measurements.
        engine = AsyncioEngine(NodeId("127.0.0.1", 0), algorithm, config=config)
        await engine.start()
        engines.append(engine)
    for i, relay in enumerate(relays):
        relay.set_next_hop(engines[i + 1].node_id)

    # Warm up connections, then measure over the steady window.
    engines[0].start_source(app=1, payload_size=payload_size)
    await asyncio.sleep(duration * 0.25)
    start_bytes = sink.received_bytes
    await asyncio.sleep(duration)
    end_to_end = (sink.received_bytes - start_bytes) / duration
    for engine in engines:
        await engine.stop()
    links = n_nodes - 1
    return ChainPoint(nodes=n_nodes, end_to_end=end_to_end,
                      total_bandwidth=end_to_end * links)


def run_fig5(
    sizes: list[int] | None = None,
    duration: float = 2.0,
    payload_size: int = 5000,
    buffer_capacity: int = 10,
) -> Fig5Result:
    """Measure the loopback chain at each size (5 KB messages, buffers of
    10 messages — the paper's footprint configuration)."""
    sizes = sizes or PAPER_CHAIN_SIZES
    points = [
        asyncio.run(_run_chain(n, duration, payload_size, buffer_capacity))
        for n in sizes
    ]
    return Fig5Result(points=points)


def main() -> None:
    run_fig5().table().print()


if __name__ == "__main__":
    main()
