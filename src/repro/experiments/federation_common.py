"""Shared scaffolding for the service-federation experiments (Figs. 14-19)."""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.algorithms.federation import (
    FederationAlgorithm,
    FederationDriver,
    Requirement,
    SessionOutcome,
)
from repro.algorithms.federation.requirement import ServiceType
from repro.core.ids import NodeId
from repro.testbed.planetlab import PlanetLabTestbed


@dataclass
class ServiceOverlay:
    """A deployed wide-area service overlay ready for federation."""

    testbed: PlanetLabTestbed
    driver: FederationDriver
    algorithms: dict[NodeId, FederationAlgorithm]
    placement: dict[ServiceType, list[NodeId]]
    types: list[ServiceType]
    rng: random.Random

    @property
    def net(self):
        return self.testbed.net

    def source_candidates(self) -> list[NodeId]:
        """Hosts of the root service type (requirement sources)."""
        return list(self.placement[self.types[0]])

    def random_requirement(self, min_len: int = 3, max_len: int | None = None) -> Requirement:
        """A random path requirement starting at the root type."""
        max_len = max_len or len(self.types)
        length = self.rng.randint(min_len, max_len)
        return Requirement.path(self.types[:length])

    def federate_and_measure(
        self, settle: float = 1.5, source_bias: float = 0.0, hot_sources: int = 2
    ) -> SessionOutcome:
        """One full requirement cycle: pick source, federate, evaluate.

        ``source_bias`` is the probability of picking the requirement's
        source among the first ``hot_sources`` root-type hosts — the
        paper's observer sends "most of the service requirements" to a
        few designated source nodes (visible as the Fig. 18 hot spots).
        """
        requirement = self.random_requirement()
        candidates = self.source_candidates()
        if source_bias > 0 and self.rng.random() < source_bias:
            source = self.rng.choice(candidates[: max(1, hot_sources)])
        else:
            source = self.rng.choice(candidates)
        session = self.driver.federate(source, requirement)
        self.net.run(settle)
        return self.driver.outcome(session, source, requirement)


def build_service_overlay(
    n_nodes: int,
    policy: str = "sflow",
    n_types: int = 4,
    instances_per_type: int | None = None,
    seed: int = 0,
    warmup: float = 20.0,
    refresh_interval: float = 15.0,
    session_duration: float = 60.0,
    last_mile_range: tuple[float, float] = (50_000.0, 200_000.0),
) -> ServiceOverlay:
    """Deploy ``n_nodes`` federation nodes and place services on them.

    Per-node capacity is the last-mile draw of the synthetic PlanetLab
    (uniform 50-200 KB/s).  ``instances_per_type`` defaults to roughly a
    quarter of the nodes, at least two.
    """
    algorithms_by_index: dict[int, FederationAlgorithm] = {}

    def factory(index: int, last_mile: float) -> FederationAlgorithm:
        algorithm = FederationAlgorithm(
            capacity=last_mile,
            policy=policy,
            refresh_interval=refresh_interval,
            session_duration=session_duration,
            seed=seed * 1000 + index,
        )
        algorithms_by_index[index] = algorithm
        return algorithm

    testbed = PlanetLabTestbed(
        n_nodes, factory, seed=seed,
        last_mile_range=last_mile_range,
        source_last_mile=sum(last_mile_range) / 2,
    )
    testbed.deploy()
    testbed.run(2.0)

    algorithms = {node.node_id: algorithms_by_index[node.index] for node in testbed.nodes}
    driver = FederationDriver(testbed.net, algorithms)
    rng = random.Random(seed + 77)
    types: list[ServiceType] = list(range(1, n_types + 1))
    per_type = instances_per_type or max(2, n_nodes // 4)
    node_ids = [node.node_id for node in testbed.nodes]
    placement = driver.assign_round_robin(types, node_ids, per_type, rng)
    testbed.run(warmup)  # let sAware dissemination settle
    return ServiceOverlay(
        testbed=testbed, driver=driver, algorithms=algorithms,
        placement=placement, types=types, rng=rng,
    )
