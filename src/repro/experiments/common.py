"""Shared machinery for the experiment harnesses.

Every ``fig*`` module exposes a ``run_*`` function returning a structured
result object plus a ``main()`` that prints the same rows/series the
paper reports, so benchmarks, examples and EXPERIMENTS.md all read off
one implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

KB = 1000.0  # the paper reports KBytes per second


def kbps(rate_bytes_per_s: float) -> float:
    """Bytes/s -> KB/s as the paper's tables use."""
    return rate_bytes_per_s / KB


def fmt_rate(rate_bytes_per_s: float | None) -> str:
    if rate_bytes_per_s is None:
        return "[closed]"
    return f"{kbps(rate_bytes_per_s):.1f}"


@dataclass
class Table:
    """A printable result table (one per figure/table of the paper)."""

    title: str
    columns: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        cells = [[str(value) for value in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells)) if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(self.columns))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        print(self.render())
        print()


def series_table(title: str, x_name: str, series: dict[str, Iterable[float]],
                 xs: Iterable[Any]) -> Table:
    """Build a table from one x-column and several named y-series."""
    names = list(series)
    table = Table(title, [x_name, *names])
    columns = [list(series[name]) for name in names]
    for i, x in enumerate(xs):
        table.add_row(x, *(f"{col[i]:.1f}" for col in columns))
    return table
