"""Topology builders for the engine-correctness experiments.

The seven-node graph used by Figs. 6, 7 and 8 of the paper::

        A
       / \\
      B   C
      |\\ /|
      | D |
      |/ \\|     (B->F, C->G are the direct edges;
      F   G      D->E then E->F, E->G)
       \\ /
        E

    Directed edges: A->B, A->C, B->D, B->F, C->D, C->G, D->E, E->F, E->G.

Fig. 6/7 copy every message on every branch; Fig. 8 splits the source
stream into sub-streams *a* (via B) and *b* (via C) and lets D merge
them, with and without GF(2^8) coding.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algorithms.coding import (
    CodedSourceAlgorithm,
    CodingNodeAlgorithm,
    DecodingSinkAlgorithm,
)
from repro.algorithms.forwarding import CopyForwardAlgorithm
from repro.core.algorithm import Algorithm
from repro.core.bandwidth import BandwidthSpec
from repro.core.ids import NodeId
from repro.experiments.common import KB
from repro.sim.engine import EngineConfig
from repro.sim.network import NetworkConfig, SimNetwork
from repro.telemetry import Telemetry

#: The nine directed overlay edges of the seven-node graph.
SEVEN_NODE_EDGES: list[tuple[str, str]] = [
    ("A", "B"), ("A", "C"),
    ("B", "D"), ("B", "F"),
    ("C", "D"), ("C", "G"),
    ("D", "E"),
    ("E", "F"), ("E", "G"),
]

NODE_NAMES = "ABCDEFG"


@dataclass
class SevenNodeNet:
    """A built seven-node network plus handles the experiments poke at."""

    net: SimNetwork
    nodes: dict[str, NodeId]
    algorithms: dict[str, Algorithm]

    def link_rates(self) -> dict[tuple[str, str], float | None]:
        """Measured rate per topology edge; ``None`` when the link is closed."""
        rates: dict[tuple[str, str], float | None] = {}
        for src, dst in SEVEN_NODE_EDGES:
            src_engine = self.net.engines[self.nodes[src]]
            if not src_engine.running or self.nodes[dst] not in src_engine.downstreams():
                rates[(src, dst)] = None
            else:
                rates[(src, dst)] = src_engine.send_rate(self.nodes[dst])
        return rates


def build_seven_node_copy(
    buffer_capacity: int = 5,
    source_total: float = 400 * KB,
    latency: float = 0.005,
    seed: int = 0,
    telemetry: "Telemetry | None" = None,
) -> SevenNodeNet:
    """The Figs. 6/7 deployment: copy-forwarding on the seven-node graph."""
    net = SimNetwork(NetworkConfig(
        default_latency=latency,
        engine=EngineConfig(buffer_capacity=buffer_capacity),
        seed=seed,
        telemetry=telemetry,
    ))
    algorithms: dict[str, Algorithm] = {name: CopyForwardAlgorithm() for name in NODE_NAMES}
    nodes: dict[str, NodeId] = {}
    for name in NODE_NAMES:
        bandwidth = BandwidthSpec(total=source_total) if name == "A" else None
        nodes[name] = net.add_node(algorithms[name], name=name, bandwidth=bandwidth)
    for src, dst in SEVEN_NODE_EDGES:
        algorithms[src].add_downstream(nodes[dst])  # type: ignore[attr-defined]
    net.start()
    return SevenNodeNet(net=net, nodes=nodes, algorithms=algorithms)


@dataclass
class ButterflyNet:
    """The Fig. 8 deployment, with measurement handles on D, E, F, G."""

    net: SimNetwork
    nodes: dict[str, NodeId]
    source: CodedSourceAlgorithm
    node_d: CodingNodeAlgorithm | DecodingSinkAlgorithm
    node_e: DecodingSinkAlgorithm
    node_f: DecodingSinkAlgorithm
    node_g: DecodingSinkAlgorithm

    def effective_rates(self) -> dict[str, float]:
        """Effective (innovative) receive throughput at D, E, F and G."""
        return {
            "D": self.node_d.effective_rate(),
            "E": self.node_e.effective_rate(),
            "F": self.node_f.effective_rate(),
            "G": self.node_g.effective_rate(),
        }


def build_butterfly(
    coding: bool,
    source_total: float = 400 * KB,
    d_uplink: float = 200 * KB,
    buffer_capacity: int = 10000,
    latency: float = 0.005,
    seed: int = 0,
    telemetry: "Telemetry | None" = None,
) -> ButterflyNet:
    """The Fig. 8 topology: stream *a* via B, stream *b* via C, merge at D.

    With ``coding=False`` D forwards both sub-streams verbatim (capped by
    its uplink); with ``coding=True`` D sends the GF(2^8) combination
    ``a + b`` and the leaves decode.  Large buffers keep D's inputs at
    full rate over the measurement window, as in the paper's run.
    """
    net = SimNetwork(NetworkConfig(
        default_latency=latency,
        engine=EngineConfig(buffer_capacity=buffer_capacity),
        seed=seed,
        telemetry=telemetry,
    ))
    source = CodedSourceAlgorithm()
    b_alg = CopyForwardAlgorithm()
    c_alg = CopyForwardAlgorithm()
    node_d: CodingNodeAlgorithm | DecodingSinkAlgorithm
    if coding:
        node_d = CodingNodeAlgorithm(k=2, coefficients=None)  # a + b
    else:
        node_d = DecodingSinkAlgorithm(k=2)  # forwards raw, measures innovative
    node_e = DecodingSinkAlgorithm(k=2)
    node_f = DecodingSinkAlgorithm(k=2)
    node_g = DecodingSinkAlgorithm(k=2)

    nodes = {
        "A": net.add_node(source, name="A", bandwidth=BandwidthSpec(total=source_total)),
        "B": net.add_node(b_alg, name="B"),
        "C": net.add_node(c_alg, name="C"),
        "D": net.add_node(node_d, name="D", bandwidth=BandwidthSpec(up=d_uplink)),
        "E": net.add_node(node_e, name="E"),
        "F": net.add_node(node_f, name="F"),
        "G": net.add_node(node_g, name="G"),
    }
    source.set_downstreams([nodes["B"], nodes["C"]])  # stream a -> B, stream b -> C
    b_alg.set_downstreams([nodes["D"], nodes["F"]])
    c_alg.set_downstreams([nodes["D"], nodes["G"]])
    if coding:
        node_d.set_downstreams([nodes["E"]])
    else:
        node_d.set_forward_to([nodes["E"]])
    node_e.set_forward_to([nodes["F"], nodes["G"]])
    net.start()
    return ButterflyNet(
        net=net, nodes=nodes, source=source,
        node_d=node_d, node_e=node_e, node_f=node_f, node_g=node_g,
    )
