"""Topology builders for the engine-correctness experiments.

The seven-node graph used by Figs. 6, 7 and 8 of the paper::

        A
       / \\
      B   C
      |\\ /|
      | D |
      |/ \\|     (B->F, C->G are the direct edges;
      F   G      D->E then E->F, E->G)
       \\ /
        E

    Directed edges: A->B, A->C, B->D, B->F, C->D, C->G, D->E, E->F, E->G.

Fig. 6/7 copy every message on every branch; Fig. 8 splits the source
stream into sub-streams *a* (via B) and *b* (via C) and lets D merge
them, with and without GF(2^8) coding.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.algorithms.coding import (
    CodedSourceAlgorithm,
    CodingNodeAlgorithm,
    DecodingSinkAlgorithm,
)
from repro.algorithms.forwarding import CopyForwardAlgorithm
from repro.algorithms.routing import (
    BackpressureRoutingAlgorithm,
    StaticPathRoutingAlgorithm,
)
from repro.core.algorithm import Algorithm
from repro.core.bandwidth import BandwidthSpec
from repro.core.ids import NodeId
from repro.experiments.common import KB
from repro.sim.engine import EngineConfig
from repro.sim.network import NetworkConfig, SimNetwork
from repro.telemetry import Telemetry

#: The nine directed overlay edges of the seven-node graph.
SEVEN_NODE_EDGES: list[tuple[str, str]] = [
    ("A", "B"), ("A", "C"),
    ("B", "D"), ("B", "F"),
    ("C", "D"), ("C", "G"),
    ("D", "E"),
    ("E", "F"), ("E", "G"),
]

NODE_NAMES = "ABCDEFG"


@dataclass
class SevenNodeNet:
    """A built seven-node network plus handles the experiments poke at."""

    net: SimNetwork
    nodes: dict[str, NodeId]
    algorithms: dict[str, Algorithm]

    def link_rates(self) -> dict[tuple[str, str], float | None]:
        """Measured rate per topology edge; ``None`` when the link is closed."""
        rates: dict[tuple[str, str], float | None] = {}
        for src, dst in SEVEN_NODE_EDGES:
            src_engine = self.net.engines[self.nodes[src]]
            if not src_engine.running or self.nodes[dst] not in src_engine.downstreams():
                rates[(src, dst)] = None
            else:
                rates[(src, dst)] = src_engine.send_rate(self.nodes[dst])
        return rates


def build_seven_node_copy(
    buffer_capacity: int = 5,
    source_total: float = 400 * KB,
    latency: float = 0.005,
    seed: int = 0,
    telemetry: "Telemetry | None" = None,
) -> SevenNodeNet:
    """The Figs. 6/7 deployment: copy-forwarding on the seven-node graph."""
    net = SimNetwork(NetworkConfig(
        default_latency=latency,
        engine=EngineConfig(buffer_capacity=buffer_capacity),
        seed=seed,
        telemetry=telemetry,
    ))
    algorithms: dict[str, Algorithm] = {name: CopyForwardAlgorithm() for name in NODE_NAMES}
    nodes: dict[str, NodeId] = {}
    for name in NODE_NAMES:
        bandwidth = BandwidthSpec(total=source_total) if name == "A" else None
        nodes[name] = net.add_node(algorithms[name], name=name, bandwidth=bandwidth)
    for src, dst in SEVEN_NODE_EDGES:
        algorithms[src].add_downstream(nodes[dst])  # type: ignore[attr-defined]
    net.start()
    return SevenNodeNet(net=net, nodes=nodes, algorithms=algorithms)


@dataclass
class ButterflyNet:
    """The Fig. 8 deployment, with measurement handles on D, E, F, G."""

    net: SimNetwork
    nodes: dict[str, NodeId]
    source: CodedSourceAlgorithm
    node_d: CodingNodeAlgorithm | DecodingSinkAlgorithm
    node_e: DecodingSinkAlgorithm
    node_f: DecodingSinkAlgorithm
    node_g: DecodingSinkAlgorithm

    def effective_rates(self) -> dict[str, float]:
        """Effective (innovative) receive throughput at D, E, F and G."""
        return {
            "D": self.node_d.effective_rate(),
            "E": self.node_e.effective_rate(),
            "F": self.node_f.effective_rate(),
            "G": self.node_g.effective_rate(),
        }


def build_butterfly(
    coding: bool,
    source_total: float = 400 * KB,
    d_uplink: float = 200 * KB,
    buffer_capacity: int = 10000,
    latency: float = 0.005,
    seed: int = 0,
    telemetry: "Telemetry | None" = None,
) -> ButterflyNet:
    """The Fig. 8 topology: stream *a* via B, stream *b* via C, merge at D.

    With ``coding=False`` D forwards both sub-streams verbatim (capped by
    its uplink); with ``coding=True`` D sends the GF(2^8) combination
    ``a + b`` and the leaves decode.  Large buffers keep D's inputs at
    full rate over the measurement window, as in the paper's run.
    """
    net = SimNetwork(NetworkConfig(
        default_latency=latency,
        engine=EngineConfig(buffer_capacity=buffer_capacity),
        seed=seed,
        telemetry=telemetry,
    ))
    source = CodedSourceAlgorithm()
    b_alg = CopyForwardAlgorithm()
    c_alg = CopyForwardAlgorithm()
    node_d: CodingNodeAlgorithm | DecodingSinkAlgorithm
    if coding:
        node_d = CodingNodeAlgorithm(k=2, coefficients=None)  # a + b
    else:
        node_d = DecodingSinkAlgorithm(k=2)  # forwards raw, measures innovative
    node_e = DecodingSinkAlgorithm(k=2)
    node_f = DecodingSinkAlgorithm(k=2)
    node_g = DecodingSinkAlgorithm(k=2)

    nodes = {
        "A": net.add_node(source, name="A", bandwidth=BandwidthSpec(total=source_total)),
        "B": net.add_node(b_alg, name="B"),
        "C": net.add_node(c_alg, name="C"),
        "D": net.add_node(node_d, name="D", bandwidth=BandwidthSpec(up=d_uplink)),
        "E": net.add_node(node_e, name="E"),
        "F": net.add_node(node_f, name="F"),
        "G": net.add_node(node_g, name="G"),
    }
    source.set_downstreams([nodes["B"], nodes["C"]])  # stream a -> B, stream b -> C
    b_alg.set_downstreams([nodes["D"], nodes["F"]])
    c_alg.set_downstreams([nodes["D"], nodes["G"]])
    if coding:
        node_d.set_downstreams([nodes["E"]])
    else:
        node_d.set_forward_to([nodes["E"]])
    node_e.set_forward_to([nodes["F"], nodes["G"]])
    net.start()
    return ButterflyNet(
        net=net, nodes=nodes, source=source,
        node_d=node_d, node_e=node_e, node_f=node_f, node_g=node_g,
    )


# ------------------------------------------------------ routing capacity grid

#: The shared-relay grid the routing-throughput experiment sweeps.  Two
#: unicast commodities, three bandwidth-capped relays, one relay (r2)
#: usable by both commodities::
#:
#:     s1 --> r1 --> t1
#:       \          /
#:        --> r2 -->        (r2 reaches BOTH sinks)
#:       /          \
#:     s2 --> r3 --> t2
#:
#: Any tree heuristic embeds ONE path per commodity, so the best static
#: assignment gives each commodity a single relay (capacity C each,
#: r2 idle or double-booked).  Backpressure splits every commodity over
#: both of its relays, so the shared grid sustains 1.5 C per commodity.
ROUTING_GRID_EDGES: list[tuple[str, str]] = [
    ("s1", "r1"), ("s1", "r2"),
    ("s2", "r2"), ("s2", "r3"),
    ("r1", "t1"),
    ("r2", "t1"), ("r2", "t2"),
    ("r3", "t2"),
]


@dataclass
class RoutingMatrix:
    """A multi-commodity traffic matrix over a named overlay graph.

    ``commodities`` maps a commodity id to its ``(source, sink)`` pair;
    ``relay_up`` caps the named relays' uplinks (bytes/s) — the capacity
    region of the experiment lives entirely in those caps.
    """

    edges: list[tuple[str, str]]
    commodities: dict[int, tuple[str, str]]
    relay_up: dict[str, float] = field(default_factory=dict)

    def node_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for src, dst in self.edges:
            seen.setdefault(src)
            seen.setdefault(dst)
        return list(seen)

    def out_neighbors(self, name: str) -> list[str]:
        return [dst for src, dst in self.edges if src == name]

    def relays_for(self, commodity: int) -> list[str]:
        """Relays that connect a commodity's source to its sink in one hop."""
        source, sink = self.commodities[commodity]
        return [
            mid for mid in self.out_neighbors(source)
            if sink in self.out_neighbors(mid)
        ]

    def static_assignments(self) -> list[dict[int, str]]:
        """Every single-path (tree-heuristic) relay assignment.

        A tree embeds exactly one source->sink path per unicast
        commodity, so the *best* static assignment over this enumeration
        is the best any of the paper's tree heuristics can induce.
        """
        commodities = sorted(self.commodities)
        choices = [self.relays_for(c) for c in commodities]
        return [
            dict(zip(commodities, picks))
            for picks in itertools.product(*choices)
        ]


def routing_grid(relay_up: float = 50 * KB) -> RoutingMatrix:
    """The shared-relay grid with every relay uplink capped at ``relay_up``."""
    return RoutingMatrix(
        edges=list(ROUTING_GRID_EDGES),
        commodities={7: ("s1", "t1"), 8: ("s2", "t2")},
        relay_up={"r1": relay_up, "r2": relay_up, "r3": relay_up},
    )


@dataclass
class RoutingNet:
    """A built routing deployment plus the handles the sweep reads."""

    net: SimNetwork
    nodes: dict[str, NodeId]
    algorithms: dict[str, Algorithm]
    matrix: RoutingMatrix

    def delivered(self) -> dict[int, int]:
        """Per-commodity delivered count, summed over the sinks."""
        totals: dict[int, int] = {}
        for algorithm in self.algorithms.values():
            for commodity, count in algorithm.delivered.items():  # type: ignore[attr-defined]
                totals[commodity] = totals.get(commodity, 0) + count
        return totals

    def total_backlog(self) -> int:
        return sum(
            alg.core.total_backlog()
            for alg in self.algorithms.values()
            if hasattr(alg, "core")
        )


def build_routing_sim(
    matrix: RoutingMatrix,
    inject: dict[int, dict],
    policy: str = "backpressure",
    assignment: dict[int, str] | None = None,
    inject_tick: float = 0.05,
    seed: int = 0,
    latency: float = 0.005,
    telemetry: "Telemetry | None" = None,
) -> RoutingNet:
    """Deploy a traffic matrix on the DES under one routing policy.

    ``policy`` is ``"backpressure"`` / ``"delay"`` (both run
    :class:`BackpressureRoutingAlgorithm`) or ``"static"`` — which
    requires ``assignment`` mapping each commodity to its relay, the
    single path a tree heuristic would embed.  ``inject`` is the
    per-commodity injection spec applied at that commodity's source
    (see :class:`~repro.algorithms.routing.algorithm._RoutingBase`).
    """
    net = SimNetwork(NetworkConfig(
        default_latency=latency, seed=seed, telemetry=telemetry,
    ))
    names = matrix.node_names()
    algorithms: dict[str, Algorithm] = {}
    if policy == "static":
        if assignment is None:
            raise ValueError("static policy needs a relay assignment")
        for name in names:
            algorithms[name] = StaticPathRoutingAlgorithm()
    elif policy in ("backpressure", "delay"):
        for name in names:
            algorithms[name] = BackpressureRoutingAlgorithm(variant=policy)
    else:
        raise ValueError(f"unknown routing policy: {policy!r}")

    nodes: dict[str, NodeId] = {}
    for name in names:
        cap = matrix.relay_up.get(name)
        bandwidth = BandwidthSpec(up=cap) if cap else None
        nodes[name] = net.add_node(algorithms[name], name=name, bandwidth=bandwidth)

    for commodity, (source, sink) in matrix.commodities.items():
        for name in names:
            algorithms[name].set_sink(commodity, nodes[sink])  # type: ignore[attr-defined]
        spec = inject.get(commodity)
        if spec:
            algorithms[source].set_injection(  # type: ignore[attr-defined]
                commodity, spec["count"], spec["size"], spec.get("total"),
            )
            algorithms[source].inject_tick = inject_tick  # type: ignore[attr-defined]
    if policy == "static":
        for commodity, relay in (assignment or {}).items():
            source, sink = matrix.commodities[commodity]
            algorithms[source].set_route(commodity, nodes[relay])  # type: ignore[attr-defined]
            algorithms[relay].set_route(commodity, nodes[sink])  # type: ignore[attr-defined]

    net.start()
    for src, dst in matrix.edges:
        net.engines[nodes[src]].connect(nodes[dst])
    return RoutingNet(net=net, nodes=nodes, algorithms=algorithms, matrix=matrix)
