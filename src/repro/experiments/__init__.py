"""Experiment harnesses: one module per table/figure, plus extensions.

Each module exposes ``run_*`` returning structured results and a
``main()`` printing the paper-style rows; benchmarks assert the shapes.
"""

from repro.experiments.common import KB, Table, fmt_rate, kbps

__all__ = ["KB", "Table", "fmt_rate", "kbps"]
