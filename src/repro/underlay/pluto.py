"""A PLUTO-style routing underlay for the synthetic testbed.

The paper positions PLUTO (Nakao, Peterson, Bavier — SIGCOMM 2003) as
"completely complementary" to iOverlay: a layer that exposes underlay
topological information — connectivity, disjoint end-to-end paths, and
distances in latency or router hops — to overlay algorithms, and its
Section 5 names integrating it "as additional reusable components in the
form of libraries" as future work.  This module is that library for the
simulated testbed.

The underlay model: every site has an access router; regional routers
aggregate the sites of one region; a full backbone mesh connects the
regions.  Crude, but it yields the two signals overlay algorithms
consume — relative distance and path (in)dependence — with the same
statistical flavour as real traceroute-derived underlays.
"""

from __future__ import annotations

import networkx as nx

from repro.core.ids import NodeId
from repro.errors import UnknownNodeError
from repro.testbed.latency import one_way_latency
from repro.testbed.planetlab import PlanetLabTestbed
from repro.testbed.sites import Site


class PlutoUnderlay:
    """Topological queries over the testbed's underlying router network."""

    def __init__(self, testbed: PlanetLabTestbed) -> None:
        self._site_of: dict[NodeId, Site] = {
            node.node_id: node.site for node in testbed.nodes
        }
        self.graph = nx.Graph()
        sites = {node.site.name: node.site for node in testbed.nodes}
        regions = sorted({site.region for site in sites.values()})
        for region in regions:
            self.graph.add_node(f"core:{region}", kind="core")
        # Full backbone mesh between regional cores.
        for i, region_a in enumerate(regions):
            for region_b in regions[i + 1 :]:
                # Backbone latency approximated from one representative
                # site pair of the two regions.
                rep_a = next(s for s in sites.values() if s.region == region_a)
                rep_b = next(s for s in sites.values() if s.region == region_b)
                self.graph.add_edge(
                    f"core:{region_a}", f"core:{region_b}",
                    latency=one_way_latency(rep_a, rep_b),
                )
        for site in sites.values():
            self.graph.add_node(f"site:{site.name}", kind="access")
            self.graph.add_edge(
                f"site:{site.name}", f"core:{site.region}", latency=0.004
            )
        # Overlay nodes hang off their site's access router.
        for node_id, site in self._site_of.items():
            self.graph.add_node(f"node:{node_id}", kind="host")
            self.graph.add_edge(f"node:{node_id}", f"site:{site.name}", latency=0.001)

    # ------------------------------------------------------------------- queries

    def _vertex(self, node: NodeId) -> str:
        if node not in self._site_of:
            raise UnknownNodeError(f"{node} is not attached to the underlay")
        return f"node:{node}"

    def router_hops(self, a: NodeId, b: NodeId) -> int:
        """Number of underlay router hops between two overlay nodes."""
        if a == b:
            return 0
        return nx.shortest_path_length(self.graph, self._vertex(a), self._vertex(b))

    def latency(self, a: NodeId, b: NodeId) -> float:
        """Underlay path latency between two overlay nodes (seconds)."""
        if a == b:
            return 0.0
        return nx.shortest_path_length(
            self.graph, self._vertex(a), self._vertex(b), weight="latency"
        )

    def path(self, a: NodeId, b: NodeId) -> list[str]:
        """The underlay router path (vertex labels) between two nodes."""
        return nx.shortest_path(self.graph, self._vertex(a), self._vertex(b))

    def paths_disjoint(self, a: NodeId, b: NodeId, c: NodeId, d: NodeId) -> bool:
        """Do the underlay paths a->b and c->d share any router?

        Overlay algorithms use this to pick backup routes whose failures
        are independent (PLUTO's "disjoint end-to-end paths" service).
        """
        first = {v for v in self.path(a, b) if not v.startswith("node:")}
        second = {v for v in self.path(c, d) if not v.startswith("node:")}
        return not (first & second)

    def closest(self, node: NodeId, candidates: list[NodeId]) -> NodeId:
        """The candidate with the smallest underlay latency to ``node``."""
        if not candidates:
            raise ValueError("no candidates")
        return min(candidates, key=lambda c: (self.latency(node, c), str(c)))

    def same_site(self, a: NodeId, b: NodeId) -> bool:
        return self._site_of.get(a) is self._site_of.get(b)

    def nodes(self) -> list[NodeId]:
        return list(self._site_of)
