"""Routing-underlay services (the PLUTO integration of Section 5)."""

from repro.underlay.pluto import PlutoUnderlay

__all__ = ["PlutoUnderlay"]
